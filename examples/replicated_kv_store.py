#!/usr/bin/env python3
"""A replicated key-value store on repeated ◇C consensus.

This is the state-machine-replication workload that motivates consensus:
five replicas agree on a totally ordered command log; each replica applies
the log to a local dict.  Clients submit writes at *different* replicas,
one replica crashes mid-run, and at the end every surviving replica holds
exactly the same store.

Run:  python examples/replicated_kv_store.py
"""

from repro import ReplicatedStateMachine, World
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.workloads import wan_link

N = 5


class KVReplica:
    """A tiny key-value state machine driven by a replicated log."""

    def __init__(self, rsm: ReplicatedStateMachine) -> None:
        self.rsm = rsm
        self.store: dict = {}
        rsm.on_apply(self._apply)

    def _apply(self, slot: int, command: dict) -> None:
        if command["op"] == "set":
            self.store[command["key"]] = command["value"]
        elif command["op"] == "del":
            self.store.pop(command["key"], None)

    def put(self, key, value):
        self.rsm.submit({"op": "set", "key": key, "value": value})

    def delete(self, key):
        self.rsm.submit({"op": "del", "key": key})


def main() -> None:
    world = World(n=N, seed=11, default_link=wan_link())
    replicas = []
    for pid in world.pids:
        fd = world.attach(
            pid,
            OracleFailureDetector(
                EVENTUALLY_CONSISTENT,
                OracleConfig(pre_behavior="ideal"),
            ),
        )
        replicas.append(KVReplica(world.attach(pid, ReplicatedStateMachine(fd))))
    world.start()

    # Clients hit different replicas at different times.
    world.scheduler.schedule(1.0, lambda: replicas[0].put("lang", "python"))
    world.scheduler.schedule(5.0, lambda: replicas[2].put("paper", "JPDC-65"))
    world.scheduler.schedule(9.0, lambda: replicas[4].put("class", "<>C"))
    world.scheduler.schedule(40.0, lambda: replicas[1].put("lang", "ml"))
    world.scheduler.schedule(55.0, lambda: replicas[3].delete("paper"))

    # Replica 2 crashes mid-run; the rest must keep agreeing.
    world.schedule_crash(2, 30.0)

    world.run(until=2000.0)

    print(f"crashed replicas: {sorted(world.crashed_pids)}")
    for pid, replica in enumerate(replicas):
        if pid in world.crashed_pids:
            print(f"  p{pid}: (crashed)  log={replica.rsm.log}")
        else:
            print(f"  p{pid}: store={replica.store}  log length={len(replica.rsm.log)}")

    live = [replicas[p] for p in world.correct_pids]
    logs = {tuple(map(str, r.rsm.log)) for r in live}
    stores = {tuple(sorted(r.store.items())) for r in live}
    assert len(logs) == 1, "replicas diverged on the log!"
    assert len(stores) == 1, "replicas diverged on the store!"
    print("all surviving replicas hold identical logs and stores ✔")


if __name__ == "__main__":
    main()
