#!/usr/bin/env python3
"""The replicated KV service, live: real TCP clients, a killed leader.

The simulator twin of this example (``replicated_kv_store.py``) drives a
replicated log inside virtual time.  This one runs the whole service
path for real: three replicas on asyncio event loops, a TCP frontend on
each, and ordinary :class:`repro.svc.KVClient` sessions doing
exactly-once writes over the wire — then the elected leader is killed
mid-session and the client's next command lands on its successor via a
redirect, without the client doing anything special.

Run:  python examples/kv_service.py
"""

import asyncio

from repro.cluster import LocalCluster, verdicts_ok
from repro.svc import KVClient, start_service

N = 3
PERIOD = 0.05


async def main() -> None:
    cluster = LocalCluster(N, transport="loopback")
    stacks = cluster.deploy_standard_stack(stack="rsm", period=PERIOD)
    await cluster.start()
    frontends = await start_service(cluster, stacks)
    addrs = [front.local_address for front in frontends]
    print(f"serving on {addrs}")

    async with KVClient(addrs, client_id="alice") as alice:
        print("alice:", await alice.put("lang", "python"))
        print("alice:", await alice.acquire("release-lock"))

        # Kill whichever node leads right now; ◇C re-elects a survivor
        # and the very same client session keeps going.
        leader = stacks["fd"][0].trusted()
        cluster.kill(leader)
        print(f"killed the leader p{leader}")
        print("alice:", await alice.put("paper", "JPDC-65"))
        print("alice:", await alice.cas("lang", expect="python", value="ml"))
        print(f"alice followed {alice.redirects} redirect(s), "
              f"retried {alice.retries} time(s)")

    # Every surviving replica applied the same log: identical stores,
    # identical lock tables, identical session (dedup) tables.
    survivors = [frontends[pid] for pid in cluster.correct_pids]
    ok = await cluster.run_until(
        lambda: len({str(front.state.dump()) for front in survivors}) == 1,
        timeout=10.0,
    )
    assert ok, "survivors never converged"
    store = survivors[0].state.store
    print(f"converged store: {store}")
    assert store == {"lang": "ml", "paper": "JPDC-65"}
    assert survivors[0].state.locks == {"release-lock": "alice"}

    verdicts = cluster.verdicts()
    for front in frontends:
        await front.close()
    await cluster.stop()
    assert verdicts_ok(verdicts), verdicts
    print("agreement, prefix, and progress verdicts all hold ✔")


if __name__ == "__main__":
    asyncio.run(main())
