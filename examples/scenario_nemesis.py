#!/usr/bin/env python3
"""Declarative fault scenarios: one schedule, two substrates.

A :class:`repro.scenario.Scenario` is a compiled adversary — timed fault
events over the unified :class:`repro.cluster.ClusterAPI` verb surface.
This example builds one *by hand* (crash, stall/resume, partition/heal as
plain ``{"op": ...}`` event dicts), runs it on a deterministic
virtual-clock cluster twice to show the byte-identical replay, then
generates a *seeded random* nemesis schedule with
:func:`repro.scenario.generate_scenario` and runs that too.  Every run
ends in the machine-checked verdicts — the eventual-consistency
contract: wrongful suspicions during the fault windows, agreement and
progress after them.

The same documents drive a real multi-process cluster (SIGSTOP stalls,
kill -9 crashes, per-node fault-control messages) through the identical
verb calls:  ``python -m repro scenario run --file nemesis.json
--runtime proc``.

Run:  python examples/scenario_nemesis.py
"""

import asyncio

from repro.cluster import LocalCluster
from repro.scenario import Scenario, generate_scenario, run_scenario

# A hand-written scenario document: the dict form mirrors the JSON file
# `repro scenario gen` emits (times in cluster seconds; this one is
# scaled for PERIOD below, one detection timeout = 2.4 * PERIOD).
PERIOD = 0.05
HANDMADE = {
    "name": "handmade-nemesis",
    "n": 3,
    "period": PERIOD,
    "duration": 6.0,
    "propose_after": 4.0,
    "events": [
        {"t": 0.50, "op": "partition", "groups": [[2]]},
        {"t": 1.00, "op": "heal"},
        {"t": 1.60, "op": "stall", "pid": 1},
        {"t": 2.20, "op": "resume", "pid": 1},
        {"t": 2.80, "op": "degrade", "src": 0, "dst": 1, "loss": 0.6},
        {"t": 3.20, "op": "restore", "src": 0, "dst": 1},
        {"t": 3.60, "op": "crash", "pid": 2},
    ],
}


def run_once(scenario: Scenario, seed: int = 1):
    """One deterministic virtual-clock run; returns (result, trace)."""
    cluster = LocalCluster(
        n=scenario.n, transport="loopback", clock="virtual", seed=seed,
        duration=scenario.duration,
    )
    cluster.deploy_standard_stack(
        stack="ring", period=scenario.period,
        propose_after=scenario.propose_after,
    )
    result = asyncio.run(run_scenario(cluster, scenario))
    return result, cluster.trace.events


def show(title: str, result) -> None:
    flags = " ".join(
        f"{name.split('.')[-1]}={'ok' if v else 'VIOLATED'}"
        for name, v in result["verdicts"].items()
    )
    print(f"{title}\n  ok={result['ok']}  {flags}")


def main() -> None:
    scenario = Scenario.from_dict(HANDMADE)
    print(f"hand-written scenario: {len(scenario)} events, "
          f"n={scenario.n}, duration={scenario.duration}s")
    result_a, trace_a = run_once(scenario)
    result_b, trace_b = run_once(scenario)
    show("run 1:", result_a)
    show("run 2:", result_b)
    print(f"  byte-identical replay: {trace_a == trace_b} "
          f"({len(trace_a)} events)")

    generated = generate_scenario(
        n=3, seed=7, period=PERIOD, partitions=1, stalls=1, storms=1,
        degrades=1, crashes=1,
    )
    print(f"\ngenerated scenario {generated.name!r}: {len(generated)} "
          f"events (same seed => byte-identical JSON)")
    result, _ = run_once(generated)
    show("generated run:", result)


if __name__ == "__main__":
    main()
