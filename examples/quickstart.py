#!/usr/bin/env python3
"""Quickstart: solve Uniform Consensus with an Eventually Consistent (◇C)
failure detector.

Builds a 5-process partially synchronous system, deploys the full
message-passing ◇C stack of the paper (leader-based Ω + ring ◇S suspect
lists, combined), runs the ◇C-consensus algorithm of Figs. 3–4 on top, and
prints what happened — including a mid-run crash of the elected leader.

Run:  python examples/quickstart.py
"""

from repro import (
    ECConsensus,
    ReliableBroadcast,
    World,
    attach_ec_stack,
    extract_outcome,
    require_consensus,
)
from repro.workloads import partially_synchronous_link

N = 5
GST = 40.0


def main() -> None:
    # 1. A world: n processes, links chaotic before GST and timely after.
    world = World(n=N, seed=7, default_link=partially_synchronous_link(gst=GST))

    # 2. The ◇C failure-detector stack on every process (Section 3: ◇C at no
    #    extra cost on top of a leader-oriented ◇S implementation).
    detectors = attach_ec_stack(world, suspects="ring", initial_timeout=10.0)

    # 3. The ◇C-consensus algorithm of Section 5 on every process.
    protocols = []
    for pid in world.pids:
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protocols.append(
            world.attach(pid, ECConsensus(detectors[pid], rb))
        )

    world.start()
    for pid in world.pids:
        protocols[pid].propose(f"value-from-p{pid}")

    # 4. Adversity: the initially elected leader (process 0) crashes.
    world.schedule_crash(0, 120.0)

    world.run(until=2500.0)

    # 5. Report.
    print(f"n = {N}, GST = {GST}, crashed = {sorted(world.crashed_pids)}")
    for protocol in protocols:
        status = (
            f"decided {protocol.decision!r} in round {protocol.decision_round} "
            f"at t={protocol.decision_time:.1f}"
            if protocol.decided
            else "crashed before deciding"
        )
        print(f"  p{protocol.pid}: {status}")
    leaders = {d.pid: d.trusted() for d in detectors if not d.crashed}
    print(f"final leaders: {leaders}")

    # 6. Machine-checked correctness: all four Uniform Consensus properties.
    outcome = extract_outcome(world.trace, "ec")
    results = require_consensus(outcome, world.correct_pids)
    print(f"consensus properties: {results}")


if __name__ == "__main__":
    main()
