#!/usr/bin/env python3
"""Network partition, minority stall, majority progress, and recovery.

Seven replicas run a replicated counter (repeated ◇C consensus).  A
partition splits off a 3-process minority: the majority side keeps
committing increments; the minority — unable to gather majorities — stalls
(consensus stays *safe*, it just can't terminate).  When the partition
heals, the minority catches up and all logs converge.  The FD timeline
shows suspicion sweeping across the cut and washing out after healing.

Run:  python examples/partition_and_recovery.py
"""

from repro import (
    NetworkController,
    ReplicatedStateMachine,
    World,
)
from repro.analysis import suspicion_timeline
from repro.fd import HeartbeatEventuallyPerfect
from repro.transform import PToC
from repro.sim import FixedDelay, ReliableLink

N = 7
PARTITION = (60.0, 260.0)
MINORITY = [4, 5, 6]


def main() -> None:
    world = World(n=N, seed=31, default_link=ReliableLink(FixedDelay(1.0)))
    replicas = []
    for pid in world.pids:
        hb = world.attach(pid, HeartbeatEventuallyPerfect(
            initial_timeout=10.0, channel="fd.p"))
        fd = world.attach(pid, PToC(hb))  # ◇C via the Section 3 reduction
        # rebroadcast_period turns on the recovery machinery (client-style
        # command retries + retransmitting RB) that partitions require:
        # the base model assumes reliable links, and a partition is not.
        replicas.append(world.attach(
            pid, ReplicatedStateMachine(
                fd, rebroadcast_period=15.0,
                consensus_kwargs={"stubborn_period": 15.0})))
    controller = NetworkController(world)
    world.start()

    counters = {pid: 0 for pid in world.pids}

    def apply_command(pid, cmd):
        if cmd["op"] == "inc":  # the only command this demo's clients issue
            counters[pid] += cmd["by"]

    for pid, rsm in enumerate(replicas):
        rsm.on_apply(lambda slot, cmd, pid=pid: apply_command(pid, cmd))

    # Clients submit increments throughout, on both sides of the cut.
    for i, t in enumerate(range(10, 400, 40)):
        replica = replicas[i % N]
        world.scheduler.schedule_at(
            float(t), lambda r=replica: r.submit({"op": "inc", "by": 1}))

    controller.partition_between(*PARTITION, MINORITY)
    world.run(until=PARTITION[0] + 50.0)
    majority_mid = len(replicas[0].log)
    minority_mid = len(replicas[4].log)
    world.run(until=2500.0)

    print(suspicion_timeline(world.trace, target=4, channel="fd.p",
                             width=64, end=500.0))
    print()
    print(f"partition {PARTITION[0]:.0f}..{PARTITION[1]:.0f}, minority = {MINORITY}")
    print(f"mid-partition log lengths: majority side {majority_mid}, "
          f"minority side {minority_mid}")
    print(f"final counters: { {pid: counters[pid] for pid in world.pids} }")
    logs = {tuple(map(str, r.log)) for r in replicas}
    assert len(logs) == 1, "logs diverged!"
    assert majority_mid > minority_mid, "majority should outpace the minority"
    assert counters[0] == 10 == counters[4]
    print("logs converged after healing; no divergence at any point ✔")


if __name__ == "__main__":
    main()
