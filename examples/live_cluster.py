#!/usr/bin/env python3
"""Live cluster: the same ◇C + consensus stack, but on real sockets.

Everything the other examples run inside the discrete-event simulator runs
here on real asyncio event loops: five nodes on localhost UDP, heartbeats
every 50 wall-clock milliseconds, the unchanged component classes from
``repro.fd`` / ``repro.transform`` / ``repro.consensus``.  We let the
nodes elect a leader, kill the leader's node outright (its socket goes
silent mid-run), and watch the survivors re-elect and still reach a
uniform decision — then check the run with the *same* trace analysis the
simulator uses.

Run:  python examples/live_cluster.py
"""

import asyncio

from repro.analysis import (
    check_consensus,
    extract_outcome,
    leader_timeline,
    round_timeline,
)
from repro.net import LocalCluster, attach_standard_stack

N = 5
PERIOD = 0.05  # wall-clock seconds between heartbeats


async def main() -> None:
    # 1. Five NodeHosts in this process, each with its own UDP socket.
    cluster = LocalCluster(n=N, transport="udp", seed=7)
    stacks = attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=2.4 * PERIOD, timeout_increment=PERIOD,
    )
    detectors, protocols = stacks["fd"], stacks["consensus"]

    # 2. Boot and give the ◇C stack a moment to elect and announce a leader.
    await cluster.start()
    await cluster.run(8 * PERIOD)
    leader = detectors[1].trusted()
    print(f"elected leader: p{leader} "
          f"(all agree: {len({d.trusted() for d in detectors}) == 1})")

    # 3. Kill the leader's node: process crashed, socket closed, silence.
    kill_time = cluster.now
    cluster.kill(leader)
    print(f"killed p{leader} at t={kill_time:.2f}s; survivors propose...")
    for p in protocols:
        if not p.crashed:
            p.propose(f"value-from-p{p.pid}")

    # 4. Wait (in wall time!) for every survivor to decide.
    decided = await cluster.run_until(
        lambda: all(p.decided for p in protocols if not p.crashed),
        timeout=30.0,
    )
    await cluster.run(2 * PERIOD)  # let trailing frames land in the trace
    await cluster.stop()

    # 5. The same analysis the simulator gets — one shared trace.
    print()
    print(leader_timeline(cluster.trace, channel="fd", width=64,
                          end=cluster.now))
    print()
    print(round_timeline(cluster.trace, "ec", width=64, end=cluster.now))
    print()
    for p in protocols:
        state = (f"decided {p.decision!r}" if p.decided
                 else ("killed" if p.crashed else "undecided"))
        print(f"  p{p.pid}: {state}")
    outcome = extract_outcome(cluster.trace, "ec")
    results = check_consensus(outcome, cluster.correct_pids)
    print("properties:", results)

    # The example checks itself: a silent pass would be worthless.
    assert decided, "survivors failed to decide in time"
    assert all(results.values()), results
    values = {p.decision for p in protocols if p.decided}
    assert len(values) == 1, f"split decision: {values}"
    print(f"\nuniform decision over real sockets: {values.pop()!r}")


if __name__ == "__main__":
    asyncio.run(main())
