"""Regenerate the example per-node traces in this directory.

Runs the deterministic loopback scenario (n = 3, fixed 1.0 delays, leader
p0 killed at t = 2.0, all proposals in flight, metrics snapshots every
10.0) with per-node JSONL shipping, then fabricates disagreeing
wall-clock epochs in the headers —
node 0 "booted" 0.2 s after node 2, node 1 0.55 s after — so that

    python -m repro trace merge examples/traces/node-*.jsonl

has real clock offsets to recover.  The run itself is virtual-clock and
seeded, so regeneration is byte-for-byte reproducible.

Usage:  PYTHONPATH=src python examples/traces/regenerate.py
"""

import json
from pathlib import Path

from repro.net import FaultPlan, LocalCluster, attach_standard_stack
from repro.sim import FixedDelay

HERE = Path(__file__).parent
#: Fabricated wall clocks at trace time zero (node 2 anchors the merge).
EPOCHS = {0: 1000.0, 1: 1000.35, 2: 999.8}


def main():
    cluster = LocalCluster(
        n=3, transport="loopback", clock="virtual", seed=0,
        fault_plan=FaultPlan(3, delay=FixedDelay(1.0)),
        trace_out=HERE,
    )
    stacks = attach_standard_stack(
        cluster, period=5.0, initial_timeout=12.0, timeout_increment=5.0,
        metrics_interval=10.0,
    )
    cluster.start_virtual()
    for p in stacks["consensus"]:
        p.propose(f"v{p.pid}")
    cluster.schedule_kill(0, 2.0)
    cluster.run_virtual(until=80.0)
    cluster.close_traces()

    for pid, epoch in EPOCHS.items():
        path = HERE / f"node-{pid}.jsonl"
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["epoch_wall"] = epoch
        lines[0] = json.dumps(header, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        print(f"{path.name}: {len(lines) - 1} events, epoch_wall={epoch}")


if __name__ == "__main__":
    main()
