#!/usr/bin/env python3
"""Totally ordered event delivery (atomic broadcast) across replicas.

Five services each emit local events concurrently; business logic demands
every replica process the *global* event stream in the same order (think:
bank ledger entries, inventory movements).  Plain broadcast gives each
replica its own interleaving; :class:`TotalOrderBroadcast` — repeated
◇C consensus underneath — gives all replicas the identical sequence, even
while one replica crashes mid-stream.

Run:  python examples/total_order_events.py
"""

from repro import TotalOrderBroadcast, World
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.workloads import wan_link

N = 5
EVENTS_PER_REPLICA = 4


def main() -> None:
    world = World(n=N, seed=17, default_link=wan_link())
    tobs = []
    for pid in world.pids:
        fd = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal")))
        tobs.append(world.attach(pid, TotalOrderBroadcast(fd)))
    world.start()

    # Every replica emits events on its own schedule — concurrency galore.
    for pid in world.pids:
        for k in range(EVENTS_PER_REPLICA):
            world.scheduler.schedule_at(
                2.0 + 7.0 * k + pid,  # staggered, overlapping
                lambda pid=pid, k=k: tobs[pid].to_broadcast(
                    f"event-{pid}.{k}"),
            )

    # Replica 4 crashes mid-stream: its already-broadcast events must still
    # be ordered; its future ones are lost with it (it is the client).
    world.schedule_crash(4, 12.0)

    world.run(until=4000.0)

    live = [t for t in tobs if not t.crashed]
    sequences = [tuple(m for _, m in t.delivered) for t in live]
    print(f"crashed: {sorted(world.crashed_pids)}")
    print(f"delivered {len(sequences[0])} events, identically ordered at "
          f"{len(live)} replicas:")
    for i, (origin, event) in enumerate(live[0].delivered):
        print(f"  #{i:02d} {event}   (from p{origin})")
    assert len(set(sequences)) == 1, "replicas saw different orders!"
    # Everything broadcast by correct replicas made it.
    for pid in world.correct_pids:
        for k in range(EVENTS_PER_REPLICA):
            assert f"event-{pid}.{k}" in sequences[0]
    print("total order verified across all surviving replicas ✔")


if __name__ == "__main__":
    main()
