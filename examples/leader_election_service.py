#!/usr/bin/env python3
"""A fault-tolerant work-dispatcher built on the ◇C leader election.

The paper's ◇C class bundles Ω's eventual leader election with ◇S suspect
sets.  This example uses both halves of the interface directly (no
consensus): the currently trusted process acts as the dispatcher handing
work items to workers it does *not* suspect; when the dispatcher crashes,
the detector converges on a new leader and the work keeps flowing, skipping
the workers that crashed along the way.

Run:  python examples/leader_election_service.py
"""

from repro import Component, World, attach_ec_stack
from repro.workloads import partially_synchronous_link

N = 6
WORK_ITEMS = 40


class Dispatcher(Component):
    """Every process runs this; only the self-trusted one hands out work."""

    channel = "work"

    def __init__(self, fd, queue):
        super().__init__()
        self.fd = fd
        self.queue = queue  # shared description of work to do (ids)
        self.completed = {}  # item -> worker that did it
        self.in_flight = {}
        self.done_log = []

    def on_start(self):
        self.periodically(3.0, self.dispatch)

    def dispatch(self):
        if self.fd.trusted() != self.pid:
            return  # not the leader right now
        workers = [
            q for q in range(self.n)
            if q != self.pid and q not in self.fd.suspected()
        ]
        if not workers:
            return
        for item in list(self.queue):
            if item in self.completed or item in self.in_flight:
                continue
            worker = workers[item % len(workers)]
            self.in_flight[item] = worker
            self.send(worker, ("DO", item), tag="work")
        # Re-dispatch items stuck at workers we now suspect.
        for item, worker in list(self.in_flight.items()):
            if worker in self.fd.suspected():
                del self.in_flight[item]

    def on_message(self, src, payload):
        kind = payload[0]
        if kind == "DO":
            # Worker role: do the "work" and report back to whoever asked.
            self.send(src, ("DONE", payload[1], self.pid), tag="done")
        elif kind == "DONE":
            _, item, worker = payload
            if item not in self.completed:
                self.completed[item] = worker
                self.done_log.append((self.now, item, worker))
            self.in_flight.pop(item, None)


def main() -> None:
    world = World(n=N, seed=21,
                  default_link=partially_synchronous_link(gst=20.0))
    detectors = attach_ec_stack(world, suspects="ring", initial_timeout=8.0)
    queue = list(range(WORK_ITEMS))
    dispatchers = [
        world.attach(pid, Dispatcher(detectors[pid], queue))
        for pid in world.pids
    ]
    world.start()

    # The first leader (p0) and one worker (p3) crash mid-run.
    world.schedule_crash(0, 60.0)
    world.schedule_crash(3, 100.0)
    world.run(until=1200.0)

    live = [d for d in dispatchers if not d.crashed]
    leader = detectors[live[0].pid].trusted()
    print(f"crashed: {sorted(world.crashed_pids)}; final leader: p{leader}")
    merged = {}
    for d in live:
        merged.update(d.completed)
    print(f"completed {len(merged)}/{WORK_ITEMS} work items")
    by_worker = {}
    for item, worker in merged.items():
        by_worker.setdefault(worker, 0)
        by_worker[worker] += 1
    for worker in sorted(by_worker):
        marker = " (crashed later)" if worker in world.crashed_pids else ""
        print(f"  worker p{worker}: {by_worker[worker]} items{marker}")
    assert len(merged) == WORK_ITEMS, "work was lost!"
    assert leader in world.correct_pids
    print("all work completed despite leader + worker crashes ✔")


if __name__ == "__main__":
    main()
