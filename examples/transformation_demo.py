#!/usr/bin/env python3
"""Watching the ◇C → ◇P transformation (Fig. 2) converge.

Sets up the exact link regime Theorem 1 assumes — the leader's input links
partially synchronous (chaotic before GST, bounded after), its output links
fair-lossy — plus a crash, and narrates what the transformation does:

* before GST the leader falsely suspects slow processes, then retracts and
  *widens* the adaptive timeout Δp(q) (Task 4);
* after GST the timeouts have grown past 2Φ+Δ and false suspicions stop;
* the crash is detected by the leader's timeout and the suspect list
  reaches every process over the lossy links (Tasks 1 & 5).

Run:  python examples/transformation_demo.py
"""

from repro import (
    CToPTransformation,
    FairLossyLink,
    ReliableLink,
    World,
)
from repro.analysis import check_fd_class_on_world, detection_latency
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FixedDelay
from repro.workloads import partially_synchronous_link

N = 5
GST = 120.0
LEADER = 0
CRASH_AT = 400.0
VICTIM = 3
END = 1500.0


def main() -> None:
    world = World(n=N, seed=13, default_link=ReliableLink(FixedDelay(1.0)))
    # Theorem 1's link assumptions, wired explicitly:
    world.network.set_links_to(
        LEADER, lambda: partially_synchronous_link(gst=GST, pre_max=35.0)
    )
    world.network.set_links_from(
        LEADER,
        lambda: FairLossyLink(inner=ReliableLink(FixedDelay(1.0)),
                              loss_prob=0.35),
    )

    transforms = []
    for pid in world.pids:
        source = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT,
            OracleConfig(pre_behavior="ideal", leader=LEADER),
            channel="fd.c"))
        transforms.append(world.attach(pid, CToPTransformation(
            source, send_period=5.0, alive_period=5.0,
            initial_timeout=8.0, timeout_increment=6.0, channel="fdp")))
    world.schedule_crash(VICTIM, CRASH_AT)

    # Narrate the leader's view at checkpoints.
    checkpoints = [30.0, 80.0, GST + 30, CRASH_AT + 30, END - 10]

    def snapshot():
        leader = transforms[LEADER]
        deltas = {q: round(leader.delta_of(q), 1)
                  for q in range(N) if q != LEADER}
        print(f"t={world.now:7.1f}  leader suspects {sorted(leader.suspected())}"
              f"  Δp(q)={deltas}")

    for t in checkpoints:
        world.scheduler.schedule_at(t, snapshot)

    world.run(until=END)

    print()
    latency = detection_latency(world.trace, VICTIM, CRASH_AT,
                                world.correct_pids, channel="fdp")
    print(f"crash of p{VICTIM} detected system-wide {latency:.1f} after it happened")
    for det in transforms:
        if not det.crashed:
            print(f"  p{det.pid} suspects {sorted(det.suspected())}")

    results = check_fd_class_on_world(world, EVENTUALLY_PERFECT, channel="fdp")
    print("\n<>P properties on this run:")
    for name, result in results.items():
        print(f"  {name}: ok={result.ok} stabilized_at="
              f"{result.stabilized_at and round(result.stabilized_at, 1)}")
    assert all(results.values())


if __name__ == "__main__":
    main()
