#!/usr/bin/env python3
"""Process cluster: one OS process per node, crashes by ``kill -9``.

``examples/live_cluster.py`` hosts five nodes in one Python process;
here each node is a real subprocess (``python -m repro node``) bound to
its own UDP socket, discovering its peers from a static JSON address
book.  The crash model is the real thing — the launcher SIGKILLs the
initial leader mid-run, so the victim gets no chance to say goodbye:
its heartbeats just stop, exactly the crash-stop silence the paper's
detectors are built to notice.

There is no shared trace object across processes, so analysis is
entirely *postmortem*: every node ships ``node-<pid>.jsonl``, the
offline merger rebases their clocks onto one time base, the launcher
injects a synthetic ``crash`` event at the recorded kill time, and the
merged stream feeds the exact same property checkers as a simulator or
in-process run.

Run:  python examples/proc_cluster.py
"""

import asyncio

from repro.analysis import leader_timeline
from repro.cluster import ProcessCluster, verdicts_ok

N = 3
PERIOD = 0.05   # wall-clock seconds between heartbeats
DURATION = 6.0  # scenario length; every surviving node exits 0 after it
CRASH_AT = 2.5  # SIGKILL the initial ring leader (p0) here
PROPOSE = 3.5   # survivors propose after the crash


async def main() -> None:
    # 1. Script the whole scenario up front: there is no live control
    #    channel into a foreign process, only the address book and time.
    cluster = ProcessCluster(
        N, transport="udp", stack="ring", period=PERIOD,
        duration=DURATION, propose_after=PROPOSE, seed=7,
    )
    cluster.crash(0, at=CRASH_AT)

    # 2. Spawn the nodes and let the scenario play out.
    await cluster.start()
    print(f"spawned {N} node processes under {cluster.workdir}")
    print(f"kill -9 of p0 scheduled at t={CRASH_AT}s; waiting...")
    quiescent = await cluster.wait_quiescent()
    await cluster.stop()

    # 3. Exit statuses tell the crash-model story: -9 is SIGKILL.
    for pid, status in sorted(cluster.exit_statuses.items()):
        note = " (killed)" if status == -9 else ""
        print(f"  p{pid}: exit {status}{note}")

    # 4. Postmortem: merge the shipped traces, check the properties.
    report = cluster.merge_report()
    print(f"merged {len(report.files)} trace files, "
          f"{len(report.trace)} events")
    trace = cluster.traces()
    print()
    print(leader_timeline(trace, channel="fd", width=64))
    print()
    verdicts = cluster.verdicts()
    for name, result in sorted(verdicts.items()):
        print(f"  {name}: {'ok' if result else 'VIOLATED'}")

    # The example checks itself: a silent pass would be worthless.
    assert quiescent, "nodes failed to quiesce in time"
    assert verdicts_ok(verdicts), verdicts
    omega = verdicts["fd.omega"]
    assert omega.witness != 0, "dead p0 cannot be the stable leader"
    print(f"\nnew stable leader after the kill: p{omega.witness}")


if __name__ == "__main__":
    asyncio.run(main())
