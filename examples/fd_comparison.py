#!/usr/bin/env python3
"""Side-by-side comparison of the failure-detector implementations.

Runs the three message-passing detector families of the paper's Section 3/4
discussion under identical conditions (partial synchrony, one crash) and
prints, for each: steady-state message cost per period, crash-detection
latency, and the elected leader — the quantities behind experiments E3/E8.

Run:  python examples/fd_comparison.py
"""

from repro import World
from repro.analysis import channel_message_count, detection_latency
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    HeartbeatEventuallyPerfect,
    LeaderBasedOmega,
    OracleConfig,
    OracleFailureDetector,
    RingDetector,
)
from repro.transform import CToPTransformation
from repro.workloads import partially_synchronous_link

N = 8
PERIOD = 5.0
CRASH_AT = 150.0
END = 2500.0
MEASURE_FROM = 1200.0  # steady state window


def run_detector(name, attach):
    world = World(
        n=N, seed=5, default_link=partially_synchronous_link(gst=50.0)
    )
    channel = attach(world)
    victim = N // 2
    world.schedule_crash(victim, CRASH_AT)
    world.run(until=END)
    msgs = channel_message_count(world.trace, channel, after=MEASURE_FROM)
    per_period = msgs / ((END - MEASURE_FROM) / PERIOD)
    latency = detection_latency(
        world.trace, victim, CRASH_AT, world.correct_pids, channel=channel
    )
    sample = world.component(0, channel)
    leader = sample.trusted()
    return per_period, latency, leader


def main() -> None:
    def heartbeat(world):
        world.attach_all(lambda pid: HeartbeatEventuallyPerfect(period=PERIOD))
        return "fd"

    def ring(world):
        world.attach_all(lambda pid: RingDetector(period=PERIOD))
        return "fd"

    def omega(world):
        world.attach_all(lambda pid: LeaderBasedOmega(period=PERIOD))
        return "fd"

    def fig2(world):
        for pid in world.pids:
            src = world.attach(pid, OracleFailureDetector(
                EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal"),
                channel="fd.c"))
            world.attach(pid, CToPTransformation(
                src, send_period=PERIOD, alive_period=PERIOD, channel="fdp"))
        return "fdp"

    rows = [
        ("all-to-all heartbeat <>P  [CT96]", heartbeat, f"n(n-1) = {N*(N-1)}"),
        ("ring <>S/<>P              [LAF99]", ring, f"2n     = {2*N}"),
        ("leader-based Omega        [LFA00]", omega, f"n-1    = {N-1}"),
        ("<>C -> <>P  (Fig. 2)      [paper]", fig2, f"2(n-1) = {2*(N-1)}"),
    ]
    print(f"n = {N}, period = {PERIOD}, crash of p{N//2} at t = {CRASH_AT}\n")
    print(f"{'detector':38s} {'msgs/period':>12s} {'(paper)':>14s} "
          f"{'latency':>9s} {'leader':>7s}")
    for name, attach, paper_cost in rows:
        per_period, latency, leader = run_detector(name, attach)
        lat = f"{latency:.1f}" if latency is not None else "n/a"
        led = f"p{leader}" if leader is not None else "-"
        print(f"{name:38s} {per_period:12.1f} {paper_cost:>14s} "
              f"{lat:>9s} {led:>7s}")
    print("\nNote the trade-off the paper highlights: the ring is cheap but")
    print("slow to converge (suspicions hop around the ring), while the")
    print("Fig. 2 transformation is both cheaper and fast — the leader")
    print("broadcasts its list directly.")


if __name__ == "__main__":
    main()
