"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's analytical comparisons
(DESIGN.md §3 maps experiment ids to paper sections).  Results are printed
and also written to ``benchmarks/results/<experiment>.txt`` so they survive
pytest's output capture; EXPERIMENTS.md summarizes paper-vs-measured.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def publish(experiment: str, table: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(table + "\n")
