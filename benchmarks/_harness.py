"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's analytical comparisons
(DESIGN.md §3 maps experiment ids to paper sections).  Results are printed
and persisted twice under ``benchmarks/results/``: a human-readable
``<experiment>.txt`` table and a machine-readable ``BENCH_<experiment>.json``
(title, headers, row data, note) for dashboards and regression tooling;
EXPERIMENTS.md summarizes paper-vs-measured.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def publish(experiment: str, table: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(table + "\n")


def _json_cell(cell: object) -> object:
    """Keep JSON-native values as data; stringify everything else."""
    if cell is None or isinstance(cell, (bool, int, float, str)):
        return cell
    return str(cell)


def publish_table(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    """Publish one experiment's result in both formats.

    Renders and persists the aligned text table (as :func:`publish` did)
    and additionally writes ``BENCH_<experiment>.json`` carrying the same
    data structurally.  Returns the rendered table.
    """
    rows = [list(row) for row in rows]
    table = format_table(title, headers, rows, note=note)
    publish(experiment, table)
    record = {
        "experiment": experiment,
        "title": title,
        "headers": list(headers),
        "rows": [[_json_cell(c) for c in row] for row in rows],
        "note": note,
    }
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    return table
