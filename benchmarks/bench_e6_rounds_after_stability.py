"""E6 — Theorem 3 + Section 5.4: rounds needed after detector stabilization.

The Theorem 3 adversary: until stabilization every process suspects every
other process (and trusts itself); afterwards the detector is stable on a
designated leader while every other process stays slandered forever —
which ◇S permits.  For each n, the designated leader is chosen worst-case
for the rotating coordinator (the process whose coordinator turn lies
furthest in the future).

Measured: fresh rounds after stabilization until decision.  Paper: the
◇C-consensus decides in one round after stabilization; any rotating-
coordinator ◇S algorithm has runs needing n rounds.
"""

import pytest

from repro.analysis import round_at, rounds_after_system
from repro.workloads import theorem3_run

from _harness import publish_table

STAB = 200.0
NS = (4, 6, 8, 12)


def worst_leader_for_ct(n, seed=0):
    """Calibrate: find the round CT is in at stabilization, then pick the
    leader whose coordinator turn just passed (adversary's choice).

    Deterministic simulation makes the two-pass construction exact: the
    calibration run and the measured run coincide until stabilization.
    """
    probe = theorem3_run("ct", n=n, leader=0, stabilize_time=STAB, seed=seed)
    probe.run(until=STAB)
    frontier = max(
        round_at(probe.world.trace, pid, STAB, "ct") for pid in range(n)
    )
    # Coordinator of round r is (r-1) % n.  The frontier round itself can
    # still succeed (stabilization may hit mid-round), so the adversary
    # picks the coordinator of round frontier-1 — whose turn just passed —
    # putting its next turn n-1 rounds away.
    return (frontier - 2) % n, frontier


def measure(algo, n, leader, seed=0):
    run = theorem3_run(algo, n=n, leader=leader, stabilize_time=STAB,
                       seed=seed)
    run.run(until=20000.0)
    assert run.decided, (algo, n)
    return rounds_after_system(run.world.trace, STAB, algo)


def test_e6_rounds_after_stability(benchmark):
    rows = []
    for n in NS:
        leader, frontier = worst_leader_for_ct(n)
        ec_rounds = measure("ec", n, leader)
        ct_rounds = measure("ct", n, leader)
        rows.append((n, leader, ec_rounds, ct_rounds, n))
        assert ec_rounds == 1, (n, ec_rounds)
        # CT needs close to n rounds (the adversarially chosen leader's next
        # coordinator turn); allow slack for round drift after calibration.
        assert ct_rounds >= max(2, n - 3), (n, ct_rounds)
        assert ct_rounds <= n + 1, (n, ct_rounds)
    publish_table(
        "e6_rounds_after_stability",
        "E6 — fresh rounds to decide after detector stabilization "
        "(Theorem 3 adversary, worst-case leader for CT)",
        ["n", "leader", "<>C rounds", "CT rounds", "paper CT worst case"],
        rows,
        note="Paper (Thm. 3 / Sec. 5.4): leader election lets <>C-consensus "
        "decide in one round after stabilization; the rotating coordinator "
        "needs Θ(n) rounds in the worst case.",
    )

    benchmark.pedantic(
        lambda: measure("ec", 6, worst_leader_for_ct(6)[0]),
        rounds=3, iterations=1,
    )
