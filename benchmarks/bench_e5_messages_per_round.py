"""E5 — Section 5.4: messages exchanged per round in nice runs.

Paper (normal case — no crashes, no detector mistakes): ◇C-consensus 4n
(Θ(n)), Chandra–Toueg 3n (Θ(n)), Mostefaoui–Raynal 3n² (Θ(n²)); Reliable
Broadcast traffic excluded in all cases.  We count actual network sends
tagged with the round number, sweep n, and fit the scaling exponent.
"""

import math

import pytest

from repro.analysis import messages_per_round
from repro.workloads import nice_run

from _harness import publish_table

NS = (4, 6, 8, 12, 16)


def round1_messages(algo, n, seed=1):
    run = nice_run(algo, n=n, seed=seed).run(until=600.0)
    assert run.decided, (algo, n)
    return messages_per_round(run.world.trace)[1]


def scaling_exponent(points):
    """Log-log slope between smallest and largest n."""
    (n0, m0), (n1, m1) = points[0], points[-1]
    return math.log(m1 / m0) / math.log(n1 / n0)


def test_e5_messages_per_round(benchmark):
    formulas = {
        "ec": lambda n: 4 * (n - 1),
        "ct": lambda n: 3 * (n - 1),
        "mr": lambda n: 3 * n * (n - 1),
    }
    rows = []
    exponents = {}
    for algo, formula in formulas.items():
        points = []
        for n in NS:
            got = round1_messages(algo, n)
            expected = formula(n)
            assert got == expected, (algo, n, got, expected)
            points.append((n, got))
        exponents[algo] = scaling_exponent(points)
        rows.append(
            (algo, *[p[1] for p in points], f"{exponents[algo]:.2f}")
        )
    publish_table(
        "e5_messages_per_round",
        "E5 — messages per round in nice runs (columns: n = "
        + ", ".join(map(str, NS)) + ")",
        ["protocol", *[f"n={n}" for n in NS], "log-log slope"],
        rows,
        note="Paper (Sec. 5.4): <>C ≈ 4n and CT ≈ 3n are Θ(n) (slope → 1); "
        "MR ≈ 3n² is Θ(n²) (slope → 2).  Counts exclude Reliable "
        "Broadcast, as in the paper.",
    )
    assert exponents["ec"] < 1.3
    assert exponents["ct"] < 1.3
    assert exponents["mr"] > 1.7

    benchmark.pedantic(
        lambda: round1_messages("ec", 8), rounds=3, iterations=1
    )
