"""E4 — Section 5.4: communication steps (phases) per round.

Measures, from protocol traces, the number of distinct phases each round of
each consensus protocol goes through.  Paper: ◇C-consensus 5, Chandra–Toueg
4, Mostefaoui–Raynal 3 (and the merged-Phase-0/1 ◇C variant 4 — ablation A1
covers its message cost).
"""

import pytest

from repro.analysis import max_phases_per_round
from repro.workloads import nice_run

from _harness import publish_table

EXPECTED = {"ec": 5, "ct": 4, "mr": 3}


def measure(algo, n=5, seed=0, **kwargs):
    run = nice_run(algo, n=n, seed=seed, **kwargs).run(until=400.0)
    assert run.decided
    return max_phases_per_round(run.world.trace, algo)


def test_e4_phases_per_round(benchmark):
    rows = []
    for algo, expected in EXPECTED.items():
        got = measure(algo)
        rows.append((algo, got, expected, "ok" if got == expected else "NO"))
        assert got == expected, (algo, got)
    merged = measure("ec", merged_phase01=True)
    rows.append(("ec (merged 0+1)", merged, 4, "ok" if merged == 4 else "NO"))
    assert merged == 4
    publish_table(
        "e4_phases_per_round",
        "E4 — phases (communication steps) per round, measured from traces",
        ["protocol", "measured", "paper", "match"],
        rows,
        note="Paper (Sec. 5.4): <>C-consensus has five phases per round, "
        "Chandra–Toueg four, Mostefaoui–Raynal three; merging Phases 0 "
        "and 1 trades one phase for Θ(n²) messages.",
    )

    benchmark.pedantic(lambda: measure("ec"), rounds=3, iterations=1)
