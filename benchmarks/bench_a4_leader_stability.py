"""A4 (ablation) — leadership stability (related work [2] of the paper).

The paper's related-work section singles out *stable* Ω implementations
(Aguilera et al., DISC 2001): "once a leader is elected, it remains the
leader for as long as it does not crash and its links behave well".  The
simple leader-based Ω reinstates any lower-id process whose heartbeat gets
through, so a low-id process with *intermittently* flaky links keeps
displacing a perfectly good leader.

We stress both implementations with recurring degradation windows on p0's
output links and count leadership changes observed across all other
processes.  Both satisfy Ω; only the accusation-counter variant is stable.
"""

import pytest

from repro.fd import LeaderBasedOmega, StableLeaderOmega
from repro.sim import (
    FixedDelay,
    NetworkController,
    ReliableLink,
    UniformDelay,
    World,
)

from _harness import publish_table

N = 5
END = 3000.0


def run_case(factory, seed=4):
    world = World(n=N, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    dets = world.attach_all(factory)
    ctl = NetworkController(world)
    for start in range(100, int(END) - 200, 200):
        for dst in range(1, N):
            ctl.degrade_between(
                float(start), float(start + 100), 0, dst,
                ReliableLink(UniformDelay(30.0, 60.0)),
            )
    world.run(until=END)
    churn = 0
    for det in dets[1:]:
        history = [
            ev.get("trusted")
            for ev in world.trace.select(
                kind="fd", pid=det.pid,
                where=lambda e: e.get("channel") == "fd",
            )
        ]
        churn += sum(1 for a, b in zip(history, history[1:]) if a != b)
    final_leaders = sorted({det.trusted() for det in dets[1:]})
    return churn, final_leaders


def test_a4_leader_stability(benchmark):
    plain_churn, plain_final = run_case(
        lambda pid: LeaderBasedOmega(initial_timeout=8.0, timeout_increment=0.0)
    )
    stable_churn, stable_final = run_case(
        lambda pid: StableLeaderOmega(initial_timeout=8.0, timeout_increment=0.0)
    )
    rows = [
        ("leader-based [16]", plain_churn, plain_final),
        ("stable (accusation counters) [2]", stable_churn, stable_final),
    ]
    publish_table(
        "a4_leader_stability",
        f"A4 — leadership churn with an intermittently flaky low-id process "
        f"(n={N}, recurring 100-unit degradation windows on p0's links)",
        ["Omega implementation", "leader changes observed", "final leaders"],
        rows,
        note="Paper (related work [2]): a stable implementation keeps the "
        "elected leader as long as it does not crash and its links behave; "
        "the simple reinstating rule flip-flops on every flaky window.",
    )

    assert len(stable_final) == 1
    assert plain_churn > 3 * max(1, stable_churn)

    benchmark.pedantic(
        lambda: run_case(lambda pid: StableLeaderOmega(initial_timeout=8.0),
                         seed=5),
        rounds=2, iterations=1,
    )
