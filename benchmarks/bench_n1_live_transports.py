"""N1 — the live runtime across transports (repro.net, not the simulator).

Runs the full ◇C + ◇C→◇P + consensus stack on real asyncio event loops for
each in-process transport (loopback, UDP, TCP on localhost), sweeping the
system size: elect a leader, kill it, and measure wall-clock time to a
surviving decision plus the wire traffic it took.  There is no paper row to match here — the
benchmark exists to show the *same unchanged components* meeting the
paper's guarantees outside virtual time, and to catch runtime-layer
regressions (codec bloat, transport stalls).
"""

import asyncio

from _harness import publish_table

from repro.analysis import check_consensus, extract_outcome
from repro.net import LocalCluster, attach_standard_stack

NS = (5, 7, 9)
PERIOD = 0.05


async def _run(transport: str, n: int, seed: int = 7):
    cluster = LocalCluster(n=n, transport=transport, seed=seed)
    stacks = attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=2.4 * PERIOD, timeout_increment=PERIOD,
    )
    await cluster.start()
    await cluster.run(8 * PERIOD)  # leader elected and announced
    kill_time = cluster.now
    cluster.kill(0)
    for p in stacks["consensus"]:
        if not p.crashed:
            p.propose(f"v{p.pid}")
    decided = await cluster.run_until(
        lambda: all(p.decided for p in stacks["consensus"] if not p.crashed),
        timeout=30.0,
    )
    decide_latency = cluster.now - kill_time
    await cluster.stop()
    outcome = extract_outcome(cluster.trace, "ec")
    ok = decided and all(
        check_consensus(outcome, cluster.correct_pids).values())
    frames = sum(h.transport.frames_sent for h in cluster.hosts)
    payload = sum(h.transport.bytes_sent for h in cluster.hosts)
    return ok, decide_latency, frames, payload


def measure(transport: str, n: int = NS[0]):
    return asyncio.run(_run(transport, n))


def test_n1_live_transports(benchmark):
    rows = []
    for transport in ("loopback", "udp", "tcp"):
        for n in NS:
            ok, latency, frames, payload = measure(transport, n)
            rows.append((
                f"{transport}/n{n}", n, "yes" if ok else "NO",
                f"{latency:.3f}", frames, payload,
            ))
            assert ok, (transport, n)
    publish_table(
        "n1_live_transports",
        f"N1 — live asyncio runtime, kill-the-leader scenario "
        f"(n in {NS}, period={PERIOD}s wall)",
        ["transport/n", "n", "decided+props", "s to decide after kill",
         "frames", "bytes"],
        rows,
        note="Same unchanged Component stacks as the simulator, hosted by "
        "repro.net over real event loops and (for udp/tcp) real localhost "
        "sockets; decisions survive a killed leader on every transport.",
    )

    benchmark.pedantic(lambda: measure("loopback"), rounds=3, iterations=1)
