"""E3 — Section 4 cost analysis: periodic messages of ◇P constructions.

Sweeps n and measures steady-state messages per period for:

* Chandra–Toueg all-to-all heartbeat ◇P — paper: n(n−1) ("n²");
* the ring ◇P of [15] — paper: 2n;
* the Fig. 2 ◇C → ◇P transformation — paper: 2(n−1);
* Fig. 2 stacked on the leader-based Ω of [16] — paper: 2(n−1) *total*
  (n−1 for the detector + n−1 for the transformation, after the text's
  observation that leader heartbeats and suspect lists can share a period).
"""

import pytest

from repro.analysis import channel_message_count
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    HeartbeatEventuallyPerfect,
    LeaderBasedOmega,
    OracleConfig,
    OracleFailureDetector,
    RingDetector,
)
from repro.sim import FixedDelay, ReliableLink, World
from repro.transform import CToPTransformation, OmegaToC

from _harness import publish_table

PERIOD = 5.0
WINDOW = (300.0, 800.0)
NS = (4, 8, 16, 32)


def steady_cost(world, channels):
    world.run(until=WINDOW[1])
    total = sum(
        channel_message_count(world.trace, ch, after=WINDOW[0])
        for ch in channels
    )
    return total / ((WINDOW[1] - WINDOW[0]) / PERIOD)


def heartbeat_world(n):
    w = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
    w.attach_all(lambda pid: HeartbeatEventuallyPerfect(period=PERIOD))
    return w, ("fd",)


def ring_world(n):
    w = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
    w.attach_all(lambda pid: RingDetector(period=PERIOD))
    return w, ("fd",)


def fig2_oracle_world(n):
    w = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
    for pid in w.pids:
        src = w.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal"),
            channel="fd.c"))
        w.attach(pid, CToPTransformation(
            src, send_period=PERIOD, alive_period=PERIOD, channel="fdp"))
    return w, ("fdp",)


def fig2_full_stack_world(n):
    """The complete message-passing pipeline: Ω [16] → ◇C → ◇P (Fig. 2)."""
    w = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
    for pid in w.pids:
        omega = w.attach(pid, LeaderBasedOmega(period=PERIOD,
                                               channel="fd.omega"))
        c_det = w.attach(pid, OmegaToC(omega, channel="fd.c"))
        w.attach(pid, CToPTransformation(
            c_det, send_period=PERIOD, alive_period=PERIOD, channel="fdp"))
    return w, ("fd.omega", "fdp")


def test_e3_fd_message_cost(benchmark):
    rows = []
    measured = {}
    for n in NS:
        hb = steady_cost(*heartbeat_world(n))
        ring = steady_cost(*ring_world(n))
        fig2 = steady_cost(*fig2_oracle_world(n))
        stack = steady_cost(*fig2_full_stack_world(n))
        measured[n] = (hb, ring, fig2, stack)
        rows.append((
            n,
            f"{hb:.1f} ({n*(n-1)})",
            f"{ring:.1f} ({2*n})",
            f"{fig2:.1f} ({2*(n-1)})",
            f"{stack:.1f} ({3*(n-1)})",
        ))
    publish_table(
        "e3_fd_message_cost",
        "E3 — periodic message cost of <>P constructions "
        "(measured msgs/period, paper formula in parens)",
        ["n", "all-to-all [6]", "ring [15]", "Fig.2 (oracle <>C)",
         "Omega[16]+Fig.2 stack"],
        rows,
        note="Paper (Sec. 4): Fig. 2 costs 2(n-1) — below the ring's 2n and "
        "far below n² all-to-all; the full Omega-based stack adds the "
        "leader's n-1 heartbeats.  (The paper's headline 2(n-1) total "
        "assumes piggybacking the suspect list on those heartbeats.)",
    )
    for n, (hb, ring, fig2, stack) in measured.items():
        assert hb == pytest.approx(n * (n - 1), rel=0.05)
        assert ring == pytest.approx(2 * n, rel=0.1)
        assert fig2 == pytest.approx(2 * (n - 1), rel=0.05)
        assert fig2 < ring < hb

    benchmark.pedantic(
        lambda: steady_cost(*fig2_oracle_world(8)), rounds=3, iterations=1
    )


def test_e3_trace_record_rate(benchmark):
    """Tracing overhead: the kind-filter fast path must actually be fast.

    Every message a detector sends is also a ``trace.record`` call, so at
    n=32 the all-to-all construction records ~1k events per period and the
    sink is on the hot path.  Rates are wall-clock (machine-dependent —
    the drift checker skips them); the regression being pinned is relative:
    discarding a filtered-out kind must beat keeping the event, and a
    ``wants()`` guard must beat even building the call's payload.
    """
    import time

    from repro.obs import MemorySink

    N = 200_000

    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return N / (time.perf_counter() - t0)

    def record_into(sink):
        for i in range(N):
            sink.record(float(i), "send", 0, channel="fd", src=0, dst=i)

    def guarded_record_into(sink):
        for i in range(N):
            if sink.wants("send"):
                sink.record(float(i), "send", 0, channel="fd", src=0, dst=i)

    kept = timed(lambda: record_into(MemorySink()))
    filtered = timed(lambda: record_into(MemorySink(kinds={"decide"})))
    guarded = timed(lambda: guarded_record_into(MemorySink(kinds={"decide"})))

    rows = [
        ("record, kept", f"{kept:,.0f}", "1.0x"),
        ("record, kind filtered out", f"{filtered:,.0f}",
         f"{filtered / kept:.1f}x"),
        ("wants() guard, filtered out", f"{guarded:,.0f}",
         f"{guarded / kept:.1f}x"),
    ]
    publish_table(
        "e3_trace_record_rate",
        "E3b — trace sink record rate (200k events, MemorySink)",
        ["mode", "events/s (wall)", "vs kept (wall)"],
        rows,
        note="Filtered kinds are rejected by the first check in record(), "
        "before any allocation; callers with expensive payloads guard with "
        "wants() and skip even the call.",
    )
    assert filtered > kept
    benchmark.pedantic(
        lambda: record_into(MemorySink(kinds={"decide"})),
        rounds=3, iterations=1,
    )
