"""A3 (ablation) — the adaptive timeout Δp(q) of the Fig. 2 transformation.

Theorem 1's key mechanism: every false suspicion widens Δp(q), so on a
partially synchronous link the number of false-suspicion episodes is
finite.  The ablation compares the shipped adaptive rule against a variant
with ``timeout_increment = 0`` on links that jitter around the initial
timeout: the adaptive leader stops slandering after a bounded number of
mistakes; the fixed-timeout leader keeps oscillating forever, and the
transformed detector loses eventual strong accuracy.
"""

import pytest

from repro.analysis import build_histories, check_eventual_strong_accuracy
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import ReliableLink, UniformDelay, World
from repro.transform import CToPTransformation

from _harness import publish_table

N = 5
LEADER = 0
END = 8000.0
SPLIT = 4000.0  # mistakes must stop well before the end
# Links jitter up to well past the initial timeout: mistakes are guaranteed.
JITTER_LINK = lambda: ReliableLink(UniformDelay(0.5, 14.0))
INITIAL_TIMEOUT = 8.0


def run_case(increment, seed=3):
    world = World(n=N, seed=seed, default_link=JITTER_LINK())
    transforms = []
    for pid in world.pids:
        src = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT,
            OracleConfig(pre_behavior="ideal", leader=LEADER),
            channel="fd.c"))
        transforms.append(world.attach(pid, CToPTransformation(
            src, send_period=5.0, alive_period=5.0,
            initial_timeout=INITIAL_TIMEOUT, timeout_increment=increment,
            channel="fdp")))
    world.run(until=END)
    leader = transforms[LEADER]
    # Count the leader's false-suspicion episodes per half of the run.
    episodes_early = episodes_late = 0
    previous = frozenset()
    for ev in world.trace.select(kind="fd", pid=LEADER,
                                 where=lambda e: e.get("channel") == "fdp"):
        new = ev.get("suspected") - previous
        if new:
            if ev.time < SPLIT:
                episodes_early += len(new)
            else:
                episodes_late += len(new)
        previous = ev.get("suspected")
    histories = build_histories(world.trace, channel="fdp")
    accuracy = check_eventual_strong_accuracy(
        histories, world.correct_pids, END, margin=0.1
    )
    max_delta = max(leader.delta_of(q) for q in range(N) if q != LEADER)
    return episodes_early, episodes_late, max_delta, accuracy.ok


def test_a3_adaptive_timeouts(benchmark):
    rows = []
    adaptive = run_case(increment=5.0)
    fixed = run_case(increment=0.0)
    for name, (early, late, delta, ok) in (
        ("adaptive (+5.0 per mistake)", adaptive),
        ("fixed (no adaptation)", fixed),
    ):
        rows.append((name, early, late, f"{delta:.0f}",
                     "yes" if ok else "NO"))
    publish_table(
        "a3_adaptive_timeouts",
        "A3 — adaptive vs fixed timeouts in the Fig. 2 transformation "
        f"(delay jitter up to 14 vs initial timeout {INITIAL_TIMEOUT})",
        ["timeout rule", "false suspicions (t < 4000)",
         "false suspicions (t >= 4000)", "final max Δp(q)",
         "eventual strong accuracy"],
        rows,
        note="Paper (Thm. 1 proof): each mistake widens Δp(q); once past "
        "2Φ+Δ the process is never falsely suspected again.  Without "
        "adaptation the oscillation never stops and ◇P accuracy is lost.",
    )

    # Adaptive: mistakes happen early, stop late, accuracy holds.
    assert adaptive[0] >= 1
    assert adaptive[1] == 0
    assert adaptive[3]
    # Fixed: mistakes keep happening; accuracy lost.
    assert fixed[1] >= 1
    assert not fixed[3]

    benchmark.pedantic(lambda: run_case(5.0, seed=4), rounds=2, iterations=1)
