"""E9 — Theorem 2: Uniform Consensus correctness under f < n/2 crashes.

A statistical battery over random system sizes, crash patterns, detector
stabilization times and networks, verifying all four properties
(termination, uniform agreement, validity, uniform integrity) for every
protocol on every run.  Expected: 100% across the table — Theorem 2 for
the ◇C algorithm, the original papers' theorems for the baselines.
"""

import random

import pytest

from repro.analysis import extract_outcome, check_consensus
from repro.sim.failures import CrashEvent, CrashSchedule
from repro.workloads import consensus_run, wan_link

from _harness import publish_table

SEEDS = range(10)
ALGOS = ("ec", "ct", "mr", "paxos")


def random_case(algo, seed):
    rng = random.Random(seed * 7919 + hash(algo) % 1000)
    n = rng.choice([3, 5, 7])
    crash_count = rng.randint(0, (n - 1) // 2)
    victims = rng.sample(range(n), crash_count)
    crashes = CrashSchedule(
        CrashEvent(pid, rng.uniform(0.0, 150.0)) for pid in victims
    )
    stabilize = rng.choice([0.0, 100.0])
    return consensus_run(
        algo, n=n, seed=seed,
        stabilize_time=stabilize,
        pre_behavior="erratic" if stabilize else "ideal",
        crashes=crashes, link=wan_link(),
    ), n, crash_count


def test_e9_consensus_validation(benchmark):
    rows = []
    for algo in ALGOS:
        ok = {p: 0 for p in
              ("termination", "uniform-agreement", "validity",
               "uniform-integrity")}
        runs = 0
        for seed in SEEDS:
            run, n, crashes = random_case(algo, seed)
            run.run(until=6000.0)
            outcome = extract_outcome(run.world.trace, algo)
            results = check_consensus(outcome, run.world.correct_pids)
            runs += 1
            for prop, holds in results.items():
                ok[prop] += int(holds)
        rows.append((
            algo,
            *[f"{ok[p]}/{runs}" for p in
              ("termination", "uniform-agreement", "validity",
               "uniform-integrity")],
        ))
        for prop, count in ok.items():
            assert count == runs, (algo, prop, count, runs)
    publish_table(
        "e9_consensus_validation",
        "E9 — Uniform Consensus properties over random adverse runs "
        f"({len(list(SEEDS))} runs/protocol; random n, crashes f<n/2, "
        "stabilization, WAN delays)",
        ["protocol", "termination", "uniform agreement", "validity",
         "uniform integrity"],
        rows,
        note="Paper (Thm. 2 for <>C; [6], [20], [13] for the baselines): "
        "all four properties must hold on every run — expect 100%.",
    )

    def one():
        run, _, _ = random_case("ec", 3)
        run.run(until=6000.0)
        return run

    benchmark.pedantic(one, rounds=3, iterations=1)
