"""N3 — replicated KV service throughput under real client load.

Boots the full service path live — ◇C detectors electing a leader, the
slot-by-slot replicated state machine, TCP frontends, and the
:mod:`repro.load` generator driving real client sessions over real
sockets — and measures decided-commands/s plus latency percentiles
across the node-to-node transports at n in {3, 5}, closed-loop.

The headline cell is the fleet row: **1000 concurrent closed-loop
clients** against a 3-node loopback cluster.  Slots are batched (many
commands ride one consensus instance) and instances are pipelined, so
command throughput decouples from the slot rate — the slots/s and mean
batch columns show exactly how: decided cmds/s ≈ slots/s × mean batch.
Every session still completes exactly-once with zero errors.

Wall-dependent columns carry "wall"/"latency" in their headers so
``check_drift.py`` skips them; topology, error counts, and verdicts are
the regression surface.
"""

import asyncio
import resource

from _harness import publish_table

from repro.cluster import LocalCluster, verdicts_ok
from repro.load import LoadGenerator
from repro.svc import start_service

PERIOD = 0.05
NS = (3, 5)

#: (transport, n, clients, offered seconds, per-request timeout seconds).
CELLS = [
    (transport, n, 10, 3.0, 30.0)
    for transport in ("loopback", "udp", "tcp")
    for n in NS
]
#: The fleet cell: ≥1000 concurrent sessions on loopback at n=3.
FLEET = ("loopback", 3, 1000, 5.0, 120.0)


def _raise_fd_limit() -> None:
    """1000 client connections + cluster sockets need headroom."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))


async def _run(transport, n, clients, duration, timeout):
    cluster = LocalCluster(n=n, transport=transport, seed=7)
    stacks = cluster.deploy_standard_stack(stack="rsm", period=PERIOD)
    await cluster.start()
    fronts = await start_service(
        cluster, stacks, apply_timeout=timeout,
    )
    try:
        generator = LoadGenerator(
            [front.local_address for front in fronts],
            clients=clients, mode="closed", duration=duration,
            request_timeout=timeout, max_attempts=10, seed=1,
        )
        report = await generator.run()
        report.attach_consensus_shape(stacks.get("rsm", []))
    finally:
        for front in fronts:
            await front.close()
        await cluster.stop()
    return report, verdicts_ok(cluster.verdicts())


def measure(cell):
    return asyncio.run(_run(*cell))


def test_n3_throughput(benchmark):
    _raise_fd_limit()
    rows = []
    for cell in CELLS + [FLEET]:
        transport, n, clients, _, _ = cell
        report, ok = measure(cell)
        assert report.acked > 0, (cell, report.render())
        latency_ms = [
            None if q is None else round(q * 1e3, 1)
            for q in (report.latency(0.5), report.latency(0.95),
                      report.latency(0.99))
        ]
        shape = [
            None if v is None else round(v, 1)
            for v in (report.slots_per_s, report.mean_batch)
        ]
        rows.append((
            f"{transport}/n{n}/c{clients}", n, clients,
            report.acked, round(report.achieved_rate, 1), *shape,
            *latency_ms, report.errors, "ok" if ok else "VIOLATED",
        ))
        assert ok, (cell, report.render())
        assert report.errors == 0, (cell, report.render())
    publish_table(
        "n3_throughput",
        f"N3 — replicated KV service under closed-loop client load "
        f"(period={PERIOD}s wall, batched + pipelined consensus slots)",
        ["cell", "n", "clients", "acked cmds (wall)",
         "decided cmds/s (wall)", "slots/s (wall)", "mean batch (wall)",
         "p50 latency ms", "p95 latency ms", "p99 latency ms",
         "errors", "verdicts"],
        rows,
        note="Real TCP clients against live frontends; commands are "
        "batched into slots (mean batch = applied commands per decided "
        "slot) and instances are pipelined, so decided cmds/s ≈ "
        "slots/s × mean batch. The c1000 row shows 1000 concurrent "
        "sessions completing exactly-once with zero errors. "
        "Wall/latency columns are host-dependent and skipped by "
        "check_drift.py.",
    )

    benchmark.pedantic(
        lambda: measure(("loopback", 3, 10, 1.0, 30.0)),
        rounds=3, iterations=1,
    )
