"""E7 — Section 5.4 improvement: deciding despite negative replies.

Scenario: the (correct) coordinator is permanently suspected by k
processes, which therefore answer its propositions with nacks, while the
remaining n−k processes ack.  The detectors are heterogeneous and *never*
reach global ◇C stability during the measured window — exactly the regime
where the accuracy-aware waits matter.

Paper's claims reproduced:

* ◇C-consensus: the coordinator waits for a majority *and* every process it
  does not suspect, so with a majority of acks it decides in round 1 even
  though nacks arrived — for every k < ⌈n/2⌉;
* Chandra–Toueg: the coordinator examines only the first ⌈(n+1)/2⌉ replies
  and one nack among them blocks the round — with k ≥ 1 nackers (whose
  nacks arrive before the acks' extra round trip) round 1 fails and the
  rotation must reach a coordinator nobody slanders;
* Mostefaoui–Raynal: waits for exactly n−f messages; with only a majority
  assumption a single divergent view among the first n−f blocks the round.
"""

import pytest

from repro.analysis import extract_outcome, require_consensus
from repro.broadcast import ReliableBroadcast
from repro.consensus import ALGORITHMS, propose_all
from repro.fd import ScriptedFailureDetector
from repro.sim import World
from repro.workloads import lan_link

from _harness import publish_table

N = 7
STAB = 500.0  # detectors heal long after the decisions we measure


def make_script(pid, nackers, algo):
    """Heterogeneous detector views: nackers permanently suspect p0."""

    def script(p, now):
        if now >= STAB or p not in nackers:
            return frozenset(), 0
        if algo == "mr":
            # MR reads only `trusted`: a divergent leader view is the
            # analogue of a negative reply.
            return frozenset(), p
        return frozenset({0}), 0

    return script


def run_case(algo, k, seed=0):
    nackers = frozenset(range(1, 1 + k))
    world = World(n=N, seed=seed, default_link=lan_link())
    protos = []
    for pid in world.pids:
        fd = world.attach(
            pid, ScriptedFailureDetector(make_script(pid, nackers, algo))
        )
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protos.append(world.attach(pid, ALGORITHMS[algo](fd, rb)))
    world.start()
    propose_all(protos)
    world.run(until=4000.0)
    outcome = extract_outcome(world.trace, algo)
    require_consensus(outcome, world.correct_pids)
    rounds = set(outcome.decision_rounds.values())
    assert len(rounds) == 1
    decision_round = rounds.pop()
    decided_before_stab = max(outcome.decision_times.values()) < STAB
    return decision_round, decided_before_stab


def test_e7_nack_tolerance(benchmark):
    rows = []
    results = {}
    for k in (0, 1, 2, 3):
        row = [k]
        for algo in ("ec", "ct", "mr"):
            decision_round, early = run_case(algo, k)
            results[(algo, k)] = (decision_round, early)
            row.append(f"round {decision_round}" + ("" if early else " (post-stab)"))
        rows.append(tuple(row))
    publish_table(
        "e7_nack_tolerance",
        f"E7 — decision round with k permanent nackers of the coordinator "
        f"(n={N}, majority={N//2+1})",
        ["k", "<>C-consensus", "Chandra–Toueg", "Mostefaoui–Raynal"],
        rows,
        note="Paper (Sec. 5.4): <>C decides in round 1 with a majority of "
        "positive replies even alongside nacks; in CT one nack among the "
        "first majority blocks the round (rotation eventually escapes); "
        "in MR a divergent view among the first n−f blocks the round "
        "(only detector stabilization escapes).",
    )

    # <>C: always round 1, always before stabilization.
    for k in (0, 1, 2, 3):
        assert results[("ec", k)] == (1, True), results[("ec", k)]
    # CT: blocked in round 1 as soon as there is one nacker.
    assert results[("ct", 0)][0] == 1
    for k in (1, 2, 3):
        assert results[("ct", k)][0] > 1, results[("ct", k)]
    # MR: clean when k=0; with divergent views a round only succeeds when
    # delivery jitter keeps every divergent message out of the first n−f,
    # so the decision round balloons with k.
    assert results[("mr", 0)] == (1, True)
    previous = 1
    for k in (1, 2, 3):
        assert results[("mr", k)][0] > previous, results
        previous = results[("mr", k)][0]

    benchmark.pedantic(lambda: run_case("ec", 2), rounds=3, iterations=1)
