"""E2 — Theorem 1: the ◇C → ◇P transformation (Fig. 2) yields ◇P.

Sweeps GST and output-link loss; for each setting verifies strong
completeness + eventual strong accuracy on the transformed detector and
reports the measured stabilization time and crash-detection latency.
"""

import pytest

from repro.analysis import check_fd_class_on_world, detection_latency
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FairLossyLink, FixedDelay, ReliableLink, World
from repro.transform import CToPTransformation
from repro.workloads import partially_synchronous_link

from _harness import publish_table

N = 6
LEADER = 0
CRASH_AT = 250.0
END = 3000.0


def build(seed, gst, loss):
    world = World(n=N, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    world.network.set_links_to(
        LEADER, lambda: partially_synchronous_link(gst=gst, pre_max=30.0)
    )
    if loss:
        world.network.set_links_from(
            LEADER,
            lambda: FairLossyLink(
                inner=ReliableLink(FixedDelay(1.0)), loss_prob=loss
            ),
        )
    for pid in world.pids:
        src = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT,
            OracleConfig(pre_behavior="ideal", leader=LEADER),
            channel="fd.c"))
        world.attach(pid, CToPTransformation(
            src, send_period=5.0, alive_period=5.0,
            initial_timeout=8.0, channel="fdp"))
    world.schedule_crash(N - 1, CRASH_AT)
    return world


def run_case(seed, gst, loss):
    world = build(seed, gst, loss)
    world.run(until=END)
    results = check_fd_class_on_world(world, EVENTUALLY_PERFECT, channel="fdp")
    latency = detection_latency(
        world.trace, N - 1, CRASH_AT, world.correct_pids, channel="fdp"
    )
    stab = max((r.stabilized_at or 0.0) for r in results.values())
    return all(results.values()), stab, latency


def test_e2_transformation_theorem1(benchmark):
    rows = []
    all_ok = True
    for gst in (0.0, 60.0, 150.0):
        for loss in (0.0, 0.3, 0.6):
            ok, stab, latency = run_case(1, gst, loss)
            all_ok &= ok
            rows.append((
                f"{gst:.0f}", f"{loss:.0%}",
                "yes" if ok else "NO",
                f"{stab:.0f}",
                f"{latency:.1f}" if latency is not None else "n/a",
            ))
    publish_table(
        "e2_transformation",
        f"E2 — <>C → <>P transformation under partial synchrony (n={N})",
        ["GST", "output loss", "<>P holds", "stabilized at", "det. latency"],
        rows,
        note="Paper (Thm. 1): with partially synchronous leader inputs and "
        "fair-lossy leader outputs, the transformation implements <>P for "
        "every GST and loss level.",
    )
    assert all_ok

    benchmark.pedantic(
        lambda: run_case(2, 60.0, 0.3), rounds=3, iterations=1
    )
