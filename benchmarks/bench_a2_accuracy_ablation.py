"""A2 (ablation) — the value of ◇C's accuracy over Ω's.

Section 3 notes that building ◇C from Ω alone (suspect everyone but the
leader) is free but "offers very poor accuracy", and Section 5.4 explains
why accuracy matters: in Phases 2/4 the coordinator waits for a reply from
every process it does not suspect, possibly gathering a decisive majority
of positives.  With complement suspicion, the coordinator never waits
beyond the bare majority.

This ablation runs ◇C-consensus over detectors differing only in suspect-
set accuracy, on a network where a minority of processes is *slow* (their
replies arrive late).  With an accurate detector the coordinator waits for
the slow-but-unsuspected processes and uses their acks; with complement
suspicion it acts on the first majority.  We measure the fraction of acks
the coordinator actually saw before deciding and the decision round when
some fast replies are nacks.
"""

import pytest

from repro.analysis import extract_outcome, require_consensus
from repro.broadcast import ReliableBroadcast
from repro.consensus import ECConsensus, propose_all
from repro.fd import ScriptedFailureDetector
from repro.sim import FixedDelay, ReliableLink, World

from _harness import publish_table

N = 7
SLOW = frozenset({5, 6})       # slow repliers (late acks)
NACKERS = frozenset({1, 2, 3})  # fast repliers that nack the coordinator
STAB = 500.0


def make_script(accurate):
    """Accurate: suspect nobody (so the coordinator waits for the slow
    acks).  Complement: suspect everyone but the leader (so it does not).
    Nackers suspect the coordinator until STAB in both settings."""

    def script(pid, now):
        if now < STAB and pid in NACKERS:
            return frozenset({0}), 0
        if accurate:
            return frozenset(), 0
        return frozenset(q for q in range(N) if q != 0), 0

    return script


def run_case(accurate, seed=0):
    world = World(n=N, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    # Slow processes: every link from them has a large delay.
    for src in SLOW:
        world.network.set_links_from(src, lambda: ReliableLink(FixedDelay(9.0)))
    protos = []
    for pid in world.pids:
        fd = world.attach(pid, ScriptedFailureDetector(make_script(accurate)))
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protos.append(world.attach(pid, ECConsensus(fd, rb)))
    world.start()
    propose_all(protos)
    world.run(until=3000.0)
    outcome = extract_outcome(world.trace, "ec")
    require_consensus(outcome, world.correct_pids)
    decision_round = min(r for r in outcome.decision_rounds.values())
    decided_pre_stab = max(outcome.decision_times.values()) < STAB
    # Replies the coordinator gathered in the deciding round:
    coordinator = protos[0]
    replies = coordinator._replies.get(decision_round, {})
    acks = sum(1 for v in replies.values() if v)
    nacks = sum(1 for v in replies.values() if not v)
    return decision_round, decided_pre_stab, acks, nacks


def test_a2_accuracy_ablation(benchmark):
    rows = []
    acc = run_case(accurate=True)
    comp = run_case(accurate=False)
    rows.append(("<>S-accurate suspects", f"round {acc[0]}",
                 "yes" if acc[1] else "no", acc[2], acc[3]))
    rows.append(("Omega-complement suspects", f"round {comp[0]}",
                 "yes" if comp[1] else "no", comp[2], comp[3]))
    publish_table(
        "a2_accuracy_ablation",
        f"A2 — accuracy ablation: <>C-consensus with 3 fast nackers and 2 "
        f"slow ackers (n={N}, majority={N//2+1})",
        ["suspect-set source", "decision", "pre-stabilization?",
         "acks seen", "nacks seen"],
        rows,
        note="Paper (Sec. 3 + 5.4): with accurate suspects the coordinator "
        "waits for the slow unsuspected processes, collects a majority of "
        "acks despite the nacks, and decides in round 1.  The free Omega-"
        "complement detector never waits past the first majority — the "
        "nacks land first and the round fails until stabilization.",
    )

    # Accurate detector: decides round 1, before stabilization, with nacks
    # present — the paper's headline behaviour.
    assert acc[0] == 1 and acc[1]
    assert acc[2] >= N // 2 + 1 and acc[3] >= 1
    # Complement detector: cannot decide before the detectors heal.
    assert not comp[1]

    benchmark.pedantic(lambda: run_case(True, seed=1), rounds=3, iterations=1)
