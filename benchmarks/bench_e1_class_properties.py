"""E1 — Fig. 1 / Definition 1: every implemented detector satisfies its
class properties, measured on random crash patterns.

Regenerates (as a measured table) the class grid of Fig. 1 plus the ◇C
definition: for each detector implementation, the fraction of random runs
on which every required property held, and the mean measured stabilization
time.  Expected: 100% across the board.
"""

import random

import pytest

from repro.analysis import check_fd_class_on_world, summarize
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_STRONG,
    HeartbeatEventuallyPerfect,
    LeaderBasedOmega,
    OMEGA,
    RingDetector,
    attach_ec_stack,
)
from repro.sim import World
from repro.workloads import partially_synchronous_link

from _harness import publish_table

SEEDS = range(4)
N = 5
GST = 60.0
END = 2500.0


def build_world(seed, attach):
    world = World(
        n=N, seed=seed, default_link=partially_synchronous_link(gst=GST)
    )
    attach(world)
    rng = random.Random(seed)
    victim = rng.randrange(1, N)  # keep p0 alive: candidate leader
    world.schedule_crash(victim, rng.uniform(80.0, 200.0))
    return world


DETECTORS = [
    (
        "heartbeat",
        "<>P",
        EVENTUALLY_PERFECT,
        lambda w: w.attach_all(
            lambda pid: HeartbeatEventuallyPerfect(initial_timeout=8.0)
        ),
    ),
    (
        "ring",
        "<>P",
        EVENTUALLY_PERFECT,
        lambda w: w.attach_all(lambda pid: RingDetector(initial_timeout=10.0)),
    ),
    (
        "ring-as-<>S+leader",
        "<>S",
        EVENTUALLY_STRONG,
        lambda w: w.attach_all(lambda pid: RingDetector(initial_timeout=10.0)),
    ),
    (
        "leader-based",
        "Omega",
        OMEGA,
        lambda w: w.attach_all(
            lambda pid: LeaderBasedOmega(initial_timeout=8.0)
        ),
    ),
    (
        "ec-stack(ring)",
        "<>C",
        EVENTUALLY_CONSISTENT,
        lambda w: attach_ec_stack(w, suspects="ring", initial_timeout=10.0),
    ),
    (
        "ec-stack(complement)",
        "<>C",
        EVENTUALLY_CONSISTENT,
        lambda w: attach_ec_stack(
            w, suspects="complement", initial_timeout=10.0
        ),
    ),
]


def run_all():
    rows = []
    for name, symbol, fd_class, attach in DETECTORS:
        ok_count = 0
        stabilizations = []
        for seed in SEEDS:
            world = build_world(seed, attach)
            world.run(until=END)
            results = check_fd_class_on_world(world, fd_class)
            if all(results.values()):
                ok_count += 1
                stabilizations.append(
                    max(r.stabilized_at or 0.0 for r in results.values())
                )
        stats = summarize(stabilizations)
        rows.append(
            (
                name,
                symbol,
                f"{ok_count}/{len(list(SEEDS))}",
                f"{stats.mean:.0f}" if stabilizations else "n/a",
            )
        )
    return rows


def test_e1_class_properties(benchmark):
    rows = run_all()
    publish_table(
        "e1_class_properties",
        "E1 — detector class properties on random crash runs "
        f"(n={N}, GST={GST})",
        ["implementation", "class", "runs satisfying class", "mean stab. time"],
        rows,
        note="Paper (Fig. 1 / Def. 1): every implementation must satisfy "
        "all properties of its class — expect every row at 100%.",
    )
    for row in rows:
        passed, total = row[2].split("/")
        assert passed == total, row

    # Timing anchor: one representative detector run.
    def one_run():
        world = build_world(0, DETECTORS[0][3])
        world.run(until=500.0)
        return world

    benchmark.pedantic(one_run, rounds=3, iterations=1)
