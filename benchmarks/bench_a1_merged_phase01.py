"""A1 (ablation) — Section 5.4's merged Phase 0/1 variant.

"We could reduce the number of phases of our ◇C-Consensus protocol by
merging Phases 0 and 1 … This reduction on the number of phases has the
cost of augmenting the number of messages, which becomes Ω(n²) instead of
Θ(n)."  We measure both protocol variants side by side: phases per round,
messages per round (sweeping n), and decision latency in nice runs.
"""

import pytest

from repro.analysis import max_phases_per_round, messages_per_round
from repro.workloads import nice_run

from _harness import publish_table

NS = (4, 6, 8, 12)


def measure(n, merged, seeds=(1, 2, 3)):
    """Phases, messages, and mean decision latency over a few seeds (the
    latency of a single run is dominated by per-link jitter)."""
    phases = msgs = 0
    latencies = []
    for seed in seeds:
        run = nice_run("ec", n=n, seed=seed,
                       merged_phase01=merged).run(until=600.0)
        assert run.decided
        phases = max_phases_per_round(run.world.trace, "ec")
        msgs = messages_per_round(run.world.trace)[1]
        latencies.append(max(p.decision_time for p in run.protocols))
    return phases, msgs, sum(latencies) / len(latencies)


def test_a1_merged_phase01(benchmark):
    rows = []
    for n in NS:
        p0, m0, l0 = measure(n, merged=False)
        p1, m1, l1 = measure(n, merged=True)
        rows.append((n, p0, m0, f"{l0:.1f}", p1, m1, f"{l1:.1f}"))
        assert p0 == 5 and p1 == 4
        assert m0 == 4 * (n - 1)
        # Merged: phase 0+1 costs n(n-1) alone, plus prop/ack linear terms.
        assert m1 >= n * (n - 1)
        # One fewer communication step: merged decides no later on average
        # (allow jitter slack — links draw uniform per-message delays).
        assert l1 <= l0 + 0.6
    publish_table(
        "a1_merged_phase01",
        "A1 — merged Phase 0/1 variant vs the standard protocol (nice runs)",
        ["n", "std phases", "std msgs", "std latency",
         "merged phases", "merged msgs", "merged latency"],
        rows,
        note="Paper (Sec. 5.4): merging Phases 0 and 1 saves one "
        "communication step but raises messages/round from Θ(n) to Ω(n²).",
    )

    benchmark.pedantic(lambda: measure(8, True, seeds=(1,)),
                       rounds=3, iterations=1)
