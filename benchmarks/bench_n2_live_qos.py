"""N2 — E3/E8 on the live runtime: QoS of the real stack vs the simulator.

E3 measures the transformation's periodic message cost (Section 4: 2(n−1))
and E8 its crash-detection latency, both in virtual time.  This benchmark
reruns the same scenario — elect a leader, ``kill`` it, watch the survivors
re-stabilize — on real asyncio event loops for each in-process transport,
and feeds the recorded trace through the *same* Chen-style QoS analyzer
(:func:`repro.analysis.qos_report`) that ``repro trace qos`` applies to
shipped JSONL files.  The simulator row is the deterministic virtual-clock
run of the identical Component stack at the identical period, so the table
reads directly as "what the model predicts" vs "what the wall clock did":
detection time T_D, wrongful suspicions, leader re-stabilization, and the
fdp message cost checked against 2(n−1).
"""

import asyncio

from _harness import publish_table

from repro.analysis import qos_report, transformation_bound
from repro.net import LocalCluster, attach_standard_stack

N = 3
PERIOD = 0.05
TIMEOUT = 2.4 * PERIOD
SETTLE = 12 * PERIOD   # leader elected and announced before the kill
TAIL = 60 * PERIOD     # detection + re-stabilization + cost window


def _qos(cluster, kill_time):
    report = qos_report(
        cluster.trace, channel="fd", period=PERIOD, n=N,
    )
    victim_td = report.detection.get(0)
    stab = report.leader_stabilized_at
    cost = (report.message_cost or {}).get("fdp")
    return {
        "t_d": victim_td,
        "mistakes": len(report.mistakes),
        "restab": None if stab is None else stab - kill_time,
        "fdp_cost": cost,
        "bound_ok": report.bound_ok,
        "leader": report.stable_leader,
    }


def simulator_prediction(seed: int = 7):
    """The deterministic virtual-time run of the identical stack."""
    cluster = LocalCluster(
        n=N, transport="loopback", clock="virtual", seed=seed,
    )
    attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=TIMEOUT, timeout_increment=PERIOD,
    )
    cluster.start_virtual()
    cluster.schedule_kill(0, SETTLE)
    cluster.run_virtual(until=SETTLE + TAIL)
    return _qos(cluster, SETTLE)


async def _run_live(transport: str, seed: int = 7):
    cluster = LocalCluster(n=N, transport=transport, seed=seed)
    attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=TIMEOUT, timeout_increment=PERIOD,
        metrics_interval=10 * PERIOD,
    )
    await cluster.start()
    await cluster.run(SETTLE)  # p0 elected and announced
    kill_time = cluster.now
    cluster.kill(0)
    await cluster.run(TAIL)
    await cluster.stop()
    return _qos(cluster, kill_time)


def measure(transport: str):
    return asyncio.run(_run_live(transport))


def _fmt(value, digits=3):
    return "n/a" if value is None else f"{value:.{digits}f}"


def test_n2_live_qos(benchmark):
    bound = transformation_bound(N)
    sim = simulator_prediction()
    rows = [(
        "simulator", N, _fmt(sim["t_d"]), sim["mistakes"],
        _fmt(sim["restab"]), _fmt(sim["fdp_cost"], 2), bound,
        "yes" if sim["bound_ok"] else "NO",
    )]
    assert sim["t_d"] is not None and sim["bound_ok"]
    for transport in ("loopback", "udp", "tcp"):
        live = measure(transport)
        rows.append((
            transport, N, _fmt(live["t_d"]), live["mistakes"],
            _fmt(live["restab"]), _fmt(live["fdp_cost"], 2), bound,
            "yes" if live["bound_ok"] else "NO",
        ))
        # The acceptance bar: the victim is detected, the survivors
        # re-stabilize on a correct leader, and the transformation's
        # steady-state cost respects the paper's 2(n-1).
        assert live["t_d"] is not None, transport
        assert live["restab"] is not None, transport
        assert live["leader"] in {1, 2}, transport
        assert live["bound_ok"], transport
    publish_table(
        "n2_live_qos",
        f"N2 — live QoS, kill-the-leader (n={N}, period={PERIOD}s wall; "
        "E3 cost + E8 detection on the real runtime)",
        ["source", "n", "T_D s (wall)", "mistakes (wall jitter)",
         "s to stable leader", "fdp msgs/period", "2(n-1)", "bound ok"],
        rows,
        note="Identical Component stacks analyzed by the same "
        "repro.analysis.qos_report as `repro trace qos`; the simulator row "
        "is the deterministic virtual-clock prediction, the transport rows "
        "are wall-clock asyncio runs.  T_D/mistakes/stabilization measure "
        "the host's scheduling jitter as much as the algorithm (hence "
        "excluded from drift checks); the fdp cost is structural and must "
        "respect 2(n-1).",
    )

    benchmark.pedantic(lambda: measure("loopback"), rounds=3, iterations=1)
