"""Diff freshly generated ``BENCH_*.json`` tables against committed baselines.

The benchmark suite (``python -m pytest benchmarks -q``) rewrites
``benchmarks/results/BENCH_<experiment>.json`` on every run.  This script
answers the question CI actually cares about: *did the reproduced numbers
drift from the ones we committed?*

Comparison rules, per table cell:

* **wall-latency columns are skipped** — headers matching
  :data:`SKIP_HEADER_PATTERN` (``"s to decide after kill"``, anything with
  "seconds"/"latency"/"wall") measure the CI runner, not the algorithms;
* **numeric cells** must agree within a relative tolerance
  (``--tolerance``, default 0.35 — wide enough for scheduling jitter in
  frame counts, tight enough to catch a broken protocol doubling its
  message complexity);
* **string cells** (property verdicts like ``"ok"``/``"yes"``, protocol
  names) must match exactly;
* rows are keyed by their first column, so reordering is not drift but a
  vanished or new row is.

Exit codes follow the repo convention: 0 = no drift, 1 = drift found,
2 = configuration error (missing baseline/fresh files, malformed JSON).

Usage::

    python -m pytest benchmarks -q          # regenerate results/
    python benchmarks/check_drift.py        # vs git HEAD baselines
    python benchmarks/check_drift.py --baseline /tmp/bench-baseline

With no ``--baseline``, baselines are read from ``git show HEAD:<path>``,
so a local run after a benchmark pass shows exactly what a reviewer will
see drifting in the PR.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Headers whose cells measure wall time on the host, not the algorithms.
SKIP_HEADER_PATTERN = re.compile(r"(?i)\bs to\b|seconds|latency|wall")

DEFAULT_TOLERANCE = 0.35


class DriftConfigError(Exception):
    """Raised for unusable inputs (missing files, bad JSON): exit code 2."""


def load_fresh(results_dir: Path) -> Dict[str, dict]:
    if not results_dir.is_dir():
        raise DriftConfigError(f"no results directory at {results_dir}")
    tables = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            tables[path.name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise DriftConfigError(f"{path}: malformed JSON: {exc}") from exc
    if not tables:
        raise DriftConfigError(
            f"no BENCH_*.json in {results_dir}; "
            "run `python -m pytest benchmarks -q` first"
        )
    return tables


def load_baseline(name: str, baseline_dir: Optional[Path]) -> Optional[dict]:
    """Baseline table for *name*: from a directory, or from git HEAD."""
    if baseline_dir is not None:
        path = baseline_dir / name
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise DriftConfigError(f"{path}: malformed JSON: {exc}") from exc
    rel = RESULTS_DIR.relative_to(REPO_ROOT) / name
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel.as_posix()}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None  # new benchmark, no committed baseline yet
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        raise DriftConfigError(f"HEAD:{rel}: malformed JSON: {exc}") from exc


def _as_number(cell) -> Optional[float]:
    if isinstance(cell, bool):  # bool is an int subclass; treat as label
        return None
    if isinstance(cell, (int, float)):
        return float(cell)
    if isinstance(cell, str):
        try:
            return float(cell)
        except ValueError:
            return None
    return None


def _row_map(table: dict) -> Dict[str, List]:
    return {str(row[0]): list(row) for row in table.get("rows", []) if row}


def compare_tables(
    name: str, fresh: dict, baseline: dict, tolerance: float
) -> Iterator[str]:
    """Yield one human-readable message per drifted cell/row."""
    fresh_headers = list(fresh.get("headers", []))
    base_headers = list(baseline.get("headers", []))
    if fresh_headers != base_headers:
        yield (
            f"{name}: headers changed {base_headers!r} -> {fresh_headers!r} "
            "(refresh the committed baseline if intentional)"
        )
        return
    skip = {
        i for i, header in enumerate(fresh_headers)
        if SKIP_HEADER_PATTERN.search(str(header))
    }
    fresh_rows, base_rows = _row_map(fresh), _row_map(baseline)
    for key in base_rows:
        if key not in fresh_rows:
            yield f"{name}: row {key!r} vanished from the fresh results"
    for key in fresh_rows:
        if key not in base_rows:
            yield f"{name}: new row {key!r} has no committed baseline"
    for key, fresh_row in fresh_rows.items():
        base_row = base_rows.get(key)
        if base_row is None or len(fresh_row) != len(base_row):
            if base_row is not None:
                yield f"{name}: row {key!r} changed width"
            continue
        for col, (new, old) in enumerate(zip(fresh_row, base_row)):
            if col in skip:
                continue
            header = fresh_headers[col] if col < len(fresh_headers) else col
            new_num, old_num = _as_number(new), _as_number(old)
            if new_num is not None and old_num is not None:
                scale = max(abs(old_num), abs(new_num), 1e-12)
                if abs(new_num - old_num) / scale > tolerance:
                    yield (
                        f"{name}: {key!r} / {header!r}: {old!r} -> {new!r} "
                        f"(relative drift {abs(new_num - old_num) / scale:.0%}"
                        f" > {tolerance:.0%})"
                    )
            elif new != old:
                yield f"{name}: {key!r} / {header!r}: {old!r} -> {new!r}"


def run(
    results_dir: Path,
    baseline_dir: Optional[Path],
    tolerance: float,
) -> Tuple[int, List[str]]:
    """Compare every fresh table; returns (exit_code, messages)."""
    fresh_tables = load_fresh(results_dir)
    if baseline_dir is not None and not baseline_dir.is_dir():
        raise DriftConfigError(f"baseline directory {baseline_dir} not found")
    messages: List[str] = []
    compared = 0
    for name, fresh in fresh_tables.items():
        baseline = load_baseline(name, baseline_dir)
        if baseline is None:
            messages.append(f"{name}: no baseline (new benchmark?) — skipped")
            continue
        compared += 1
        messages.extend(compare_tables(name, fresh, baseline, tolerance))
    if compared == 0:
        raise DriftConfigError("no table had a baseline to compare against")
    drift = [m for m in messages if not m.endswith("— skipped")]
    return (1 if drift else 0), messages


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json tables against baselines."
    )
    parser.add_argument(
        "--results", type=Path, default=RESULTS_DIR,
        help="directory of freshly generated tables (default: results/)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline directory (default: the committed files at git HEAD)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"relative tolerance for numeric cells (default "
             f"{DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    try:
        code, messages = run(args.results, args.baseline, args.tolerance)
    except DriftConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for message in messages:
        print(message)
    if code == 0:
        print("no drift: all benchmark tables within tolerance of baselines")
    else:
        print("drift detected (see above); refresh baselines if intentional")
    return code


if __name__ == "__main__":
    sys.exit(main())
