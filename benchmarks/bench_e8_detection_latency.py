"""E8 — Section 4 discussion: crash-detection latency.

The paper notes the Fig. 2 approach "has the additional benefit of not
suffering of the high latency in crash detection of [the ring] algorithm
(due to the propagation of the list of suspected processes over the
ring)".  We crash one process and measure the time until *every* correct
process suspects it, sweeping n: the ring's latency grows linearly (one
neighbour hop per period), the transformation's stays flat (timeout + one
broadcast hop), and the all-to-all heartbeat is flat but costs n² messages.
"""

import pytest

from repro.analysis import detection_latency
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    HeartbeatEventuallyPerfect,
    OracleConfig,
    OracleFailureDetector,
    RingDetector,
)
from repro.sim import FixedDelay, ReliableLink, World
from repro.transform import CToPTransformation

from _harness import publish_table

PERIOD = 5.0
TIMEOUT = 12.0
CRASH_AT = 100.0
NS = (4, 8, 12, 16)


def latency_fig2(n, seed=1):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    for pid in world.pids:
        src = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal"),
            channel="fd.c"))
        world.attach(pid, CToPTransformation(
            src, send_period=PERIOD, alive_period=PERIOD,
            initial_timeout=TIMEOUT, channel="fdp"))
    victim = n // 2
    world.schedule_crash(victim, CRASH_AT)
    world.run(until=6000.0)
    return detection_latency(world.trace, victim, CRASH_AT,
                             world.correct_pids, channel="fdp")


def latency_ring(n, seed=1):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    world.attach_all(
        lambda pid: RingDetector(period=PERIOD, initial_timeout=TIMEOUT))
    victim = n // 2
    world.schedule_crash(victim, CRASH_AT)
    world.run(until=6000.0)
    return detection_latency(world.trace, victim, CRASH_AT,
                             world.correct_pids, channel="fd")


def latency_heartbeat(n, seed=1):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    world.attach_all(
        lambda pid: HeartbeatEventuallyPerfect(period=PERIOD,
                                               initial_timeout=TIMEOUT))
    victim = n // 2
    world.schedule_crash(victim, CRASH_AT)
    world.run(until=6000.0)
    return detection_latency(world.trace, victim, CRASH_AT,
                             world.correct_pids, channel="fd")


def test_e8_detection_latency(benchmark):
    rows = []
    fig2_lat, ring_lat = {}, {}
    for n in NS:
        f = latency_fig2(n)
        r = latency_ring(n)
        h = latency_heartbeat(n)
        assert f is not None and r is not None and h is not None
        fig2_lat[n], ring_lat[n] = f, r
        rows.append((n, f"{f:.1f}", f"{r:.1f}", f"{h:.1f}"))
    publish_table(
        "e8_detection_latency",
        "E8 — time until every correct process suspects a crashed process "
        f"(period={PERIOD}, timeout={TIMEOUT})",
        ["n", "Fig.2 <>C→<>P", "ring [15]", "all-to-all [6]"],
        rows,
        note="Paper (Sec. 4): the ring's suspicion list travels hop by hop "
        "— Θ(n) periods; Fig. 2 broadcasts the leader's list directly, so "
        "its latency is flat in n (like the n²-message all-to-all).",
    )
    # The ring's latency grows with n; Fig. 2's stays flat and below it.
    assert ring_lat[NS[-1]] > 2 * ring_lat[NS[0]] - PERIOD
    assert fig2_lat[NS[-1]] < 1.5 * fig2_lat[NS[0]]
    for n in NS[1:]:
        assert fig2_lat[n] < ring_lat[n]

    benchmark.pedantic(lambda: latency_fig2(8), rounds=3, iterations=1)
