"""E10 — the whole paper, end to end, with no oracles anywhere.

Full message-passing stack: leader-based Ω [16] + ring ◇S [15] composed
into ◇C (Section 3), driving the ◇C-consensus of Figs. 3–4, under partial
synchrony with a GST sweep and a crash of the initial leader.  This is the
"does the composed system actually work" experiment — decision time should
track GST plus a stack-dependent constant (detector convergence + one
consensus round), and all consensus properties must hold.
"""

import pytest

from repro.analysis import check_consensus, extract_outcome
from repro.broadcast import ReliableBroadcast
from repro.consensus import ECConsensus, propose_all
from repro.fd import attach_ec_stack
from repro.workloads import partially_synchronous_link
from repro.sim import World

from _harness import publish_table

N = 5


def run_stack(gst, seed=2, crash_leader=True):
    world = World(
        n=N, seed=seed,
        default_link=partially_synchronous_link(gst=gst, pre_max=30.0),
    )
    detectors = attach_ec_stack(world, suspects="ring", initial_timeout=10.0)
    protos = []
    for pid in world.pids:
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protos.append(world.attach(pid, ECConsensus(detectors[pid], rb)))
    world.start()
    propose_all(protos)
    if crash_leader:
        world.schedule_crash(0, gst / 2 if gst > 0 else 10.0)
    world.run(until=gst + 3000.0)
    outcome = extract_outcome(world.trace, "ec")
    results = check_consensus(outcome, world.correct_pids)
    decided = all(
        p.decided for p in protos if not world.process(p.pid).crashed
    )
    latency = (
        max(t for t in outcome.decision_times.values())
        if outcome.decision_times else None
    )
    return decided, results, latency


def test_e10_end_to_end(benchmark):
    rows = []
    previous_latency = None
    for gst in (0.0, 50.0, 150.0, 400.0):
        decided, results, latency = run_stack(gst)
        ok = decided and all(results.values())
        rows.append((
            f"{gst:.0f}",
            "yes" if ok else "NO",
            f"{latency:.0f}" if latency is not None else "n/a",
            f"{latency - gst:.0f}" if latency is not None else "n/a",
        ))
        assert ok, (gst, results)
        previous_latency = latency
    publish_table(
        "e10_end_to_end",
        "E10 — full message-passing stack (Omega[16] + ring[15] -> <>C -> "
        f"Figs. 3-4 consensus), GST sweep, leader crash (n={N})",
        ["GST", "all properties hold", "decision time", "decision − GST"],
        rows,
        note="End-to-end composition check: no oracles; decision comes at "
        "latest ~GST + detector convergence + one consensus round.  Partial "
        "synchrony is sufficient, not necessary: with bounded pre-GST "
        "jitter the adaptive timeouts can stabilize the stack well before "
        "GST (the GST=400 row).",
    )

    benchmark.pedantic(lambda: run_stack(50.0, seed=3), rounds=2,
                       iterations=1)
