"""Deterministic named random streams.

Every source of randomness in a simulation draws from a stream obtained via
:meth:`RandomSource.stream`.  Streams are keyed by name and derived from the
master seed with a stable hash, so

* the same ``(seed, name)`` always yields the same sequence, and
* adding a new consumer (a new stream name) does not perturb the draws seen
  by existing consumers — runs stay comparable across library versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomSource"]


class RandomSource:
    """Factory of named, independently seeded :class:`random.Random` streams."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this source was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        The same object is returned on every call with the same name, so
        consumers share draw positions if (and only if) they share a name.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomSource":
        """Derive a child :class:`RandomSource` with an independent seed space.

        Useful when a sub-experiment needs its own full seed universe.
        """
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))
