"""Protocol components.

A :class:`Component` is one protocol module running on one process: a failure
detector, a transformation, a broadcast primitive, a consensus instance, …
Several components coexist on a process and are multiplexed over the network
by their ``channel`` name — e.g. a ◇C detector, the Fig. 2 transformation
querying it, and a consensus algorithm querying both all run side by side on
every process, exactly like the paper's "failure detection module attached to
a process".

Subclasses override the ``on_*`` hooks and use the ``send`` / ``broadcast`` /
``set_timer`` / ``periodically`` / ``spawn`` helpers.  All helpers become
no-ops once the host process has crashed, so algorithm code never needs to
check for its own death.

Components never reach past these helpers into the host: everything they
touch is the narrow structural surface defined in :mod:`repro.sim.api`
(scheduler ``now``/``schedule``, network ``send``, trace, rng, ``n``).
That is what lets the *same* component classes run both on the simulated
:class:`~repro.sim.world.World` and on the live asyncio runtime's
:class:`~repro.net.host.NodeHost` without modification.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import ConfigurationError
from ..types import Channel, ProcessId, Time
from .events import EventHandle
from .tasks import TaskGen, TaskRuntime, Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import Process
    from .world import World

__all__ = ["Component", "Periodic"]


class Component:
    """Base class for every protocol module (see module docstring)."""

    #: Default channel; subclasses usually set this as a class attribute.
    channel: Channel = ""

    def __init__(self, channel: Optional[Channel] = None) -> None:
        if channel is not None:
            self.channel = channel
        if not self.channel:
            raise ConfigurationError(
                f"{type(self).__name__} has no channel name"
            )
        self.process: "Process" = None  # type: ignore[assignment]
        self.world: "World" = None  # type: ignore[assignment]
        self.tasks: TaskRuntime = None  # type: ignore[assignment]

    # -------------------------------------------------------------- wiring
    def _attach(self, process: "Process") -> None:
        self.process = process
        self.world = process.world
        self.tasks = TaskRuntime(self.world.scheduler)

    @property
    def pid(self) -> ProcessId:
        """Id of the host process."""
        return self.process.pid

    @property
    def n(self) -> int:
        """Number of processes in the system."""
        return self.world.n

    @property
    def now(self) -> Time:
        """Current simulated time."""
        return self.world.scheduler.now

    @property
    def rng(self) -> random.Random:
        """This component's deterministic random stream."""
        return self.world.rng.stream(f"{self.channel}:{self.pid}")

    @property
    def crashed(self) -> bool:
        """``True`` once the host process has crashed."""
        return self.process.crashed

    @property
    def metrics(self):
        """The world's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.world.metrics

    # ------------------------------------------------------------ overrides
    def on_start(self) -> None:
        """Called once when the world starts (time 0)."""

    def on_message(self, src: ProcessId, payload: Any) -> None:
        """Called for every message delivered on this component's channel."""

    def on_crash(self) -> None:
        """Called when the host process crashes (after tasks are stopped)."""

    def on_fd_change(self) -> None:
        """Called when a failure detector on the same process changes output.

        The default re-evaluates this component's parked task predicates,
        which is what consensus-style algorithms waiting on
        ``coordinator in D.suspected`` need.
        """
        self.tasks.poke()

    # ------------------------------------------------------------- messaging
    def send(
        self,
        dst: ProcessId,
        payload: Any,
        tag: Optional[str] = None,
        round: Optional[int] = None,
    ) -> None:
        """Send *payload* to process *dst* on this component's channel."""
        if self.crashed:
            return
        if self._stubborn_last is not None and dst != self.pid:
            self._stubborn_last[(dst, tag)] = (payload, round)
        self.world.network.send(self.pid, dst, self.channel, payload, tag, round)

    #: Per-destination last message, when stubborn resending is enabled.
    _stubborn_last: Optional[dict] = None

    def enable_stubborn_resend(self, period: Time) -> None:
        """Turn this component's outgoing channels into *stubborn channels*:
        the most recent message to each destination is retransmitted every
        *period* until replaced by a newer one.

        Stubborn channels are the classic construction that lets protocols
        designed for reliable links survive message loss (fair-lossy links
        plus retransmission simulate reliable ones), at the price of steady
        background traffic.  Retransmission slots are keyed by
        ``(destination, tag)``, i.e. one slot per protocol message stream,
        so a later proposition does not cancel the retransmission of a lost
        coordinator announcement.  Receivers must tolerate duplicates — all
        protocol handlers in this library are idempotent.  Off by default
        so nice-run message counts match the paper exactly.
        """
        if self._stubborn_last is None:
            self._stubborn_last = {}
            self.periodically(period, self._stubborn_tick)

    def _stubborn_tick(self) -> None:
        for (dst, tag), (payload, round) in self._stubborn_last.items():
            self.world.network.send(
                self.pid, dst, self.channel, payload, tag, round
            )

    def send_self(
        self, payload: Any, tag: Optional[str] = None, round: Optional[int] = None
    ) -> None:
        """Loopback send to this very component (delivered as a message at
        the same instant, after currently queued events)."""
        self.send(self.pid, payload, tag=tag, round=round)

    def broadcast(
        self,
        payload: Any,
        include_self: bool = False,
        tag: Optional[str] = None,
        round: Optional[int] = None,
    ) -> None:
        """Send *payload* to every other process (and optionally to self)."""
        if self.crashed:
            return
        dsts = [
            dst for dst in range(self.n) if dst != self.pid or include_self
        ]
        send_many = getattr(self.world.network, "send_many", None)
        if send_many is None:
            # The simulator network delivers per-message; keep the loop so
            # sim event interleavings are bit-identical to before.
            for dst in dsts:
                self.send(dst, payload, tag=tag, round=round)
            return
        if self._stubborn_last is not None:
            for dst in dsts:
                if dst != self.pid:
                    self._stubborn_last[(dst, tag)] = (payload, round)
        send_many(self.pid, dsts, self.channel, payload, tag, round)

    # --------------------------------------------------------------- timing
    def set_timer(
        self, delay: Time, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run *callback(*args)* after *delay*, unless the process crashes."""
        return self.world.scheduler.schedule(delay, self._guarded, callback, args)

    def _guarded(self, callback: Callable[..., None], args: tuple) -> None:
        if not self.crashed:
            callback(*args)

    def periodically(
        self, period: Time, callback: Callable[[], None], jitter: float = 0.0
    ) -> "Periodic":
        """Run *callback* every *period* (± uniform *jitter*) until stopped."""
        timer = Periodic(self, period, callback, jitter)
        timer.start()
        return timer

    def spawn(self, gen: TaskGen, name: str = "task") -> Task:
        """Start a cooperative task (see :mod:`repro.sim.tasks`)."""
        return self.tasks.spawn(gen, name=f"{self.channel}@{self.pid}:{name}")

    # --------------------------------------------------------------- tracing
    def trace(self, kind: str, **data: Any) -> None:
        """Record a trace event attributed to this process."""
        sink = self.world.trace
        if sink.wants(kind):
            sink.record(self.now, kind, self.pid, **data)

    # ------------------------------------------------------------- internals
    def _handle_message(self, src: ProcessId, payload: Any) -> None:
        self.on_message(src, payload)
        # A delivered message may satisfy a parked ``wait until``.
        self.tasks.poke()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pid = self.process.pid if self.process is not None else "?"
        return f"<{type(self).__name__} channel={self.channel!r} pid={pid}>"


class Periodic:
    """A repeating timer bound to a component (stops on crash)."""

    def __init__(
        self,
        component: Component,
        period: Time,
        callback: Callable[[], None],
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if jitter < 0 or jitter >= period:
            raise ConfigurationError("jitter must satisfy 0 <= jitter < period")
        self._component = component
        self.period = period
        self.callback = callback
        self.jitter = jitter
        self._handle: Optional[EventHandle] = None
        self._running = False

    def start(self) -> None:
        """Begin firing; the first tick happens after one period."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Stop firing.  Safe to call multiple times."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _arm(self) -> None:
        delay = self.period
        if self.jitter:
            delay += self._component.rng.uniform(-self.jitter, self.jitter)
        self._handle = self._component.world.scheduler.schedule(delay, self._tick)

    def _tick(self) -> None:
        if not self._running or self._component.crashed:
            return
        self.callback()
        if self._running and not self._component.crashed:
            self._arm()
