"""Crash schedules and failure-pattern helpers.

A :class:`CrashSchedule` is a declarative list of ``(pid, time)`` pairs that
is applied to a world before running.  The module also provides generators
for common adversarial patterns used by the experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..types import ProcessId, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .world import World

__all__ = [
    "CrashEvent",
    "CrashSchedule",
    "no_crashes",
    "crash_at",
    "random_crashes",
]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """One scheduled crash."""

    pid: ProcessId
    time: Time


class CrashSchedule:
    """An immutable set of scheduled crashes, applied to a world."""

    def __init__(self, events: Iterable[CrashEvent] = ()) -> None:
        self.events: Tuple[CrashEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.pid))
        )
        seen = set()
        for ev in self.events:
            if ev.pid in seen:
                raise ConfigurationError(f"process {ev.pid} crashes twice")
            seen.add(ev.pid)
            if ev.time < 0:
                raise ConfigurationError(f"negative crash time {ev.time}")

    @property
    def crashed_pids(self) -> frozenset[ProcessId]:
        """The set of processes that will eventually crash."""
        return frozenset(ev.pid for ev in self.events)

    def correct_pids(self, n: int) -> frozenset[ProcessId]:
        """The set of processes that never crash, for a system of size *n*."""
        return frozenset(range(n)) - self.crashed_pids

    def apply(self, world: "World") -> None:
        """Schedule every crash on *world*'s scheduler."""
        for ev in self.events:
            world.schedule_crash(ev.pid, ev.time)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrashSchedule({list(self.events)!r})"


def no_crashes() -> CrashSchedule:
    """The empty schedule — every process is correct."""
    return CrashSchedule()


def crash_at(*pairs: Tuple[ProcessId, Time]) -> CrashSchedule:
    """Build a schedule from ``(pid, time)`` pairs: ``crash_at((2, 50.0))``."""
    return CrashSchedule(CrashEvent(pid, t) for pid, t in pairs)


def random_crashes(
    rng: random.Random,
    n: int,
    max_crashes: int,
    window: Tuple[Time, Time],
    protect: Sequence[ProcessId] = (),
) -> CrashSchedule:
    """Crash up to *max_crashes* distinct processes at random times in
    *window*, never crashing processes in *protect*.

    The number of crashes is drawn uniformly from ``0..max_crashes``; the
    caller is responsible for keeping ``max_crashes`` below any majority
    requirement of the algorithm under test (``f < n/2`` for consensus).
    """
    if max_crashes >= n:
        raise ConfigurationError("cannot crash every process")
    candidates: List[ProcessId] = [p for p in range(n) if p not in set(protect)]
    count = rng.randint(0, min(max_crashes, len(candidates)))
    victims = rng.sample(candidates, count)
    lo, hi = window
    return CrashSchedule(
        CrashEvent(pid, rng.uniform(lo, hi)) for pid in victims
    )
