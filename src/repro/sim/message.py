"""The in-flight message record used by the network layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..types import Channel, ProcessId, Time

__all__ = ["Message"]

_next_id = 0


def _fresh_id() -> int:
    global _next_id
    _next_id += 1
    return _next_id


@dataclass(frozen=True, slots=True)
class Message:
    """A single point-to-point message.

    ``channel`` separates coexisting protocol components on the same process
    (e.g. a failure detector and a consensus algorithm); ``payload`` is the
    protocol-level content and is never inspected by the network.  ``tag``
    and ``round`` are optional metadata mirrored into the trace so the
    analysis layer can count messages per protocol step without decoding
    payloads.
    """

    src: ProcessId
    dst: ProcessId
    channel: Channel
    payload: Any
    send_time: Time
    tag: Optional[str] = None
    round: Optional[int] = None
    msg_id: int = field(default_factory=_fresh_id)

    @property
    def is_self_message(self) -> bool:
        """``True`` for loopback messages a process sends to itself."""
        return self.src == self.dst
