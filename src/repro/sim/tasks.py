"""Cooperative generator tasks.

The paper's pseudocode is written as concurrent *tasks* containing blocking
``wait until <condition>`` statements.  This module provides a tiny task
runtime that lets the algorithm implementations mirror that pseudocode
almost line for line::

    def round_task(self):
        ...
        yield WaitUntil(lambda: len(self.acks) >= self.majority)
        ...
        yield Sleep(self.period)

Tasks are plain Python generators driven by the deterministic event loop:

* ``yield Sleep(d)`` suspends the task for *d* simulated time units;
* ``yield WaitUntil(pred)`` suspends until *pred()* is true.  Predicates are
  re-evaluated whenever the owning component is *poked* — which happens on
  every message delivery and every local failure-detector output change, the
  only events that can change a predicate's value in these algorithms.

Because tasks only switch at ``yield`` points and the event loop is
deterministic, there are no data races: this models the standard formal
treatment where the adversary controls scheduling through message delays.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Union

from ..errors import TaskError
from ..types import Time
from .events import EventHandle
from .scheduler import Scheduler

__all__ = ["Sleep", "WaitUntil", "Task", "TaskRuntime"]


class Sleep:
    """Directive: suspend the yielding task for *duration* time units."""

    __slots__ = ("duration",)

    def __init__(self, duration: Time) -> None:
        if duration < 0:
            raise TaskError(f"negative sleep {duration}")
        self.duration = duration


class WaitUntil:
    """Directive: suspend the yielding task until *predicate()* is true.

    The predicate must be side-effect free: it may be called any number of
    times, including several times at the same instant.
    """

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[], bool]) -> None:
        self.predicate = predicate


Directive = Union[Sleep, WaitUntil, None]
TaskGen = Generator[Directive, None, None]


class Task:
    """A running (or finished) cooperative task."""

    __slots__ = ("gen", "name", "done", "_waiting", "_sleep_handle")

    def __init__(self, gen: TaskGen, name: str) -> None:
        self.gen = gen
        self.name = name
        self.done = False
        self._waiting: Optional[WaitUntil] = None
        self._sleep_handle: Optional[EventHandle] = None

    @property
    def parked(self) -> bool:
        """``True`` while the task is blocked on a :class:`WaitUntil`."""
        return self._waiting is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else ("parked" if self.parked else "running")
        return f"Task({self.name!r}, {state})"


class TaskRuntime:
    """Runs the cooperative tasks of one component."""

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        self._tasks: List[Task] = []
        self._stopped = False
        self._poking = False

    # ----------------------------------------------------------- life cycle
    def spawn(self, gen: TaskGen, name: str = "task") -> Task:
        """Start *gen* as a new task and run it until its first suspension."""
        if self._stopped:
            raise TaskError("runtime already stopped")
        task = Task(gen, name)
        self._tasks.append(task)
        self._advance(task)
        return task

    def stop(self) -> None:
        """Kill all tasks (used when the owning process crashes)."""
        self._stopped = True
        for task in self._tasks:
            if task._sleep_handle is not None:
                task._sleep_handle.cancel()
            task.gen.close()
            task.done = True
        self._tasks.clear()

    @property
    def alive(self) -> int:
        """Number of tasks that have not finished."""
        return sum(1 for t in self._tasks if not t.done)

    # ------------------------------------------------------------- stepping
    def poke(self) -> None:
        """Re-evaluate the wait predicates of every parked task.

        A resumed task may change state that unblocks *another* parked task
        at the same instant, so we loop until a fixed point.  Re-entrant
        pokes (a resumed task delivering a loopback that pokes us again) are
        flattened into the current pass.
        """
        if self._stopped or self._poking:
            return
        self._poking = True
        try:
            progressed = True
            while progressed:
                progressed = False
                for task in list(self._tasks):
                    if task.done or task._waiting is None:
                        continue
                    if task._waiting.predicate():
                        task._waiting = None
                        self._advance(task)
                        progressed = True
        finally:
            self._poking = False

    def _advance(self, task: Task) -> None:
        """Drive *task* forward until it suspends or finishes."""
        while not self._stopped and not task.done:
            try:
                directive = task.gen.send(None)
            except StopIteration:
                task.done = True
                self._tasks.remove(task)
                return
            if directive is None:
                # Bare ``yield``: let all other events at this instant fire
                # first, then continue.
                directive = Sleep(0.0)
            if isinstance(directive, Sleep):
                task._sleep_handle = self._scheduler.schedule(
                    directive.duration, self._wake, task
                )
                return
            if isinstance(directive, WaitUntil):
                if directive.predicate():
                    continue
                task._waiting = directive
                return
            raise TaskError(f"task {task.name!r} yielded {directive!r}")

    def _wake(self, task: Task) -> None:
        task._sleep_handle = None
        if not self._stopped and not task.done:
            self._advance(task)
            # Waking may have changed state other parked tasks wait on.
            self.poke()
