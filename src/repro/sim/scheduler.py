"""Deterministic discrete-event scheduler.

This is the heart of the simulation substrate: a priority queue of timed
callbacks with deterministic tie-breaking.  All higher layers (links,
timers, cooperative tasks, failure schedules) reduce to ``schedule`` calls.

Design notes (following the HPC guides' "make it work, keep the hot path
lean" advice): the inner loop is a plain ``heapq`` pop with lazy deletion of
cancelled events — no per-event object churn beyond the handle itself, and no
dynamic dispatch in the loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..types import Time
from .events import EventHandle

__all__ = ["Scheduler"]


class Scheduler:
    """A virtual-time event loop.

    Events scheduled for the same instant fire in scheduling order, which
    (together with seeded RNG streams, see :mod:`repro.sim.rng`) makes every
    simulation run bit-for-bit reproducible.
    """

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._now: Time = 0.0
        self._events_fired = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> Time:
        """Current simulated time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events (approximate upper
        bound: cancelled events are removed lazily)."""
        return sum(1 for e in self._heap if not e.cancelled)

    # ------------------------------------------------------------ scheduling
    def schedule_at(
        self, time: Time, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule *callback(*args)* at absolute simulated *time*.

        Scheduling in the past is rejected: asynchronous systems may delay
        events arbitrarily but never deliver them before they were sent.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(
        self, delay: Time, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule *callback(*args)* after *delay* time units (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` if the heap is empty."""
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            cb, args = handle._consume()
            self._events_fired += 1
            cb(*args)
            return True
        return False

    def run(
        self,
        until: Optional[Time] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the heap drains, *until* is reached, or
        *max_events* callbacks have fired (whichever comes first).

        When stopping because of *until*, simulated time is advanced to
        *until* so subsequent relative scheduling behaves intuitively.

        Returns:
            The number of events fired by this call.
        """
        fired = 0
        heap = self._heap
        while heap:
            if max_events is not None and fired >= max_events:
                return fired
            head = heap[0]
            if head.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and head.time > until:
                break
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return fired

    def compact(self) -> None:
        """Drop cancelled entries from the heap (housekeeping for very long
        runs with heavy timer churn; never required for correctness)."""
        live = [e for e in self._heap if not e.cancelled]
        heapq.heapify(live)
        self._heap = live
