"""Discrete-event simulation substrate.

This subpackage provides everything needed to run deterministic simulations
of asynchronous and partially synchronous message-passing systems with crash
failures: a virtual-time scheduler, directed link models (reliable,
partially synchronous with GST/Δ, fair-lossy), processes hosting multiple
protocol components, a cooperative-task runtime mirroring the paper's
``wait until`` pseudocode, crash schedules, and structured traces.

The surface components actually consume is the small set of structural
protocols in :mod:`repro.sim.api`; anything implementing them can host a
:class:`Component` — the live asyncio runtime in :mod:`repro.net` is the
second implementation.
"""

from .api import NetworkAPI, ProcessAPI, SchedulerAPI, WorldAPI, stream_for
from .component import Component, Periodic
from .delays import (
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    SpikeDelay,
    UniformDelay,
)
from .events import EventHandle
from .failures import (
    CrashEvent,
    CrashSchedule,
    crash_at,
    no_crashes,
    random_crashes,
)
from .links import (
    DeadLink,
    FairLossyLink,
    Link,
    PartiallySynchronousLink,
    ReliableLink,
)
from .message import Message
from .network import Network
from .partition import NetworkController
from .process import Process
from .rng import RandomSource
from .scheduler import Scheduler
from .tasks import Sleep, Task, TaskRuntime, WaitUntil
from .trace import Trace, TraceEvent
from .world import World

__all__ = [
    "NetworkAPI",
    "ProcessAPI",
    "SchedulerAPI",
    "WorldAPI",
    "stream_for",
    "Component",
    "Periodic",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "ExponentialDelay",
    "SpikeDelay",
    "EventHandle",
    "CrashEvent",
    "CrashSchedule",
    "crash_at",
    "no_crashes",
    "random_crashes",
    "Link",
    "ReliableLink",
    "PartiallySynchronousLink",
    "FairLossyLink",
    "DeadLink",
    "Message",
    "Network",
    "NetworkController",
    "Process",
    "RandomSource",
    "Scheduler",
    "Sleep",
    "Task",
    "TaskRuntime",
    "WaitUntil",
    "Trace",
    "TraceEvent",
    "World",
]
