"""The message-passing fabric connecting simulated processes.

The network owns one directed :class:`~repro.sim.links.Link` per ordered pair
of processes (with a configurable default), consults the link for every send,
and schedules deliveries on the world scheduler.  It also keeps cheap
counters (sent / delivered / dropped, per channel) so benchmark code can read
totals without scanning the full trace.

Self-sends (``src == dst``) are delivered through a zero-delay loopback and
are counted separately: the paper's per-round message counts (e.g. "4n for
the ◇C protocol") refer to actual network messages, so the metrics layer
reads :attr:`Network.sent_network` by default.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import TraceSink
from ..types import Channel, ProcessId, Time
from .links import Link, ReliableLink
from .message import Message
from .scheduler import Scheduler

__all__ = ["Network"]


class Network:
    """Routes messages between processes through per-pair link models."""

    def __init__(
        self,
        n: int,
        scheduler: Scheduler,
        trace: TraceSink,
        rng: random.Random,
        default_link: Optional[Link] = None,
        deliver: Optional[Callable[[Message], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one process, got n={n}")
        self.n = n
        self._scheduler = scheduler
        self._trace = trace
        self._rng = rng
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._default_link = default_link if default_link is not None else ReliableLink()
        self._links: Dict[Tuple[ProcessId, ProcessId], Link] = {}
        self._deliver = deliver
        # Counters, cheap enough to keep always-on.
        self.sent_total = 0
        self.sent_network = 0  # excludes self-sends
        self.delivered_total = 0
        self.dropped_total = 0
        self.sent_by_channel: Dict[Channel, int] = {}

    # --------------------------------------------------------------- wiring
    def set_deliver(self, deliver: Callable[[Message], None]) -> None:
        """Install the delivery callback (normally ``World._deliver``)."""
        self._deliver = deliver

    def set_link(self, src: ProcessId, dst: ProcessId, link: Link) -> None:
        """Override the link used for the directed pair ``src -> dst``."""
        self._links[(src, dst)] = link

    def set_links_from(self, src: ProcessId, link_factory: Callable[[], Link]) -> None:
        """Set all output links of *src* from a factory (one fresh link each)."""
        for dst in range(self.n):
            if dst != src:
                self.set_link(src, dst, link_factory())

    def set_links_to(self, dst: ProcessId, link_factory: Callable[[], Link]) -> None:
        """Set all input links of *dst* from a factory (one fresh link each)."""
        for src in range(self.n):
            if src != dst:
                self.set_link(src, dst, link_factory())

    def link(self, src: ProcessId, dst: ProcessId) -> Link:
        """The link currently governing the directed pair ``src -> dst``."""
        return self._links.get((src, dst), self._default_link)

    # --------------------------------------------------------------- sending
    def send(
        self,
        src: ProcessId,
        dst: ProcessId,
        channel: Channel,
        payload: Any,
        tag: Optional[str] = None,
        round: Optional[int] = None,
    ) -> Message:
        """Inject a message; the link decides loss and delay.

        Returns the :class:`Message` record (mostly useful to tests).
        """
        now = self._scheduler.now
        msg = Message(
            src=src,
            dst=dst,
            channel=channel,
            payload=payload,
            send_time=now,
            tag=tag,
            round=round,
        )
        self.sent_total += 1
        self.sent_by_channel[channel] = self.sent_by_channel.get(channel, 0) + 1
        if src == dst:
            # Loopback: local, instantaneous (next event at the same time),
            # never lost, never counted as a network message.
            if self._trace.wants("send"):
                self._trace.record(
                    now, "send", src, channel=channel, src=src, dst=dst,
                    tag=tag, round=round, loopback=True,
                )
            self._scheduler.schedule(0.0, self._finish_delivery, msg)
            return msg

        self.sent_network += 1
        self._metrics.inc("messages_sent_total", channel=channel)
        if self._trace.wants("send"):
            self._trace.record(
                now, "send", src, channel=channel, src=src, dst=dst,
                tag=tag, round=round, loopback=False,
            )
        delay = self.link(src, dst).plan(msg, now, self._rng)
        if delay is None:
            self.dropped_total += 1
            self._metrics.inc("messages_dropped_total", reason="link")
            if self._trace.wants("drop"):
                self._trace.record(
                    now, "drop", src, channel=channel, src=src, dst=dst,
                    reason="link",
                )
            return msg
        self._scheduler.schedule(delay, self._finish_delivery, msg)
        return msg

    def _finish_delivery(self, msg: Message) -> None:
        self.delivered_total += 1
        self._metrics.inc("messages_delivered_total", channel=msg.channel)
        if self._trace.wants("deliver"):
            self._trace.record(
                self._scheduler.now, "deliver", msg.dst,
                channel=msg.channel, src=msg.src, dst=msg.dst,
                tag=msg.tag, round=msg.round,
            )
        if self._deliver is None:  # pragma: no cover - defensive
            raise ConfigurationError("network has no delivery callback installed")
        self._deliver(msg)
