"""Simulated processes.

A :class:`Process` is a container of :class:`~repro.sim.component.Component`
objects plus crash state.  Crashes are *permanent* (the paper's model:
crash-stop, no recovery): once crashed, a process executes nothing further —
its timers are suppressed, its tasks are killed, and messages addressed to it
are discarded.  Messages it sent *before* crashing may still be delivered,
which is the standard asynchronous-crash semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..errors import ConfigurationError
from ..types import Channel, ProcessId, Time
from .component import Component
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .world import World

__all__ = ["Process"]


class Process:
    """One process of the distributed system (see module docstring)."""

    def __init__(self, pid: ProcessId, world: "World") -> None:
        self.pid = pid
        self.world = world
        self.components: Dict[Channel, Component] = {}
        self._order: List[Component] = []
        self.crashed = False
        self.crash_time: Optional[Time] = None
        self._started = False
        # Messages for channels whose component is not attached yet.
        # Components may be attached dynamically (e.g. one consensus
        # instance per replicated-log slot), and a fast replica can send on
        # a new channel before a slow one has created it.
        self._pending: Dict[Channel, List[Message]] = {}

    # -------------------------------------------------------------- wiring
    def attach(self, component: Component) -> Component:
        """Install *component*; its channel must be unique on this process."""
        if component.channel in self.components:
            raise ConfigurationError(
                f"process {self.pid} already has a component on channel "
                f"{component.channel!r}"
            )
        component._attach(self)
        self.components[component.channel] = component
        self._order.append(component)
        if self._started and not self.crashed:
            self._start_component(component)
            if self._pending.get(component.channel):
                # Flush parked messages one scheduler tick later (same
                # simulated time): the caller may still be wiring companion
                # components at this instant — e.g. a consensus instance
                # subscribing to the broadcast component it is attached
                # with — and a synchronous flush would deliver before the
                # subscription exists.
                self.world.scheduler.schedule(
                    0.0, self._flush_pending, component
                )
        return component

    def _flush_pending(self, component: Component) -> None:
        for msg in self._pending.pop(component.channel, []):
            if not self.crashed:
                component._handle_message(msg.src, msg.payload)

    def component(self, channel: Channel) -> Component:
        """Look up the component on *channel* (KeyError if absent)."""
        return self.components[channel]

    @property
    def pending_channels(self) -> List[Channel]:
        """Channels holding parked messages with no component attached."""
        return [ch for ch, msgs in self._pending.items() if msgs]

    # ---------------------------------------------------------- life cycle
    def start(self) -> None:
        """Invoke ``on_start`` on every attached component, in attach order.

        A component's ``on_start`` may attach further components (e.g. a
        replicated log opening its first consensus instance); those are
        started exactly once, at attach time, and skipped by this loop.
        """
        self._started = True
        index = 0
        while index < len(self._order):
            if not self.crashed:
                self._start_component(self._order[index])
            index += 1

    def _start_component(self, component: Component) -> None:
        if not getattr(component, "_on_start_done", False):
            component._on_start_done = True
            component.on_start()

    def crash(self) -> None:
        """Crash permanently at the current simulated time.  Idempotent."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_time = self.world.scheduler.now
        self.world.crash_epoch += 1
        self.world.trace.record(self.crash_time, "crash", self.pid)
        for component in self._order:
            component.tasks.stop()
            component.on_crash()

    # ------------------------------------------------------------- delivery
    def deliver(self, msg: Message) -> None:
        """Hand a delivered message to the component owning its channel."""
        if self.crashed:
            self.world.metrics.inc("messages_dropped_total", reason="crashed")
            self.world.trace.record(
                self.world.scheduler.now, "drop", self.pid,
                channel=msg.channel, src=msg.src, dst=msg.dst, reason="crashed",
            )
            return
        component = self.components.get(msg.channel)
        if component is None:
            # Hold the message until a component claims the channel (see
            # __init__).  Messages parked on channels nobody ever attaches
            # indicate a wiring bug; they stay visible via pending_channels.
            self._pending.setdefault(msg.channel, []).append(msg)
            self.world.trace.record(
                self.world.scheduler.now, "parked", self.pid,
                channel=msg.channel, src=msg.src,
            )
            return
        component._handle_message(msg.src, msg.payload)

    # -------------------------------------------------------- notifications
    def notify_fd_change(self, source: Any = None) -> None:
        """Tell every component (except *source*) that a local failure
        detector's output changed, so parked waits get re-evaluated."""
        if self.crashed:
            return
        for component in self._order:
            if component is not source:
                component.on_fd_change()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "crashed" if self.crashed else "up"
        return f"<Process {self.pid} ({state}) components={list(self.components)}>"
