"""Directed link models.

The paper's results live in three link regimes:

* **reliable asynchronous** links — no loss, arbitrary (finite) delay; this
  is the base system model of Section 2 (:class:`ReliableLink`);
* **partially synchronous** links — reliable, and after an unknown global
  stabilization time *GST* every message is delivered within an unknown
  bound Δ (Dwork/Lynch/Stockmeyer as used in Sections 4; see
  :class:`PartiallySynchronousLink`);
* **fair-lossy** links — may lose messages, but infinitely many sends imply
  infinitely many deliveries (the output links of the leader in the
  ◇C → ◇P transformation of Fig. 2; see :class:`FairLossyLink`).

A link decides, per message, whether the message is delivered and with what
delay.  Links are *directed*: the network keeps one link per ordered pair.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

from ..errors import ConfigurationError
from ..types import Time
from .delays import DelayModel, FixedDelay, UniformDelay
from .message import Message

__all__ = [
    "Link",
    "ReliableLink",
    "PartiallySynchronousLink",
    "FairLossyLink",
    "DeadLink",
]


class Link(ABC):
    """A directed communication link between one ordered pair of processes."""

    @abstractmethod
    def plan(self, msg: Message, now: Time, rng: random.Random) -> Optional[Time]:
        """Return the delivery delay for *msg* sent at *now*, or ``None``
        if the link drops the message."""


class ReliableLink(Link):
    """No loss; delay drawn from a :class:`DelayModel` (asynchronous system).

    The default model is a modest uniform jitter, which is "asynchronous
    enough" for algorithms that make no timing assumptions while keeping
    simulations short.  Pass a heavy-tailed model to stress asynchrony.
    """

    def __init__(self, delay: Optional[DelayModel] = None) -> None:
        self.delay = delay if delay is not None else UniformDelay(0.5, 1.5)

    def plan(self, msg: Message, now: Time, rng: random.Random) -> Optional[Time]:
        return self.delay.sample(rng, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReliableLink({self.delay!r})"


class PartiallySynchronousLink(Link):
    """Reliable link with a Global Stabilization Time.

    Before *gst*, delays follow *pre_gst* (arbitrary — the adversary's
    window).  From *gst* on, delays follow *post_gst*, whose :attr:`max_delay`
    plays the role of the unknown bound Δ.  Messages sent before *gst* whose
    planned arrival would exceed ``gst + delta`` are clamped to arrive by
    then, matching the standard formulation "after GST every message
    (including those already in flight) is received within Δ".
    """

    def __init__(
        self,
        gst: Time,
        pre_gst: Optional[DelayModel] = None,
        post_gst: Optional[DelayModel] = None,
    ) -> None:
        if gst < 0:
            raise ConfigurationError(f"negative GST {gst}")
        self.gst = gst
        self.pre_gst = pre_gst if pre_gst is not None else UniformDelay(0.5, 40.0)
        self.post_gst = post_gst if post_gst is not None else UniformDelay(0.5, 2.0)
        if self.post_gst.max_delay == float("inf"):
            raise ConfigurationError("post-GST delay model must be bounded")

    @property
    def delta(self) -> Time:
        """The (to algorithms, unknown) post-GST delay bound Δ."""
        return self.post_gst.max_delay

    def plan(self, msg: Message, now: Time, rng: random.Random) -> Optional[Time]:
        if now >= self.gst:
            return self.post_gst.sample(rng, now)
        delay = self.pre_gst.sample(rng, now)
        latest = self.gst + self.delta
        if now + delay > latest:
            delay = latest - now
        return delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartiallySynchronousLink(gst={self.gst}, "
            f"pre={self.pre_gst!r}, post={self.post_gst!r})"
        )


class FairLossyLink(Link):
    """A lossy-but-fair link.

    Two fairness disciplines are supported:

    * *probabilistic* (``loss_prob`` < 1): each message is independently
      dropped with the given probability — infinitely many sends then yield
      infinitely many deliveries almost surely;
    * *deterministic* (``deliver_every`` = k): exactly every k-th message on
      this link is delivered and the rest are dropped — exact fairness, used
      where tests need certainty rather than probability-1 statements.

    Exactly one of the two must be configured.
    """

    def __init__(
        self,
        inner: Optional[Link] = None,
        loss_prob: Optional[float] = None,
        deliver_every: Optional[int] = None,
    ) -> None:
        if (loss_prob is None) == (deliver_every is None):
            raise ConfigurationError(
                "configure exactly one of loss_prob / deliver_every"
            )
        if loss_prob is not None and not 0 <= loss_prob < 1:
            raise ConfigurationError(f"loss_prob {loss_prob} outside [0, 1)")
        if deliver_every is not None and deliver_every < 1:
            raise ConfigurationError(f"deliver_every must be >= 1")
        self.inner = inner if inner is not None else ReliableLink()
        self.loss_prob = loss_prob
        self.deliver_every = deliver_every
        self._count = 0

    def plan(self, msg: Message, now: Time, rng: random.Random) -> Optional[Time]:
        if self.loss_prob is not None:
            if rng.random() < self.loss_prob:
                return None
        else:
            self._count += 1
            if self._count % self.deliver_every != 0:  # type: ignore[operator]
                return None
        return self.inner.plan(msg, now, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.loss_prob is not None:
            return f"FairLossyLink(loss_prob={self.loss_prob}, {self.inner!r})"
        return f"FairLossyLink(deliver_every={self.deliver_every}, {self.inner!r})"


class DeadLink(Link):
    """Drops everything.  Handy for partition scenarios in tests.

    Note that a dead link violates every assumption of the paper's model; it
    exists to let tests demonstrate *why* those assumptions are needed.
    """

    def plan(self, msg: Message, now: Time, rng: random.Random) -> Optional[Time]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DeadLink()"
