"""Scheduled-event records for the discrete-event scheduler.

An :class:`EventHandle` is returned by every ``schedule`` call and supports
O(1) cancellation (lazy deletion: the heap entry stays in place but is skipped
when popped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..types import Time

__all__ = ["EventHandle"]


@dataclass(order=True)
class EventHandle:
    """A pending callback in the simulation's event heap.

    Ordering is by ``(time, seq)``; ``seq`` is a monotonically increasing
    insertion counter, so simultaneous events fire in the order they were
    scheduled.  This is what makes runs fully deterministic.
    """

    time: Time
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; O(1)."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """``True`` while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def _consume(self) -> tuple[Callable[..., None], tuple[Any, ...]]:
        cb, args = self.callback, self.args
        # Drop references so fired events do not pin their closures alive.
        self.callback = None  # type: ignore[assignment]
        self.args = ()
        return cb, args
