"""The component-facing runtime API, as structural protocols.

:class:`~repro.sim.component.Component` subclasses — failure detectors,
transformations, broadcast primitives, consensus algorithms — never talk to
the discrete-event simulator directly.  Everything they touch goes through a
narrow surface:

* a **scheduler** (``world.scheduler``) with a ``now`` clock and timed
  callbacks (:class:`SchedulerAPI`);
* a **message fabric** (``world.network``) with a fire-and-forget ``send``
  (:class:`NetworkAPI`);
* a **world** exposing ``n``, a :class:`~repro.sim.trace.Trace`, and named
  RNG streams (:class:`WorldAPI`);
* a **process** container with ``pid`` / ``crashed`` / FD-change fan-out
  (:class:`ProcessAPI`).

Two substrates implement this surface today: the deterministic virtual-time
simulator (:class:`repro.sim.world.World`) and the live asyncio runtime
(:class:`repro.net.host.NodeHost`), which hosts the *same, unchanged*
component classes over real transports.  Anything new that satisfies these
protocols (they are structural — no inheritance needed) can host the
algorithm layer too.

Oracle components (:mod:`repro.fd.oracle`) deliberately step outside this
API: they read the global failure pattern (``world.processes``,
``world.correct_pids``), which only a simulator can expose.  They are
simulation-only by design; every *message-passing* construction in the
library stays inside the surface defined here.
"""

from __future__ import annotations

import random
from typing import (
    Any,
    Callable,
    Optional,
    Protocol,
    runtime_checkable,
)

from ..types import Channel, ProcessId, Time

__all__ = [
    "TimerHandleAPI",
    "SchedulerAPI",
    "NetworkAPI",
    "WorldAPI",
    "ProcessAPI",
]


@runtime_checkable
class TimerHandleAPI(Protocol):
    """A cancellable pending callback (returned by every ``schedule``)."""

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""


@runtime_checkable
class SchedulerAPI(Protocol):
    """A clock plus timed callbacks.

    The simulator implements this with a virtual-time event heap
    (:class:`repro.sim.scheduler.Scheduler`); the live runtime with
    wall-clock asyncio timers (:class:`repro.net.clock.AsyncioClock`) or a
    reused virtual heap for deterministic tests
    (:class:`repro.net.clock.VirtualClock`).
    """

    @property
    def now(self) -> Time:
        """Current time (virtual units or wall-clock seconds since start)."""
        ...

    def schedule(
        self, delay: Time, callback: Callable[..., None], *args: Any
    ) -> TimerHandleAPI:
        """Run ``callback(*args)`` after *delay* (``delay >= 0``)."""
        ...

    def schedule_at(
        self, time: Time, callback: Callable[..., None], *args: Any
    ) -> TimerHandleAPI:
        """Run ``callback(*args)`` at absolute *time* (not in the past)."""
        ...


@runtime_checkable
class NetworkAPI(Protocol):
    """The fire-and-forget message fabric components send through."""

    def send(
        self,
        src: ProcessId,
        dst: ProcessId,
        channel: Channel,
        payload: Any,
        tag: Optional[str] = None,
        round: Optional[int] = None,
    ) -> Any:
        """Inject one message; delivery (or loss) is the substrate's call."""
        ...


class WorldAPI(Protocol):
    """What a component sees as ``self.world``.

    ``trace`` must quack like :class:`repro.sim.trace.Trace` and ``rng``
    like :class:`repro.sim.rng.RandomSource`; both are substrate-independent
    classes reused verbatim by the live runtime, so they appear here as
    attribute declarations rather than re-modelled protocols.
    """

    n: int
    crash_epoch: int

    @property
    def scheduler(self) -> SchedulerAPI: ...

    @property
    def network(self) -> NetworkAPI: ...

    @property
    def trace(self) -> Any: ...

    @property
    def rng(self) -> Any: ...


class ProcessAPI(Protocol):
    """What a component sees as ``self.process``."""

    pid: ProcessId
    crashed: bool

    @property
    def world(self) -> WorldAPI: ...

    def notify_fd_change(self, source: Any = None) -> None:
        """Fan an FD output change out to sibling components."""
        ...


def stream_for(world: WorldAPI, channel: Channel, pid: ProcessId) -> random.Random:
    """The deterministic RNG stream a component at (*channel*, *pid*) uses.

    Kept here so both substrates derive identically-named streams and stay
    comparable under the same master seed.
    """
    return world.rng.stream(f"{channel}:{pid}")
