"""Structured run traces.

Every observable action in a simulation — message sends, deliveries, drops,
crashes, failure-detector output changes, protocol phase transitions,
decisions — is recorded as a :class:`TraceEvent`.  The property checkers in
:mod:`repro.analysis` and the benchmark harnesses work exclusively from these
traces, so "phases per round" or "messages per round" are *measured*, never
hard-coded.

Well-known event kinds
----------------------

========================  ====================================================
kind                      data payload
========================  ====================================================
``send``                  ``channel, src, dst, tag, round`` (tag/round optional)
``deliver``               ``channel, src, dst, tag, round``
``drop``                  ``channel, src, dst, reason``
``crash``                 ``pid``
``fd``                    ``pid, suspected (frozenset), trusted``
``phase``                 ``pid, algo, round, phase``
``round``                 ``pid, algo, round``
``propose``               ``pid, algo, value``
``decide``                ``pid, algo, value, round``
``leader``                ``pid, leader``
========================  ====================================================

Recording can be restricted to a subset of kinds for very long runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set

from ..types import ProcessId, Time

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """A single timestamped observation of the simulated system."""

    time: Time
    kind: str
    pid: Optional[ProcessId]
    data: Dict[str, Any]

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``event.data.get(key, default)``."""
        return self.data.get(key, default)


class Trace:
    """An append-only log of :class:`TraceEvent` records.

    Parameters:
        kinds: if given, only events whose kind is in this set are kept;
            everything else is silently discarded (cheap — one set lookup).
        enabled: master switch; a disabled trace records nothing.
    """

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        enabled: bool = True,
    ) -> None:
        self._events: List[TraceEvent] = []
        self._kinds: Optional[Set[str]] = set(kinds) if kinds is not None else None
        self.enabled = enabled
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------- recording
    def record(
        self, time: Time, kind: str, pid: Optional[ProcessId], **data: Any
    ) -> None:
        """Append one event (subject to the kind filter and master switch)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self._events.append(TraceEvent(time=time, kind=kind, pid=pid, data=data))
        self._counters[kind] = self._counters.get(kind, 0) + 1

    def wants(self, kind: str) -> bool:
        """``True`` if an event of *kind* would actually be stored.

        Callers building expensive payloads (e.g. copying a suspect set) can
        skip the work when the trace would discard the event anyway.
        """
        return self.enabled and (self._kinds is None or kind in self._kinds)

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The raw event list (do not mutate)."""
        return self._events

    def count(self, kind: str) -> int:
        """Number of recorded events of *kind* (O(1))."""
        return self._counters.get(kind, 0)

    def select(
        self,
        kind: Optional[str] = None,
        pid: Optional[ProcessId] = None,
        where: Optional[Callable[[TraceEvent], bool]] = None,
        after: Optional[Time] = None,
        before: Optional[Time] = None,
    ) -> List[TraceEvent]:
        """Return events matching all the given filters, in time order."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if pid is not None and ev.pid != pid:
                continue
            if after is not None and ev.time < after:
                continue
            if before is not None and ev.time > before:
                continue
            if where is not None and not where(ev):
                continue
            out.append(ev)
        return out

    def last(self, kind: str, pid: Optional[ProcessId] = None) -> Optional[TraceEvent]:
        """The most recent event of *kind* (for *pid*, if given), or ``None``."""
        for ev in reversed(self._events):
            if ev.kind == kind and (pid is None or ev.pid == pid):
                return ev
        return None

    @property
    def end_time(self) -> Time:
        """Timestamp of the last recorded event (0.0 if empty)."""
        return self._events[-1].time if self._events else 0.0
