"""Structured run traces — compatibility shim over :mod:`repro.obs`.

The trace model grew up here, inside the simulator; it now lives in the
substrate-neutral observability layer :mod:`repro.obs`, shared by the
discrete-event simulator and the live asyncio runtime alike:

* :class:`repro.obs.events.TraceEvent` — the canonical event record;
* :class:`repro.obs.sinks.MemorySink` — the append-only queryable log
  historically called ``Trace`` (the name is preserved below);
* the machine-readable event-kind schema registry
  (:data:`repro.obs.events.EVENT_SCHEMAS`), which replaced the docstring
  table that used to sit here — see ``docs/traces.md`` for the generated
  reference, or ``python -m repro trace schema`` to print it.

Every historical import path keeps working::

    from repro.sim.trace import Trace, TraceEvent
"""

from __future__ import annotations

from ..obs.events import TraceEvent
from ..obs.sinks import MemorySink as Trace

__all__ = ["TraceEvent", "Trace"]
