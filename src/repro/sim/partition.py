"""Dynamic network control: partitions, healing, degradation.

The link models in :mod:`repro.sim.links` are static per pair.  Real
experiments also need *scheduled changes* — a partition that opens at t₁
and heals at t₂, a link that degrades mid-run.  :class:`NetworkController`
wraps every link in a switchable shim and provides declarative operations:

* :meth:`partition` / :meth:`heal` — split the process set into groups with
  no communication across groups (messages are dropped, as on dead links);
* :meth:`isolate` — single-process partition;
* :meth:`degrade` / :meth:`restore` — temporarily replace a link's delay
  behaviour.

Partitions violate the paper's link-reliability assumption while active, so
eventual properties are only guaranteed once healed — which is exactly what
the partition tests demonstrate.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .links import Link
from .message import Message
from .world import World

__all__ = ["NetworkController"]


class _SwitchableLink(Link):
    """A link shim that can be cut or rerouted at runtime."""

    def __init__(self, inner: Link) -> None:
        self.inner = inner
        self.override: Optional[Link] = None
        self.cut = False

    def plan(self, msg: Message, now: Time, rng: random.Random):
        if self.cut:
            return None
        active = self.override if self.override is not None else self.inner
        return active.plan(msg, now, rng)


class NetworkController:
    """Runtime switchboard over a world's directed links."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._shims: Dict[Tuple[ProcessId, ProcessId], _SwitchableLink] = {}
        for src in world.pids:
            for dst in world.pids:
                if src == dst:
                    continue
                shim = _SwitchableLink(world.network.link(src, dst))
                world.network.set_link(src, dst, shim)
                self._shims[(src, dst)] = shim
        self._partition_groups: Optional[List[frozenset]] = None

    # ------------------------------------------------------------ partitions
    def partition(self, *groups: Iterable[ProcessId]) -> None:
        """Cut every link between different *groups* (now).

        Processes not named in any group form an implicit final group.
        """
        named = [frozenset(g) for g in groups]
        seen = frozenset().union(*named) if named else frozenset()
        for pid in seen:
            if pid not in range(self.world.n):
                raise ConfigurationError(f"unknown pid {pid}")
        rest = frozenset(self.world.pids) - seen
        all_groups = named + ([rest] if rest else [])
        membership = {}
        for idx, group in enumerate(all_groups):
            for pid in group:
                if pid in membership:
                    raise ConfigurationError(f"pid {pid} in two groups")
                membership[pid] = idx
        for (src, dst), shim in self._shims.items():
            shim.cut = membership[src] != membership[dst]
        self._partition_groups = all_groups
        self.world.trace.record(
            self.world.now, "partition", None,
            groups=[sorted(g) for g in all_groups],
        )

    def isolate(self, pid: ProcessId) -> None:
        """Partition *pid* away from everyone else."""
        self.partition([pid])

    def heal(self) -> None:
        """Remove any active partition (all links carry traffic again)."""
        for shim in self._shims.values():
            shim.cut = False
        self._partition_groups = None
        self.world.trace.record(self.world.now, "heal", None)

    @property
    def partitioned(self) -> bool:
        """True while a partition is in force."""
        return self._partition_groups is not None

    # ------------------------------------------------------------ scheduling
    def partition_between(
        self, start: Time, end: Time, *groups: Iterable[ProcessId]
    ) -> None:
        """Schedule a partition for the window ``[start, end)``."""
        frozen = [list(g) for g in groups]
        self.world.scheduler.schedule_at(
            start, lambda: self.partition(*frozen)
        )
        self.world.scheduler.schedule_at(end, self.heal)

    # ----------------------------------------------------------- degradation
    def degrade(self, src: ProcessId, dst: ProcessId, link: Link) -> None:
        """Replace the behaviour of ``src -> dst`` with *link* (until
        :meth:`restore`)."""
        self._shims[(src, dst)].override = link

    def restore(self, src: ProcessId, dst: ProcessId) -> None:
        """Undo :meth:`degrade` for ``src -> dst``."""
        self._shims[(src, dst)].override = None

    def degrade_between(
        self, start: Time, end: Time, src: ProcessId, dst: ProcessId,
        link: Link,
    ) -> None:
        """Schedule a degradation window for one directed link."""
        self.world.scheduler.schedule_at(
            start, lambda: self.degrade(src, dst, link)
        )
        self.world.scheduler.schedule_at(
            end, lambda: self.restore(src, dst)
        )
