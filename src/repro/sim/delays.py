"""Message-delay models.

A :class:`DelayModel` maps ``(rng, now)`` to a non-negative delay.  Link
models (:mod:`repro.sim.links`) compose a delay model with a loss model.

All models draw exclusively from the :class:`random.Random` instance they are
handed, so delays are reproducible under the master seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigurationError
from ..types import Time

__all__ = [
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "ExponentialDelay",
    "SpikeDelay",
]


class DelayModel(ABC):
    """Strategy object producing per-message transmission delays."""

    @abstractmethod
    def sample(self, rng: random.Random, now: Time) -> Time:
        """Return a delay (``>= 0``) for a message sent at time *now*."""

    @property
    @abstractmethod
    def max_delay(self) -> float:
        """An upper bound on any delay this model can produce
        (``math.inf`` if unbounded)."""


class FixedDelay(DelayModel):
    """Every message takes exactly *delay* time units."""

    def __init__(self, delay: Time) -> None:
        if delay < 0:
            raise ConfigurationError(f"negative delay {delay}")
        self.delay = delay

    def sample(self, rng: random.Random, now: Time) -> Time:
        return self.delay

    @property
    def max_delay(self) -> float:
        return self.delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedDelay({self.delay})"


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: Time, high: Time) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError(f"invalid uniform range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, now: Time) -> Time:
        return rng.uniform(self.low, self.high)

    @property
    def max_delay(self) -> float:
        return self.high

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformDelay({self.low}, {self.high})"


class ExponentialDelay(DelayModel):
    """``base`` plus an exponential tail with the given *mean*; optionally
    truncated at *cap* to keep a finite :attr:`max_delay`."""

    def __init__(self, base: Time, mean: Time, cap: float = float("inf")) -> None:
        if base < 0 or mean <= 0:
            raise ConfigurationError("base must be >= 0 and mean > 0")
        self.base = base
        self.mean = mean
        self.cap = cap

    def sample(self, rng: random.Random, now: Time) -> Time:
        return min(self.base + rng.expovariate(1.0 / self.mean), self.cap)

    @property
    def max_delay(self) -> float:
        return self.cap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialDelay(base={self.base}, mean={self.mean}, cap={self.cap})"


class SpikeDelay(DelayModel):
    """Mostly-fast delays with occasional large spikes.

    With probability *spike_prob* a message takes a delay drawn uniformly
    from ``[spike_low, spike_high]``; otherwise it uses the *base* model.
    Used to model asynchrony bursts before GST in partial-synchrony scenarios.
    """

    def __init__(
        self,
        base: DelayModel,
        spike_prob: float,
        spike_low: Time,
        spike_high: Time,
    ) -> None:
        if not 0 <= spike_prob <= 1:
            raise ConfigurationError(f"spike_prob {spike_prob} outside [0, 1]")
        if not 0 <= spike_low <= spike_high:
            raise ConfigurationError("invalid spike range")
        self.base = base
        self.spike_prob = spike_prob
        self.spike_low = spike_low
        self.spike_high = spike_high

    def sample(self, rng: random.Random, now: Time) -> Time:
        if rng.random() < self.spike_prob:
            return rng.uniform(self.spike_low, self.spike_high)
        return self.base.sample(rng, now)

    @property
    def max_delay(self) -> float:
        return max(self.base.max_delay, self.spike_high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpikeDelay({self.base!r}, p={self.spike_prob}, "
            f"[{self.spike_low}, {self.spike_high}])"
        )
