"""The :class:`World`: scheduler + network + processes + trace, wired together.

Typical usage::

    world = World(n=5, seed=42)
    for pid in world.pids:
        fd = world.attach(pid, OracleEventuallyConsistent(...))
        world.attach(pid, ECConsensus(fd=fd))
    world.start()
    world.run(until=500.0)

Everything in a world is deterministic given ``(topology, seed)``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import MemorySink, TraceSink
from ..types import ProcessId, Time, validate_pid
from .component import Component
from .links import Link
from .message import Message
from .network import Network
from .process import Process
from .rng import RandomSource
from .scheduler import Scheduler

__all__ = ["World"]


class World:
    """A complete simulated distributed system of *n* processes."""

    def __init__(
        self,
        n: int,
        seed: int = 0,
        default_link: Optional[Link] = None,
        trace_kinds: Optional[Iterable[str]] = None,
        trace_enabled: bool = True,
        trace: Optional[TraceSink] = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if trace is not None and trace_kinds is not None:
            raise ConfigurationError(
                "pass either a ready trace sink or trace_kinds, not both "
                "(apply the kind filter when constructing the sink)"
            )
        self.n = n
        self.scheduler = Scheduler()
        self.rng = RandomSource(seed)
        #: Any :class:`repro.obs.TraceSink`; defaults to the queryable
        #: in-memory log.  Pass e.g. a ``JsonlSink`` (or a ``TeeSink`` of
        #: both) to stream events out of the simulation as they happen.
        self.trace: TraceSink = (
            trace if trace is not None
            else MemorySink(kinds=trace_kinds, enabled=trace_enabled)
        )
        #: Per-world metric store (see :mod:`repro.obs.metrics`); components
        #: reach it as ``self.metrics``, the substrate increments the
        #: message/byte counters, and a :class:`~repro.obs.MetricsReporter`
        #: component periodically dumps it into the trace.
        self.metrics = MetricsRegistry()
        #: Callables run right before each metrics snapshot (live hosts
        #: register a transport-counter sampler here; empty in the sim).
        self.metrics_samplers: List[Callable[[MetricsRegistry], None]] = []
        self.network = Network(
            n=n,
            scheduler=self.scheduler,
            trace=self.trace,
            rng=self.rng.stream("network"),
            default_link=default_link,
            metrics=self.metrics,
        )
        self.network.set_deliver(self._deliver)
        self.processes: List[Process] = [Process(pid, self) for pid in range(n)]
        self._started = False
        #: Bumped on every crash; cheap change-detection for components
        #: whose state depends only on the failure pattern (oracles).
        self.crash_epoch = 0

    # -------------------------------------------------------------- basics
    @property
    def pids(self) -> range:
        """All process ids, ``0 .. n-1``."""
        return range(self.n)

    @property
    def now(self) -> Time:
        """Current simulated time."""
        return self.scheduler.now

    @property
    def majority(self) -> int:
        """Size of a strict majority quorum, ``floor(n/2) + 1``."""
        return self.n // 2 + 1

    def process(self, pid: ProcessId) -> Process:
        """The process object for *pid*."""
        return self.processes[validate_pid(pid, self.n)]

    # -------------------------------------------------------------- wiring
    def attach(self, pid: ProcessId, component: Component) -> Component:
        """Attach *component* to process *pid*; returns the component."""
        return self.process(pid).attach(component)

    def attach_all(
        self, factory: Callable[[ProcessId], Component]
    ) -> List[Component]:
        """Attach ``factory(pid)`` to every process; returns the components
        in pid order."""
        return [self.attach(pid, factory(pid)) for pid in self.pids]

    def component(self, pid: ProcessId, channel: str) -> Component:
        """Look up the component on *channel* at process *pid*."""
        return self.process(pid).component(channel)

    # ----------------------------------------------------------- life cycle
    def start(self) -> None:
        """Start every process (calls each component's ``on_start``)."""
        if self._started:
            raise ConfigurationError("world already started")
        self._started = True
        for process in self.processes:
            process.start()

    def run(
        self, until: Optional[Time] = None, max_events: Optional[int] = None
    ) -> int:
        """Run the event loop (auto-starting if needed).  See
        :meth:`repro.sim.scheduler.Scheduler.run`."""
        if not self._started:
            self.start()
        return self.scheduler.run(until=until, max_events=max_events)

    # -------------------------------------------------------------- crashes
    def crash(self, pid: ProcessId) -> None:
        """Crash *pid* right now."""
        self.process(pid).crash()

    def schedule_crash(self, pid: ProcessId, time: Time) -> None:
        """Crash *pid* at absolute simulated *time*."""
        validate_pid(pid, self.n)
        self.scheduler.schedule_at(time, self.crash, pid)

    @property
    def correct_pids(self) -> frozenset[ProcessId]:
        """Processes that have not crashed (so far)."""
        return frozenset(p.pid for p in self.processes if not p.crashed)

    @property
    def crashed_pids(self) -> frozenset[ProcessId]:
        """Processes that have crashed (so far)."""
        return frozenset(p.pid for p in self.processes if p.crashed)

    # ------------------------------------------------------------- internals
    def _deliver(self, msg: Message) -> None:
        self.processes[msg.dst].deliver(msg)
