"""Command-line interface: ``python -m repro <command>``.

Commands:

``demo``
    A narrated end-to-end run: ◇C stack, consensus, a leader crash, and
    ASCII timelines of leadership and rounds.
``consensus``
    Run one consensus algorithm under configurable adversity and print the
    outcome, properties, and round timeline.
``compare-fd``
    The E3/E8 side-by-side: message cost and detection latency of every
    detector construction.
``validate``
    A randomized correctness battery (E9 style) over all algorithms.
``experiments``
    List the reproduced experiments and the benchmark regenerating each.
``report``
    Print every stored experiment table in one document.
``cluster``
    The live-runtime demo: host the unchanged ◇C + ◇C→◇P + consensus stack
    on real asyncio transports (loopback/UDP/TCP on localhost), kill the
    elected leader mid-run, reach a decision anyway, and print the same
    trace-derived timelines, property checks, and QoS tables the simulator
    commands print.  With ``--duration`` (and optional ``--crash PID:TIME``)
    it runs a fully scripted scenario through the unified cluster API
    instead.
``node``
    Run exactly ONE node of a multi-process cluster in this process,
    configured from a static JSON address book (:mod:`repro.proc`).  This
    is the entrypoint :class:`~repro.proc.ProcessCluster` spawns per pid;
    for multi-machine runs, start it once per box by hand.
``proc``
    Manage multi-process clusters.  ``proc run`` spawns one ``repro node``
    subprocess per pid, delivers scheduled ``kill -9`` crashes, waits for
    quiescence, merges the shipped JSONL traces, and prints the property
    verdicts — the paper's crash-stop model enforced by the OS.
``scenario``
    Declarative fault schedules (:mod:`repro.scenario`): ``gen`` compiles
    a seeded randomized nemesis schedule to canonical JSON (same seed ⇒
    byte-identical document), ``run`` plays one against a deterministic
    virtual-clock cluster, a wall-clock in-process cluster, or a real
    multi-process cluster — same events, same ``ClusterAPI`` verbs — and
    judges the run (verdicts + QoS).  ``cluster``, ``proc run``, and
    ``load`` accept ``--scenario FILE`` to arm the same schedules.
``watch``
    Live telemetry (:mod:`repro.obs.live`): bind a trace collector,
    ingest the streams nodes ship with ``--ship-to``, refresh an online
    QoS status table (leader, suspicions, message cost vs the 2(n-1)
    bound), and exit non-zero if the final QoS report violates the
    bound.  ``--proc N`` self-hosts a process cluster to watch.
``trace``
    Operate on shipped JSONL trace files (:mod:`repro.obs`): merge
    per-node files onto one time base, print stats, validate events
    against the schema registry, print the schema table — and analyze
    per-command causal spans (``repro trace spans``).
``lint``
    The static analyzer (:mod:`repro.lint`): determinism rules for the
    simulator-path packages, asyncio-hazard rules for the live runtime,
    and payload-encodability checks against the wire codec.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    channel_message_count,
    check_consensus,
    detection_latency,
    extract_outcome,
    leader_timeline,
    round_timeline,
)
from .broadcast import ReliableBroadcast
from .consensus import ALGORITHMS, attach_consensus, propose_all
from .fd import (
    EVENTUALLY_CONSISTENT,
    HeartbeatEventuallyPerfect,
    LeaderBasedOmega,
    OracleConfig,
    OracleFailureDetector,
    RingDetector,
    attach_ec_stack,
)
from .sim import World, crash_at
from .transform import CToPTransformation
from .workloads import consensus_run, partially_synchronous_link, wan_link

__all__ = ["main"]

_EXPERIMENTS = [
    ("E1", "detector class properties (Fig. 1 / Def. 1)",
     "bench_e1_class_properties.py"),
    ("E2", "<>C -> <>P transformation, Theorem 1", "bench_e2_transformation.py"),
    ("E3", "periodic FD message cost (Sec. 4)", "bench_e3_fd_message_cost.py"),
    ("E4", "phases per round (Sec. 5.4)", "bench_e4_phases_per_round.py"),
    ("E5", "messages per round (Sec. 5.4)", "bench_e5_messages_per_round.py"),
    ("E6", "rounds after stabilization (Thm. 3)",
     "bench_e6_rounds_after_stability.py"),
    ("E7", "deciding despite nacks (Sec. 5.4)", "bench_e7_nack_tolerance.py"),
    ("E8", "crash-detection latency (Sec. 4)", "bench_e8_detection_latency.py"),
    ("E9", "consensus correctness battery (Thm. 2)",
     "bench_e9_consensus_validation.py"),
    ("E10", "end-to-end full message-passing stack",
     "bench_e10_end_to_end.py"),
    ("A1", "merged Phase 0/1 ablation", "bench_a1_merged_phase01.py"),
    ("A2", "accuracy ablation <>S vs Omega", "bench_a2_accuracy_ablation.py"),
    ("A3", "adaptive timeout ablation", "bench_a3_adaptive_timeouts.py"),
    ("A4", "leader stability ablation", "bench_a4_leader_stability.py"),
    ("N1", "live runtime across transports (repro.net)",
     "bench_n1_live_transports.py"),
    ("N2", "live QoS: E3/E8 on the real runtime vs simulator",
     "bench_n2_live_qos.py"),
    ("N3", "replicated KV service throughput (repro.svc)",
     "bench_n3_throughput.py"),
]


def _cmd_demo(args: argparse.Namespace) -> int:
    world = World(n=args.n, seed=args.seed,
                  default_link=partially_synchronous_link(gst=40.0))
    detectors = attach_ec_stack(world, suspects="ring", initial_timeout=10.0)
    protocols = []
    for pid in world.pids:
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        from .consensus import ECConsensus
        protocols.append(world.attach(pid, ECConsensus(detectors[pid], rb)))
    world.start()
    propose_all(protocols)
    world.schedule_crash(0, 120.0)
    world.run(until=1500.0)
    print(leader_timeline(world.trace, channel="fd", width=64, end=400.0))
    print()
    print(round_timeline(world.trace, "ec", width=64, end=400.0))
    print()
    for protocol in protocols:
        state = (f"decided {protocol.decision!r} (round "
                 f"{protocol.decision_round})" if protocol.decided
                 else "crashed undecided")
        print(f"  p{protocol.pid}: {state}")
    outcome = extract_outcome(world.trace, "ec")
    print("properties:", check_consensus(outcome, world.correct_pids))
    return 0


def _cmd_consensus(args: argparse.Namespace) -> int:
    crashes = crash_at(*(
        (int(spec.split(":")[0]), float(spec.split(":")[1]))
        for spec in args.crash
    )) if args.crash else None
    run = consensus_run(
        args.algo,
        n=args.n,
        seed=args.seed,
        stabilize_time=args.stabilize,
        pre_behavior="erratic" if args.stabilize else "ideal",
        crashes=crashes,
        link=wan_link() if args.wan else None,
    ).run(until=args.until)
    print(round_timeline(run.world.trace, args.algo, width=64))
    print()
    outcome = extract_outcome(run.world.trace, args.algo)
    for pid in sorted(outcome.decisions):
        print(f"  p{pid}: decided {outcome.decisions[pid]!r} in round "
              f"{outcome.decision_rounds[pid]} "
              f"at t={outcome.decision_times[pid]:.1f}")
    results = check_consensus(outcome, run.world.correct_pids)
    print("properties:", results)
    return 0 if all(results.values()) and run.decided else 1


def _cmd_compare_fd(args: argparse.Namespace) -> int:
    n, period = args.n, 5.0
    crash_time, end, window = 150.0, 2500.0, 1200.0

    def measure(attach):
        world = World(n=n, seed=args.seed,
                      default_link=partially_synchronous_link(gst=50.0))
        channel = attach(world)
        victim = n // 2
        world.schedule_crash(victim, crash_time)
        world.run(until=end)
        msgs = channel_message_count(world.trace, channel, after=window)
        per_period = msgs / ((end - window) / period)
        latency = detection_latency(world.trace, victim, crash_time,
                                    world.correct_pids, channel=channel)
        return per_period, latency

    def fig2(world):
        for pid in world.pids:
            src = world.attach(pid, OracleFailureDetector(
                EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal"),
                channel="fd.c"))
            world.attach(pid, CToPTransformation(
                src, send_period=period, alive_period=period, channel="fdp"))
        return "fdp"

    rows = [
        ("all-to-all <>P", lambda w: (w.attach_all(
            lambda pid: HeartbeatEventuallyPerfect(period=period)), "fd")[1]),
        ("ring <>S/<>P", lambda w: (w.attach_all(
            lambda pid: RingDetector(period=period)), "fd")[1]),
        ("leader-based Omega", lambda w: (w.attach_all(
            lambda pid: LeaderBasedOmega(period=period)), "fd")[1]),
        ("<>C -> <>P (Fig. 2)", fig2),
    ]
    print(f"{'detector':24s} {'msgs/period':>12s} {'latency':>9s}")
    for name, attach in rows:
        per_period, latency = measure(attach)
        lat = f"{latency:.1f}" if latency is not None else "n/a"
        print(f"{name:24s} {per_period:12.1f} {lat:>9s}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import random

    from .sim.failures import CrashEvent, CrashSchedule

    failures = 0
    for algo in ALGORITHMS:
        for seed in range(args.runs):
            rng = random.Random(seed * 31 + 7)
            n = rng.choice([3, 5, 7])
            victims = rng.sample(range(n), rng.randint(0, (n - 1) // 2))
            crashes = CrashSchedule(
                CrashEvent(pid, rng.uniform(0, 150)) for pid in victims
            )
            run = consensus_run(
                algo, n=n, seed=seed,
                stabilize_time=rng.choice([0.0, 100.0]),
                pre_behavior="erratic",
                crashes=crashes, link=wan_link(),
            ).run(until=8000.0)
            outcome = extract_outcome(run.world.trace, algo)
            results = check_consensus(outcome, run.world.correct_pids)
            ok = all(results.values()) and run.decided
            if not ok:
                failures += 1
                print(f"FAIL {algo} seed={seed}: {results}")
        print(f"{algo}: {args.runs} runs checked")
    print("all good" if failures == 0 else f"{failures} failures")
    return 0 if failures == 0 else 1


def _parse_crash_specs(specs) -> list:
    """Parse repeated ``--crash PID:TIME`` flags into (pid, time) pairs."""
    from .errors import ConfigurationError

    crashes = []
    for spec in specs:
        try:
            pid_text, time_text = spec.split(":", 1)
            crashes.append((int(pid_text), float(time_text)))
        except ValueError:
            raise ConfigurationError(
                f"bad --crash spec {spec!r}; expected PID:TIME, e.g. 0:2.5"
            )
    return crashes


def _parse_degrade_specs(specs) -> list:
    """Parse repeated ``--degrade SRC:DST:LOSS[:DELAY]`` flags into
    ``(src, dst, loss, delay)`` tuples (``delay`` may be ``None``)."""
    from .errors import ConfigurationError

    links = []
    for spec in specs:
        parts = spec.split(":")
        try:
            if len(parts) not in (3, 4):
                raise ValueError(spec)
            src, dst = int(parts[0]), int(parts[1])
            loss = float(parts[2])
            delay = float(parts[3]) if len(parts) == 4 else None
        except ValueError:
            raise ConfigurationError(
                f"bad --degrade spec {spec!r}; expected SRC:DST:LOSS[:DELAY]"
                ", e.g. 0:1:0.3 or 0:1:0.3:0.02"
            )
        if not 0.0 <= loss <= 1.0:
            raise ConfigurationError(
                f"--degrade loss {loss} outside [0, 1] (spec {spec!r})"
            )
        if delay is not None and delay < 0:
            raise ConfigurationError(
                f"--degrade delay {delay} must be >= 0 (spec {spec!r})"
            )
        links.append((src, dst, loss, delay))
    return links


def _load_cli_scenario(args):
    """Load the ``--scenario FILE`` document, when the flag is present."""
    path = getattr(args, "scenario", None)
    if path is None:
        return None
    from .scenario import Scenario

    return Scenario.load(path)


def _scenario_defaults(args, scenario, nodes_default: int,
                       period_default: float) -> None:
    """Resolve ``--nodes`` / ``--period``: explicit flag beats the scenario
    document, which beats the subcommand default.  A scenario is a
    self-contained run spec, so ``repro cluster --scenario f.json`` picks
    up the cluster size and heartbeat period it was generated for."""
    if args.nodes is None:
        args.nodes = (scenario.n if scenario is not None
                      and scenario.n is not None else nodes_default)
    if args.period is None:
        args.period = (scenario.period if scenario is not None
                       and scenario.period is not None else period_default)


def _apply_cli_faults(cluster, args, scenario=None) -> None:
    """Arm every CLI-requested fault through the ClusterAPI verbs.

    Called right after construction, before ``start()`` — the verbs queue
    and flush onto the cluster clock at start, exactly like scripted
    crashes.  One code path for both substrates: ``--loss`` is a storm
    from time zero, each ``--degrade`` an asymmetric link override, and
    ``--scenario`` the full compiled schedule.
    """
    loss = getattr(args, "loss", 0.0)
    if loss and loss > 0.0:
        cluster.storm(loss)
    for src, dst, loss, delay in _parse_degrade_specs(
            getattr(args, "degrade", [])):
        cluster.degrade(src, dst, loss=loss, delay=delay)
    if scenario is not None:
        from .scenario import apply_scenario

        apply_scenario(cluster, scenario)


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from .errors import ConfigurationError
    from .net import LocalCluster, attach_standard_stack, default_codec

    try:
        codec = default_codec(
            prefer=None if args.codec == "auto" else args.codec)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scenario = _load_cli_scenario(args)
    _scenario_defaults(args, scenario, nodes_default=5, period_default=0.05)

    if args.virtual:
        if scenario is not None:
            print("error: --scenario with --virtual is spelled "
                  "`repro scenario run --runtime virtual` (the scenario "
                  "document carries the run parameters)", file=sys.stderr)
            return 2
        return _cluster_virtual(args, codec)
    if scenario is not None or args.duration is not None or args.crash:
        return _cluster_scripted(args, codec, scenario)
    if args.stack == "rsm":
        print("error: --stack rsm needs a scripted run (--duration and/or "
              "--crash) or --virtual; the adaptive kill-the-leader flow "
              "drives one-shot consensus", file=sys.stderr)
        return 2

    period = args.period
    cluster = LocalCluster(
        n=args.nodes, transport=args.transport, seed=args.seed,
        codec=codec, trace_out=args.trace_out, ship_to=args.ship_to,
    )
    _apply_cli_faults(cluster, args)
    stacks = attach_standard_stack(
        cluster, suspects=args.stack, period=period,
        initial_timeout=2.4 * period, timeout_increment=period,
        metrics_interval=args.metrics_interval,
    )
    detectors, protocols = stacks["fd"], stacks["consensus"]

    def agreed_leader():
        alive = [d for d in detectors if not d.crashed]
        trusted = {d.trusted() for d in alive}
        if len(trusted) != 1:
            return None
        leader = next(iter(trusted))
        if leader is None or cluster.hosts[leader].crashed:
            return None
        return leader

    async def drive():
        await cluster.start()
        converged = await cluster.run_until(
            lambda: agreed_leader() is not None, timeout=args.timeout)
        if not converged:
            await cluster.stop()
            return None
        await cluster.run(4 * period)  # let announcements settle
        leader = agreed_leader()
        if leader is None:  # rare: flapped during settling; take any trusted
            leader = next(d.trusted() for d in detectors if not d.crashed)
        crash_time = cluster.now
        cluster.kill(leader)
        for p in protocols:
            if not p.crashed:
                p.propose(f"value-from-p{p.pid}")
        decided = await cluster.run_until(
            lambda: all(p.decided for p in protocols if not p.crashed),
            timeout=args.timeout,
        )
        await cluster.run(2 * period)  # flush trailing frames into the trace
        await cluster.stop()
        return leader, crash_time, decided

    result = asyncio.run(drive())
    if result is None:
        print("error: detectors never converged on a live leader",
              file=sys.stderr)
        return 1
    leader, crash_time, decided = result
    return _cluster_report(args, cluster, protocols, leader, crash_time,
                           decided)


def _cluster_virtual(args: argparse.Namespace, codec) -> int:
    """Deterministic variant: virtual clock over loopback, sim-scale times."""
    from .errors import ConfigurationError
    from .net import LocalCluster

    if args.transport != "loopback":
        print("error: --virtual requires --transport loopback",
              file=sys.stderr)
        return 2
    cluster = LocalCluster(
        n=args.nodes, transport="loopback", clock="virtual",
        seed=args.seed, codec=codec,
        trace_out=args.trace_out, ship_to=args.ship_to,
    )
    _apply_cli_faults(cluster, args)
    leader, crash_time = 0, 60.0  # leaders start at p0 deterministically
    stacks = cluster.deploy_standard_stack(
        stack=args.stack,
        period=5.0, initial_timeout=12.0, timeout_increment=5.0,
        propose_after=crash_time + 1.0,
        metrics_interval=args.metrics_interval,
        max_batch=args.max_batch, pipeline_depth=args.pipeline_depth,
    )
    cluster.schedule_kill(leader, crash_time)
    cluster.run_virtual(until=4000.0)
    cluster.close_traces()  # virtual mode has no stop(); flush JSONL now
    if args.stack == "rsm":
        return _cluster_report_rsm(args, cluster, stacks["rsm"],
                                   leader, crash_time)
    protocols = stacks["consensus"]
    decided = all(p.decided for p in protocols if not p.crashed)
    return _cluster_report(args, cluster, protocols, leader, crash_time,
                           decided)


def _cluster_scripted(args: argparse.Namespace, codec,
                      scenario=None) -> int:
    """Scripted scenario through the unified ClusterAPI: crash schedule
    from ``--crash``, faults from ``--loss`` / ``--degrade`` /
    ``--scenario``, fixed ``--duration``, survivors propose after the
    last fault."""
    import asyncio

    from .net import LocalCluster

    crashes = _parse_crash_specs(args.crash)
    period = args.period
    last_crash = max((at for _, at in crashes), default=0.0)
    last_fault = last_crash
    duration = args.duration
    if scenario is not None:
        last_fault = max(last_fault, scenario.fault_end)
        if duration is None:
            duration = scenario.duration
    if duration is None:
        # No declared duration: leave room after the last fault for
        # re-election and a decision.
        duration = last_fault + args.timeout
    if scenario is not None and scenario.propose_after is not None:
        propose_after = scenario.propose_after
    else:
        propose_after = last_fault + 4 * period
    cluster = LocalCluster(
        n=args.nodes, transport=args.transport, seed=args.seed,
        codec=codec, trace_out=args.trace_out,
        duration=duration, ship_to=args.ship_to,
    )
    stacks = cluster.deploy_standard_stack(
        stack=args.stack, period=period, propose_after=propose_after,
        metrics_interval=args.metrics_interval,
        max_batch=args.max_batch, pipeline_depth=args.pipeline_depth,
    )
    for pid, at in crashes:
        cluster.crash(pid, at=at)
    _apply_cli_faults(cluster, args, scenario)

    async def drive():
        await cluster.start()
        await cluster.wait_quiescent()
        await cluster.stop()

    asyncio.run(drive())
    leader, crash_time = (crashes[0] if crashes else (None, None))
    if args.stack == "rsm":
        return _cluster_report_rsm(args, cluster, stacks["rsm"],
                                   leader, crash_time)
    protocols = stacks["consensus"]
    decided = all(p.decided for p in protocols if not p.crashed)
    return _cluster_report(args, cluster, protocols, leader, crash_time,
                           decided)


def _cluster_report(args, cluster, protocols, leader, crash_time,
                    decided) -> int:
    trace = cluster.trace
    end = cluster.now
    mode = "virtual" if cluster.virtual else "wall"
    print(f"live cluster: n={cluster.n} transport={cluster.transport_kind} "
          f"codec={cluster.codec.name} clock={mode}")
    if getattr(args, "trace_out", None):
        print(f"trace shipped to {args.trace_out}")
    if leader is not None:
        print(f"killed leader p{leader} at t={crash_time:.2f}\n")
    else:
        print("no crashes scheduled\n")
    print(leader_timeline(trace, channel="fd", width=64, end=end))
    print()
    print(round_timeline(trace, "ec", width=64, end=end))
    print()
    for p in protocols:
        state = (f"decided {p.decision!r} (round {p.decision_round})"
                 if p.decided else
                 ("killed" if p.crashed else "undecided"))
        print(f"  p{p.pid}: {state}")
    outcome = extract_outcome(trace, "ec")
    results = check_consensus(outcome, cluster.correct_pids)
    print("properties:", results)

    latency = (detection_latency(trace, leader, crash_time,
                                 cluster.correct_pids, channel="fd")
               if leader is not None else None)
    lat = f"{latency:.3f}" if latency is not None else "n/a"
    print(f"\nQoS (trace-derived, same analysis code as the simulator):")
    print(f"  {'crash detection latency':32s} {lat:>10s}")
    for channel in ("fd.omega", "fd.suspects", "fdp", "consensus.rb",
                    "consensus"):
        count = channel_message_count(trace, channel)
        print(f"  {'messages on ' + channel:32s} {count:>10d}")
    frames = sum(h.transport.frames_sent for h in cluster.hosts)
    drops = sum(h.undecodable_frames for h in cluster.hosts)
    print(f"  {'transport frames sent':32s} {frames:>10d}")
    print(f"  {'undecodable frames':32s} {drops:>10d}")
    ok = decided and all(results.values())
    print("\nresult:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def _cluster_report_rsm(args, cluster, rsms, leader, crash_time) -> int:
    """Postmortem for an ``rsm``-stack cluster run: replica log lengths
    and the log-level verdicts instead of one-shot consensus outcomes."""
    from .cluster.api import verdicts_ok

    trace = cluster.trace
    end = cluster.now
    mode = "virtual" if cluster.virtual else "wall"
    print(f"live cluster: n={cluster.n} transport={cluster.transport_kind} "
          f"codec={cluster.codec.name} clock={mode} stack=rsm")
    if getattr(args, "trace_out", None):
        print(f"trace shipped to {args.trace_out}")
    if leader is not None:
        print(f"killed p{leader} at t={crash_time:.2f}\n")
    else:
        print("no crashes scheduled\n")
    print(leader_timeline(trace, channel="fd", width=64, end=end))
    print()
    for rsm in rsms:
        state = ("killed" if rsm.crashed
                 else f"applied {len(rsm.log)} commands "
                      f"(slot {rsm.current_slot})")
        print(f"  p{rsm.pid}: {state}")
    verdicts = cluster.verdicts()
    print("verdicts:")
    for name, result in verdicts.items():
        print(f"  {name:32s} {'ok' if result else 'VIOLATED'}")
    for channel in ("fd.omega", "fd.suspects", "rsm"):
        count = channel_message_count(trace, channel)
        print(f"  {'messages on ' + channel:32s} {count:>10d}")
    ok = verdicts_ok(verdicts)
    print("\nresult:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_node(args: argparse.Namespace) -> int:
    import asyncio

    from .proc import AddressBook, run_node

    book = AddressBook.load(args.book)
    counters = asyncio.run(
        run_node(
            book, args.pid,
            trace_out=args.trace_out, duration=args.duration,
            stats_addr=args.stats_addr, serve_addr=args.serve_addr,
            ship_to=args.ship_to,
        )
    )
    print(f"node {args.pid}: " +
          " ".join(f"{key}={value}" for key, value in counters.items()))
    return 0


def _cmd_proc_run(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster.api import verdicts_ok
    from .proc import ProcessCluster

    scenario = _load_cli_scenario(args)
    _scenario_defaults(args, scenario, nodes_default=3, period_default=0.05)
    crashes = _parse_crash_specs(args.crash)
    duration = args.duration
    if duration is None and scenario is not None:
        duration = scenario.duration
    if duration is None:
        duration = 6.0
    propose_after = args.propose_after
    if propose_after is None:
        propose_after = (scenario.propose_after
                         if scenario is not None
                         and scenario.propose_after is not None else 1.0)
    cluster = ProcessCluster(
        n=args.nodes,
        transport=args.transport,
        stack=args.stack,
        period=args.period,
        duration=duration,
        propose_after=propose_after,
        seed=args.seed,
        codec=args.codec,
        workdir=args.trace_out,
        metrics_interval=args.metrics_interval,
        max_batch=args.max_batch,
        pipeline_depth=args.pipeline_depth,
        ship_to=args.ship_to,
    )
    for pid, at in crashes:
        cluster.crash(pid, at=at)
    _apply_cli_faults(cluster, args, scenario)

    async def drive() -> bool:
        await cluster.start()
        quiescent = await cluster.wait_quiescent()
        await cluster.stop()
        return quiescent

    quiescent = asyncio.run(drive())
    print(f"process cluster: n={cluster.n} transport={cluster.transport} "
          f"stack={cluster.stack} duration={duration}s")
    print(f"workdir: {cluster.workdir}")
    for pid in cluster.pids:
        status = cluster.exit_statuses.get(pid)
        killed = " (killed)" if pid in cluster._killed else ""
        print(f"  node {pid}: exit {status}{killed}")
    if not quiescent:
        print("result: FAILED (nodes still running at timeout)",
              file=sys.stderr)
        return 1
    report = cluster.merge_report()
    print(report.summary())
    verdicts = cluster.verdicts()
    print("verdicts:")
    for name, result in verdicts.items():
        print(f"  {name:32s} {'ok' if result else 'VIOLATED'}")
    if args.merge_out:
        saved = cluster.save_merged(args.merge_out)
        print(f"merged trace (synthetic crash events included) written to "
              f"{saved}")
    ok = verdicts_ok(verdicts)
    print("result:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def _scenario_from_args(args: argparse.Namespace):
    """The scenario a ``repro scenario`` subcommand names: ``--file``
    when given, else the seeded generator over the gen flags."""
    from .scenario import Scenario, generate_scenario

    if getattr(args, "file", None) is not None:
        return Scenario.load(args.file)
    return generate_scenario(
        args.nodes, args.seed, period=args.period, duration=args.duration,
        partitions=args.partitions, stalls=args.stalls, storms=args.storms,
        degrades=args.degrades, skews=args.skews, crashes=args.crashes,
        name=args.name,
    )


def _cmd_scenario_gen(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    text = scenario.to_json()
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out}: {scenario.name!r}, {len(scenario)} events, "
              f"n={scenario.n} duration={scenario.duration}")
    else:
        print(text, end="")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    """Play one scenario end-to-end and judge the run.

    The scenario document is the run spec: cluster size, heartbeat
    period, duration, and proposal time all come from it (with the same
    fallbacks the generator uses when a hand-written document omits
    them).  ``--runtime`` picks the substrate; the events go through the
    identical ClusterAPI verb calls either way.
    """
    import asyncio

    from .analysis.qos import qos_report
    from .errors import ConfigurationError
    from .scenario import run_scenario

    scenario = _scenario_from_args(args)
    n = scenario.n if scenario.n is not None else args.nodes
    period = scenario.period if scenario.period is not None else args.period
    propose_after = (scenario.propose_after
                     if scenario.propose_after is not None
                     else scenario.fault_end + 4.0 * period)
    duration = (scenario.duration if scenario.duration is not None
                else propose_after + 40.0 * period)
    transport = args.transport
    if transport is None:
        transport = "udp" if args.runtime == "proc" else "loopback"

    if args.runtime == "proc":
        from .proc import ProcessCluster

        if transport == "loopback":
            print("error: --runtime proc needs --transport udp or tcp "
                  "(loopback cannot cross process boundaries)",
                  file=sys.stderr)
            return 2
        cluster = ProcessCluster(
            n=n, transport=transport, stack=args.stack, period=period,
            duration=duration, propose_after=propose_after,
            seed=args.cluster_seed, codec=args.codec,
            workdir=args.trace_out, ship_to=args.ship_to,
        )
        result = asyncio.run(run_scenario(cluster, scenario))
        trace = cluster.traces()
        where = f"workdir={cluster.workdir}"
    else:
        from .net import LocalCluster, default_codec

        try:
            codec = default_codec(
                prefer=None if args.codec == "auto" else args.codec)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        virtual = args.runtime == "virtual"
        if virtual and transport != "loopback":
            print("error: --runtime virtual requires --transport loopback",
                  file=sys.stderr)
            return 2
        cluster = LocalCluster(
            n=n, transport=transport,
            clock="virtual" if virtual else "wall",
            seed=args.cluster_seed, codec=codec,
            trace_out=args.trace_out, duration=duration,
            ship_to=args.ship_to,
        )
        cluster.deploy_standard_stack(
            stack=args.stack, period=period, propose_after=propose_after,
        )
        result = asyncio.run(run_scenario(cluster, scenario))
        trace = cluster.trace
        where = "in-process"

    print(f"scenario {scenario.name!r}: {len(scenario)} events, n={n} "
          f"period={period} duration={duration}")
    print(f"runtime: {args.runtime} transport={transport} "
          f"stack={args.stack} {where}")
    if not result["quiescent"]:
        print("warning: cluster was not quiescent at timeout",
              file=sys.stderr)
    print("verdicts:")
    for name, verdict in result["verdicts"].items():
        print(f"  {name:32s} {'ok' if verdict else 'VIOLATED'}")
    report = qos_report(trace, period=period, n=n)
    print()
    print(report.format())
    ok = (result["ok"] and result["quiescent"]
          and report.bound_ok is not False)
    print("\nresult:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "gen":
        return _cmd_scenario_gen(args)
    return _cmd_scenario_run(args)


def _parse_connect(spec: str) -> list:
    """Parse ``HOST:PORT[,HOST:PORT...]`` into ``(host, port)`` pairs."""
    from .errors import ConfigurationError

    addrs = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            host, port_text = part.rsplit(":", 1)
            addrs.append((host or "127.0.0.1", int(port_text)))
        except ValueError:
            raise ConfigurationError(
                f"bad address {part!r}; expected HOST:PORT"
            )
    if not addrs:
        raise ConfigurationError(
            f"no addresses in --connect spec {spec!r}"
        )
    return addrs


def _parse_kv_value(text: str):
    """CLI values arrive as text; decode JSON when it parses, else keep
    the raw string (so ``repro kv put k 7`` stores the int 7 and
    ``repro kv put k hello`` stores the string)."""
    import json

    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _cmd_kv_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .errors import ConfigurationError
    from .net import LocalCluster, default_codec
    from .svc import start_service

    try:
        codec = default_codec(
            prefer=None if args.codec == "auto" else args.codec)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def serve() -> None:
        cluster = LocalCluster(
            n=args.nodes, transport=args.transport, seed=args.seed,
            codec=codec, trace_out=args.trace_out, ship_to=args.ship_to,
        )
        cluster.deploy_standard_stack(
            stack="rsm", period=args.period,
            max_batch=args.max_batch, pipeline_depth=args.pipeline_depth,
        )
        await cluster.start()
        frontends = await start_service(
            cluster, cluster.stacks, listen_host=args.serve_host,
        )
        connect = ",".join(
            f"{f.listen_host}:{f.port}" for f in frontends
        )
        print(f"replicated KV service up: n={cluster.n} "
              f"transport={cluster.transport_kind} period={args.period}")
        for frontend in frontends:
            print(f"  node {frontend.host.pid}: "
                  f"{frontend.listen_host}:{frontend.port}")
        print(f"connect with: repro kv get KEY --connect {connect}")
        try:
            await cluster.run(args.duration)
        finally:
            for frontend in frontends:
                await frontend.close()
            await cluster.stop()

    asyncio.run(serve())
    return 0


def _kv_session_id(args: argparse.Namespace) -> str:
    """The session name for one CLI invocation.

    Must be fresh per invocation by default: every invocation restarts
    its sequence numbers at 0, so a reused name would make the
    replicated session table dedup this run's first command as a retry
    of the previous run's.  ``--client-id`` pins a name deliberately
    (e.g. to demonstrate exactly that dedup).
    """
    import uuid

    if args.client_id is not None:
        return args.client_id
    return f"cli-{uuid.uuid4().hex[:8]}"


def _cmd_kv_op(args: argparse.Namespace) -> int:
    """One-shot ``kv get`` / ``kv put`` against a running service."""
    import asyncio

    from .svc import KVClient, ServiceUnavailable

    addrs = _parse_connect(args.connect)

    async def one() -> dict:
        async with KVClient(
            addrs, client_id=_kv_session_id(args),
            request_timeout=args.timeout,
        ) as client:
            if args.kv_command == "get":
                return await client.get(args.key)
            return await client.put(args.key, _parse_kv_value(args.value))

    try:
        result = asyncio.run(one())
    except (ServiceUnavailable, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result)
    return 0 if result.get("ok") else 1


def _cmd_kv_bench_client(args: argparse.Namespace) -> int:
    """Single-session latency microbench: sequential ops, percentiles."""
    import asyncio
    import time

    from .load import percentile
    from .svc import KVClient, ServiceUnavailable

    addrs = _parse_connect(args.connect)

    async def bench() -> list:
        latencies = []
        async with KVClient(
            addrs, client_id=_kv_session_id(args),
            request_timeout=args.timeout,
        ) as client:
            for i in range(args.ops):
                started = time.monotonic()
                if i % 2:
                    await client.get("bench")
                else:
                    await client.put("bench", i)
                latencies.append(time.monotonic() - started)
        return latencies

    try:
        latencies = asyncio.run(bench())
    except (ServiceUnavailable, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    total = sum(latencies)
    print(f"bench-client: {args.ops} sequential ops in {total:.3f}s "
          f"({args.ops / total:.1f} op/s)")
    for q in (0.5, 0.95, 0.99):
        value = percentile(latencies, q)
        print(f"  p{int(q * 100):<3d} {value * 1e3:9.2f} ms")
    return 0


def _cmd_kv(args: argparse.Namespace) -> int:
    if args.kv_command == "serve":
        return _cmd_kv_serve(args)
    if args.kv_command == "bench-client":
        return _cmd_kv_bench_client(args)
    return _cmd_kv_op(args)


def _cmd_load(args: argparse.Namespace) -> int:
    import asyncio

    from .load import LoadGenerator

    def make_generator(addrs) -> LoadGenerator:
        return LoadGenerator(
            addrs,
            clients=args.clients,
            mode=args.mode,
            duration=args.duration,
            rate=args.rate,
            think=args.think,
            write_fraction=args.write_fraction,
            request_timeout=args.timeout,
            seed=args.seed,
        )

    scenario = _load_cli_scenario(args)
    if args.connect is not None:
        if scenario is not None:
            print("error: --scenario needs a --proc cluster to inject "
                  "faults into (an already-running service is not ours "
                  "to break)", file=sys.stderr)
            return 2
        report = asyncio.run(make_generator(_parse_connect(args.connect)).run())
        print(report.render())
        return 0 if report.acked > 0 else 1

    # --proc N: self-hosted run — spawn an rsm process cluster with serve
    # ports, offer the load, then judge the merged trace like `proc run`.
    from .cluster.api import verdicts_ok
    from .proc import ProcessCluster

    crashes = _parse_crash_specs(args.crash)
    warmup = args.warmup
    # Nodes must outlive warmup + offered load + the slowest straggler
    # command (bounded by the client request timeout).
    node_duration = warmup + args.duration + args.timeout + 2.0
    if scenario is not None:
        # ... and the scenario's fault schedule (times are offsets from
        # cluster start, so the load window overlaps the faults).
        node_duration = max(
            node_duration,
            scenario.fault_end + args.timeout + 2.0,
            scenario.duration if scenario.duration is not None else 0.0,
        )
    cluster = ProcessCluster(
        n=args.proc,
        transport=args.transport if args.transport != "loopback" else "udp",
        stack="rsm",
        period=args.period,
        duration=node_duration,
        seed=args.seed,
        workdir=args.trace_out,
        serve=True,
        max_batch=args.max_batch,
        pipeline_depth=args.pipeline_depth,
    )
    for pid, at in crashes:
        cluster.crash(pid, at=at)
    _apply_cli_faults(cluster, args, scenario)

    async def drive():
        await cluster.start()
        await asyncio.sleep(warmup)
        report = await make_generator(
            list(cluster.serve_addresses.values())
        ).run()
        await cluster.wait_quiescent()
        await cluster.stop()
        return report

    report = asyncio.run(drive())
    print(f"process cluster: n={cluster.n} transport={cluster.transport} "
          f"stack=rsm period={args.period} workdir={cluster.workdir}")
    print(report.render())
    verdicts = cluster.verdicts()
    print("verdicts:")
    for name, result in verdicts.items():
        print(f"  {name:32s} {'ok' if result else 'VIOLATED'}")
    if args.merge_out:
        saved = cluster.save_merged(args.merge_out)
        print(f"merged trace (synthetic crash events included) written to "
              f"{saved}")
    ok = verdicts_ok(verdicts) and report.acked > 0
    print("result:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def _render_live_status(collector, period: Optional[float]) -> str:
    """One refresh of the ``repro watch`` status table."""
    snap = collector.qos.snapshot()
    n = snap["n"]
    crashes = snap["crashes"]
    lines = [
        f"t={snap['end_time']:8.2f}s  events={snap['events']:<7d} "
        f"streams={collector.open_streams} open "
        f"/ {collector.streams_seen} seen "
        f"/ {collector.torn_streams} torn   "
        f"mistakes={snap['open_mistakes']} open "
        f"/ {snap['closed_mistakes']} closed   "
        f"span-replies={snap['span_replies']}",
    ]
    if n:
        lines.append(f"  {'pid':4s} {'state':>10s} {'trusts':>7s}  suspects")
        for pid in range(n):
            state = f"crash@{crashes[pid]:.1f}" if pid in crashes else "up"
            trusted = snap["trusted"].get(pid)
            trusts = "-" if trusted is None else f"p{trusted}"
            suspects = ",".join(
                f"p{q}" for q in snap["suspected"].get(pid, ())
            ) or "-"
            lines.append(f"  p{pid:<3d} {state:>10s} {trusts:>7s}  {suspects}")
    sends = snap["sends"]
    if sends:
        lines.append(
            "  sends: " + "  ".join(f"{ch}={c}" for ch, c in sends.items())
        )
        # Whole-run msgs/period ticker vs the paper's 2(n-1) bound; the
        # shutdown report recomputes this properly (post-settlement window).
        fdp = sends.get("fdp")
        if fdp and period and n > 1 and snap["end_time"] > period:
            rate = fdp / (snap["end_time"] / period)
            lines.append(
                f"  fdp msgs/period (whole run): {rate:.1f}  "
                f"bound 2(n-1) = {2 * (n - 1)}"
            )
    return "\n".join(lines)


def _cmd_watch(args: argparse.Namespace) -> int:
    """Live collector + refreshing status table; QoS verdict at shutdown."""
    import asyncio

    from .obs.live import LiveCollector, parse_ship_address

    if args.connect is not None:
        host, port = parse_ship_address(args.connect)
        collector = LiveCollector(host=host, port=port)
    else:
        collector = LiveCollector()
    duration = args.duration
    if duration is None and args.proc is not None:
        duration = 10.0

    async def refresh_loop() -> None:
        clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
        loop = asyncio.get_running_loop()
        deadline = None if duration is None else loop.time() + duration
        while deadline is None or loop.time() < deadline:
            await asyncio.sleep(args.interval)
            print(f"{clear}{_render_live_status(collector, args.period)}",
                  flush=True)

    async def drive() -> None:
        await collector.bind()
        print(f"collector listening on {collector.address} "
              f"(point --ship-to here)")
        if args.proc is None:
            await refresh_loop()
            await collector.close()
            return
        from .proc import ProcessCluster

        cluster = ProcessCluster(
            n=args.proc, transport=args.transport, stack=args.stack,
            period=args.period, duration=duration, seed=args.seed,
            workdir=args.trace_out, ship_to=collector.address,
        )
        await cluster.start()
        try:
            await refresh_loop()
            await cluster.wait_quiescent()
        finally:
            await cluster.stop()
            await collector.close()

    try:
        asyncio.run(drive())
    except KeyboardInterrupt:
        print()  # ^C ends the watch, not the verdict
    report = collector.qos.report(period=args.period)
    print()
    print(report.format())
    print(f"\nstreams: {collector.streams_seen} seen, "
          f"{collector.torn_streams} torn, "
          f"{collector.events_ingested} events ingested")
    if report.bound_ok is False:
        print("result: FAILED (message cost exceeds the 2(n-1) bound)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import render_report

    print(render_report())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    print("Reproduced experiments (run: pytest benchmarks/ --benchmark-only)")
    for exp_id, description, bench in _EXPERIMENTS:
        print(f"  {exp_id:3s} {description:45s} benchmarks/{bench}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_from_args

    return run_from_args(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.cli import run_from_args

    return run_from_args(args)


def _shared_cluster_options() -> argparse.ArgumentParser:
    """Parent parser for the options every cluster-running subcommand
    shares.

    ``repro cluster`` (in-process) and ``repro proc run`` (one OS process
    per node) must accept identical spellings for the same concepts —
    a CLI test asserts help-text parity, so divergence is a test failure,
    not a review nit.
    """
    shared = argparse.ArgumentParser(add_help=False)
    group = shared.add_argument_group("shared cluster options")
    group.add_argument(
        "--transport", choices=["loopback", "udp", "tcp"], default="udp",
        help="wire transport (process clusters need udp or tcp; loopback "
             "cannot cross process boundaries)")
    group.add_argument(
        "--stack", choices=["ring", "heartbeat", "rsm"], default="ring",
        help="suspect source feeding the <>C combiner, or 'rsm' for the "
             "replicated-state-machine service substrate (slot-by-slot "
             "consensus instead of a single instance)")
    group.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="ship traces as they happen: a directory writes one "
             "node-<pid>.jsonl per node (for `repro cluster` a single "
             "*.jsonl path writes one combined file instead)")
    group.add_argument(
        "--duration", type=float, metavar="SECONDS", default=None,
        help="scripted scenario length in cluster seconds (`repro "
             "cluster` without it runs its adaptive kill-the-leader flow)")
    group.add_argument(
        "--crash", action="append", default=[], metavar="PID:TIME",
        help="schedule a crash-stop kill of PID at cluster time TIME; "
             "repeatable (a real kill -9 for process clusters)")
    group.add_argument(
        "--loss", type=float, default=0.0, metavar="PROB",
        help="uniform message-loss probability on every link for the "
             "whole run (a storm from time zero, via the cluster's "
             "fault surface)")
    group.add_argument(
        "--degrade", action="append", default=[],
        metavar="SRC:DST:LOSS[:DELAY]",
        help="make the directed link SRC->DST lossy (probability LOSS) "
             "and/or slow (DELAY seconds each way); repeatable, "
             "asymmetric — the reverse link is untouched")
    group.add_argument(
        "--scenario", metavar="FILE.json", default=None,
        help="arm a declarative fault schedule (see `repro scenario "
             "gen`); its n/period/duration/propose_after become the "
             "run's defaults")
    group.add_argument(
        "--metrics-interval", type=float, metavar="SECONDS", default=None,
        help="attach a metrics reporter on every node emitting "
             "obs.metrics_snapshot trace events at this interval")
    group.add_argument(
        "--ship-to", metavar="HOST:PORT", default=None,
        help="stream every trace event to a live collector at this "
             "address as the run happens (start one with `repro watch "
             "--connect HOST:PORT`)")
    group.add_argument(
        "--max-batch", type=int, metavar="N", default=64,
        help="most commands one consensus slot may carry on the rsm "
             "stack (1 restores the legacy one-command-per-slot shape)")
    group.add_argument(
        "--pipeline-depth", type=int, metavar="N", default=4,
        help="how many rsm consensus slots may run concurrently "
             "(1 disables pipelining)")
    return shared


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eventually consistent failure detectors — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="narrated end-to-end run")
    demo.add_argument("-n", type=int, default=5)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=_cmd_demo)

    cons = sub.add_parser("consensus", help="run one consensus algorithm")
    cons.add_argument("algo", choices=sorted(ALGORITHMS))
    cons.add_argument("-n", type=int, default=5)
    cons.add_argument("--seed", type=int, default=0)
    cons.add_argument("--stabilize", type=float, default=0.0,
                      help="detector stabilization time (0 = ideal)")
    cons.add_argument("--crash", action="append", default=[],
                      metavar="PID:TIME", help="schedule a crash")
    cons.add_argument("--wan", action="store_true", help="WAN delays")
    cons.add_argument("--until", type=float, default=4000.0)
    cons.set_defaults(func=_cmd_consensus)

    cmp_fd = sub.add_parser("compare-fd", help="detector cost/latency table")
    cmp_fd.add_argument("-n", type=int, default=8)
    cmp_fd.add_argument("--seed", type=int, default=5)
    cmp_fd.set_defaults(func=_cmd_compare_fd)

    val = sub.add_parser("validate", help="randomized correctness battery")
    val.add_argument("--runs", type=int, default=5)
    val.set_defaults(func=_cmd_validate)

    exps = sub.add_parser("experiments", help="list reproduced experiments")
    exps.set_defaults(func=_cmd_experiments)

    rep = sub.add_parser("report", help="print stored experiment tables")
    rep.set_defaults(func=_cmd_report)

    shared = _shared_cluster_options()

    clu = sub.add_parser(
        "cluster",
        parents=[shared],
        help="live asyncio runtime: the same stack over real transports",
    )
    clu.add_argument("--nodes", "-n", type=int, default=None,
                     help="cluster size (default 5, or the --scenario "
                          "document's n)")
    clu.add_argument("--seed", type=int, default=7)
    clu.add_argument("--period", type=float, default=None,
                     help="heartbeat period in wall seconds (default "
                          "0.05, or the --scenario document's period)")
    clu.add_argument("--codec", choices=["auto", "json", "msgpack"],
                     default="auto")
    clu.add_argument("--timeout", type=float, default=30.0,
                     help="wall-clock budget for convergence and decision")
    clu.add_argument("--virtual", action="store_true",
                     help="deterministic virtual-clock run (loopback only)")
    clu.set_defaults(func=_cmd_cluster)

    node = sub.add_parser(
        "node",
        help="run ONE node of a multi-process cluster from an address book",
    )
    node.add_argument("--book", required=True, metavar="BOOK.json",
                      help="static address book (see docs/runtime.md)")
    node.add_argument("--pid", type=int, required=True,
                      help="which pid of the book this process is")
    node.add_argument("--trace-out", metavar="PATH", default=None,
                      help="this node's JSONL trace file "
                           "(e.g. node-<pid>.jsonl)")
    node.add_argument("--duration", type=float, metavar="SECONDS",
                      default=None,
                      help="override the book's run duration")
    node.add_argument("--stats-addr", metavar="HOST:PORT", default=None,
                      help="serve this node's metrics registry over UDP in "
                           "Prometheus text format (HOST:PORT, :PORT or "
                           "PORT; poke it with any datagram)")
    node.add_argument("--serve-addr", metavar="HOST:PORT", default=None,
                      help="bind the KV service frontend for real clients "
                           "at this TCP address (requires the book's stack "
                           "to be 'rsm'; overrides the book's serve_port)")
    node.add_argument("--ship-to", metavar="HOST:PORT", default=None,
                      help="stream this node's trace to a live collector "
                           "at this TCP address (`repro watch --connect`; "
                           "overrides the book's ship_to)")
    node.set_defaults(func=_cmd_node)

    proc = sub.add_parser(
        "proc",
        help="multi-process clusters: spawn nodes, kill -9, judge postmortem",
    )
    proc_sub = proc.add_subparsers(dest="proc_command", required=True)
    prun = proc_sub.add_parser(
        "run",
        parents=[shared],
        help="spawn a cluster of repro-node subprocesses, crash on "
             "schedule, merge traces, check properties",
    )
    prun.add_argument("--nodes", "-n", type=int, default=None,
                      help="cluster size (default 3, or the --scenario "
                           "document's n)")
    prun.add_argument("--seed", type=int, default=7)
    prun.add_argument("--period", type=float, default=None,
                      help="heartbeat period in wall seconds (default "
                           "0.05, or the --scenario document's period)")
    prun.add_argument("--codec", choices=["auto", "json", "msgpack"],
                      default="auto")
    prun.add_argument("--propose-after", type=float, metavar="SECONDS",
                      default=None,
                      help="cluster time at which every surviving node "
                           "proposes its value (default 1.0, or the "
                           "--scenario document's propose_after)")
    prun.add_argument("--merge-out", metavar="OUT.jsonl", default=None,
                      help="also write the merged stream (synthetic crash "
                           "events included) as one combined JSONL file — "
                           "the input `repro trace qos` wants")
    prun.set_defaults(func=_cmd_proc_run)

    kv = sub.add_parser(
        "kv",
        help="replicated KV service: serve a cluster, run client ops",
    )
    kv_sub = kv.add_subparsers(dest="kv_command", required=True)
    kserve = kv_sub.add_parser(
        "serve",
        help="boot an in-process rsm cluster and serve real TCP clients",
    )
    kserve.add_argument("--nodes", "-n", type=int, default=3)
    kserve.add_argument("--transport", choices=["loopback", "udp", "tcp"],
                        default="loopback",
                        help="node-to-node transport (clients always "
                             "connect over TCP)")
    kserve.add_argument("--period", type=float, default=0.05,
                        help="heartbeat period in wall seconds")
    kserve.add_argument("--seed", type=int, default=7)
    kserve.add_argument("--codec", choices=["auto", "json", "msgpack"],
                        default="auto")
    kserve.add_argument("--serve-host", default="127.0.0.1",
                        help="interface the client-facing frontends bind")
    kserve.add_argument("--duration", type=float, metavar="SECONDS",
                        default=60.0, help="how long to serve")
    kserve.add_argument("--trace-out", metavar="PATH", default=None,
                        help="ship the cluster trace (JSONL file or "
                             "directory)")
    kserve.add_argument("--ship-to", metavar="HOST:PORT", default=None,
                        help="stream every trace event to a live collector "
                             "at this address as the run happens (start one "
                             "with `repro watch --connect HOST:PORT`)")
    kserve.add_argument("--max-batch", type=int, metavar="N", default=64,
                        help="most commands one consensus slot may carry "
                             "(1 restores one-command-per-slot)")
    kserve.add_argument("--pipeline-depth", type=int, metavar="N", default=4,
                        help="concurrent consensus slots (1 disables "
                             "pipelining)")
    kserve.set_defaults(func=_cmd_kv)

    def _kv_client_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--connect", required=True,
                       metavar="HOST:PORT[,HOST:PORT...]",
                       help="serve addresses of any subset of replicas")
        p.add_argument("--client-id", default=None,
                       help="pin the session name (the dedup table key); "
                            "default is a fresh name per invocation — a "
                            "reused name with restarting sequence numbers "
                            "would be deduplicated as a retry")
        p.add_argument("--timeout", type=float, default=5.0,
                       help="per-attempt request timeout in seconds")

    kget = kv_sub.add_parser("get", help="read one key (through the log)")
    kget.add_argument("key")
    _kv_client_options(kget)
    kget.set_defaults(func=_cmd_kv)

    kput = kv_sub.add_parser("put", help="write one key (exactly-once)")
    kput.add_argument("key")
    kput.add_argument("value",
                      help="JSON when it parses, raw string otherwise")
    _kv_client_options(kput)
    kput.set_defaults(func=_cmd_kv)

    kbench = kv_sub.add_parser(
        "bench-client",
        help="single-session sequential latency microbench",
    )
    _kv_client_options(kbench)
    kbench.add_argument("--ops", type=int, default=100,
                        help="how many sequential commands to run")
    kbench.set_defaults(func=_cmd_kv)

    load = sub.add_parser(
        "load",
        help="drive open/closed-loop load at a replicated KV service",
    )
    load_target = load.add_mutually_exclusive_group(required=True)
    load_target.add_argument(
        "--connect", metavar="HOST:PORT[,HOST:PORT...]", default=None,
        help="serve addresses of an already-running service")
    load_target.add_argument(
        "--proc", type=int, metavar="N", default=None,
        help="self-hosted: spawn an N-node rsm process cluster with serve "
             "ports, load it, judge the merged trace")
    load.add_argument("--mode", choices=["closed", "open"], default="closed")
    load.add_argument("--clients", type=int, default=10,
                      help="concurrent client sessions (closed) or pool "
                           "size (open)")
    load.add_argument("--rate", type=float, default=None,
                      help="open-loop target command rate per second")
    load.add_argument("--duration", type=float, default=5.0,
                      help="how long to offer load, in wall seconds")
    load.add_argument("--think", type=float, default=0.0,
                      help="closed-loop think time between commands")
    load.add_argument("--write-fraction", type=float, default=0.8,
                      help="fraction of commands that are puts")
    load.add_argument("--timeout", type=float, default=10.0,
                      help="per-attempt client request timeout in seconds")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--transport", choices=["loopback", "udp", "tcp"],
                      default="udp",
                      help="node-to-node transport for --proc clusters")
    load.add_argument("--period", type=float, default=0.05,
                      help="heartbeat period for --proc clusters")
    load.add_argument("--warmup", type=float, default=1.0,
                      help="seconds to let --proc detectors converge "
                           "before offering load")
    load.add_argument("--crash", action="append", default=[],
                      metavar="PID:TIME",
                      help="schedule a kill -9 in a --proc cluster; "
                           "repeatable")
    load.add_argument("--scenario", metavar="FILE.json", default=None,
                      help="arm a declarative fault schedule on a --proc "
                           "cluster (times are offsets from cluster "
                           "start, so faults overlap the load window)")
    load.add_argument("--trace-out", metavar="DIR", default=None,
                      help="workdir for --proc traces and logs")
    load.add_argument("--merge-out", metavar="OUT.jsonl", default=None,
                      help="write the --proc merged trace as one combined "
                           "JSONL file")
    load.add_argument("--max-batch", type=int, metavar="N", default=64,
                      help="most commands one consensus slot may carry in "
                           "--proc clusters (1 restores "
                           "one-command-per-slot)")
    load.add_argument("--pipeline-depth", type=int, metavar="N", default=4,
                      help="concurrent consensus slots in --proc clusters "
                           "(1 disables pipelining)")
    load.set_defaults(func=_cmd_load)

    watch = sub.add_parser(
        "watch",
        help="live telemetry: collect streamed traces, refresh a status "
             "table, judge QoS at shutdown",
    )
    watch_target = watch.add_mutually_exclusive_group(required=True)
    watch_target.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="bind the collector at this address and watch whatever "
             "nodes ship to it (start them with --ship-to HOST:PORT)")
    watch_target.add_argument(
        "--proc", type=int, metavar="N", default=None,
        help="self-hosted: spawn an N-node process cluster shipping to "
             "an in-process collector, watch it end to end")
    watch.add_argument("--duration", type=float, metavar="SECONDS",
                       default=None,
                       help="stop watching after this long (default: "
                            "--proc runs 10s, --connect watches until "
                            "Ctrl-C)")
    watch.add_argument("--interval", type=float, metavar="SECONDS",
                       default=1.0,
                       help="status-table refresh interval")
    watch.add_argument("--period", type=float, default=0.05,
                       help="heartbeat period: scales the QoS message-"
                            "cost window (and --proc clusters)")
    watch.add_argument("--transport", choices=["udp", "tcp"], default="udp",
                       help="node-to-node transport for --proc clusters")
    watch.add_argument("--stack", choices=["ring", "heartbeat", "rsm"],
                       default="ring",
                       help="stack for --proc clusters")
    watch.add_argument("--seed", type=int, default=7)
    watch.add_argument("--trace-out", metavar="DIR", default=None,
                       help="workdir for --proc traces and logs")
    watch.set_defaults(func=_cmd_watch)

    gen_opts = argparse.ArgumentParser(add_help=False)
    gen_group = gen_opts.add_argument_group(
        "generator options (ignored when --file names a document)")
    gen_group.add_argument("--nodes", "-n", type=int, default=3,
                           help="cluster size the schedule targets")
    gen_group.add_argument("--seed", type=int, default=7,
                           help="generator seed: same seed, same counts "
                                "=> byte-identical schedule")
    gen_group.add_argument("--period", type=float, default=0.05,
                           help="heartbeat period the fault windows are "
                                "scaled by, in cluster seconds")
    gen_group.add_argument("--duration", type=float, metavar="SECONDS",
                           default=None,
                           help="override the generated run length "
                                "(must not cut the schedule short)")
    gen_group.add_argument("--partitions", type=int, default=2,
                           help="partition-then-heal windows")
    gen_group.add_argument("--stalls", type=int, default=1,
                           help="stall-then-resume windows (SIGSTOP on "
                                "process clusters)")
    gen_group.add_argument("--storms", type=int, default=1,
                           help="loss-storm-then-calm windows")
    gen_group.add_argument("--degrades", type=int, default=1,
                           help="asymmetric flaky-link windows")
    gen_group.add_argument("--skews", type=int, default=0,
                           help="one-shot clock-skew steps")
    gen_group.add_argument("--crashes", type=int, default=0,
                           help="kill -9 victims (scheduled last; at "
                                "most a minority)")
    gen_group.add_argument("--name", default=None,
                           help="scenario name (default "
                                "nemesis-n<N>-seed<SEED>)")

    scen = sub.add_parser(
        "scenario",
        help="declarative fault schedules: generate one, run one, judge it",
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)
    sgen = scen_sub.add_parser(
        "gen",
        parents=[gen_opts],
        help="compile a seeded randomized nemesis schedule to canonical "
             "JSON (stdout, or --out FILE)",
    )
    sgen.add_argument("--out", metavar="FILE.json", default=None,
                      help="write the document here instead of stdout")
    sgen.set_defaults(func=_cmd_scenario, file=None)
    srun = scen_sub.add_parser(
        "run",
        parents=[gen_opts],
        help="play a scenario on a cluster and judge the run "
             "(verdicts + QoS)",
    )
    srun.add_argument("--file", metavar="FILE.json", default=None,
                      help="run this scenario document instead of "
                           "generating one")
    srun.add_argument("--runtime", choices=["virtual", "local", "proc"],
                      default="virtual",
                      help="substrate: deterministic virtual clock "
                           "in-process, wall clock in-process, or one OS "
                           "process per node — identical ClusterAPI "
                           "verbs either way")
    srun.add_argument("--transport", choices=["loopback", "udp", "tcp"],
                      default=None,
                      help="wire transport (default: loopback in-process, "
                           "udp for --runtime proc)")
    srun.add_argument("--stack", choices=["ring", "heartbeat", "rsm"],
                      default="ring",
                      help="protocol stack under test")
    srun.add_argument("--codec", choices=["auto", "json", "msgpack"],
                      default="auto")
    srun.add_argument("--cluster-seed", type=int, default=7,
                      help="the cluster's own rng seed (fault-plan loss "
                           "streams); the scenario seed only shapes the "
                           "schedule")
    srun.add_argument("--trace-out", metavar="PATH", default=None,
                      help="ship traces (JSONL file or directory; the "
                           "workdir for --runtime proc)")
    srun.add_argument("--ship-to", metavar="HOST:PORT", default=None,
                      help="stream every trace event to a live collector "
                           "at this address (`repro watch --connect`); "
                           "wall or proc runtimes only")
    srun.set_defaults(func=_cmd_scenario)
    scen.set_defaults(func=_cmd_scenario)

    trc = sub.add_parser(
        "trace",
        help="merge / inspect / validate shipped JSONL trace files",
    )
    from .obs.cli import add_trace_arguments

    add_trace_arguments(trc)
    trc.set_defaults(func=_cmd_trace)

    lint = sub.add_parser(
        "lint",
        help="AST determinism & protocol-safety analyzer (repro.lint)",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .errors import ConfigurationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
