""":class:`ProcessCluster` — one OS process per node, ``kill -9`` crashes.

The launcher is the multi-process implementation of the unified
:class:`~repro.cluster.api.ClusterAPI`:

1. **spawn** — :meth:`start` allocates an address book with free ports,
   writes it to the working directory, and spawns one ``python -m repro
   node`` subprocess per pid, each shipping its trace to
   ``node-<pid>.jsonl`` and logging to ``node-<pid>.log``;
2. **crash** — :meth:`crash` delivers ``SIGKILL`` at the scheduled wall
   offset.  Nothing cooperative happens on the victim: no signal handler,
   no flush, no goodbye message — the OS enforces the paper's crash-stop
   model and the launcher remembers the wall time of the kill.  The other
   fault verbs ride the same scheduling machinery: ``stall``/``resume``
   deliver real ``SIGSTOP``/``SIGCONT`` (equally uncooperative), while the
   network verbs (``partition``/``heal``/``isolate``/``degrade``/
   ``restore``/``storm``/``calm``/``skew``) become JSON commands sent to
   each node's :class:`~repro.net.control.FaultControlEndpoint`;
3. **postmortem** — after :meth:`wait_quiescent` and :meth:`stop`,
   :meth:`traces` reads the shipped JSONL files (tolerating a torn final
   line on killed nodes), merges them on a common time base via
   :func:`repro.obs.merge.merge_traces`, and injects a synthetic
   ``crash`` event per kill — victims cannot record their own death, but
   the property checkers need the failure pattern — so
   :meth:`verdicts` judges the run with exactly the code that judges
   in-process clusters.

Restarts are deliberately unsupported: a killed pid stays killed
(crash-stop, not crash-recovery).
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union,
)

from ..errors import ConfigurationError
from ..cluster.api import rsm_verdicts, standard_verdicts
from ..net.control import send_fault_command
from ..obs.events import TraceEvent
from ..obs.merge import MergeReport, merge_traces
from ..obs.reader import TraceFile, iter_trace_events
from ..obs.sinks import MemorySink
from ..types import ProcessId, Time
from .book import AddressBook

__all__ = ["ProcessCluster"]


def _read_trace_lenient(path: Path) -> TraceFile:
    """Read one shipped trace, keeping the intact prefix of a torn file.

    A ``kill -9`` can land mid-write; the sink is line-buffered so at most
    the final line is garbage.  Everything before the first undecodable
    line is kept — for a crash-stop victim that *is* its trace.
    """
    stream = iter_trace_events(path)
    header = next(stream)
    events: List[TraceEvent] = []
    try:
        for event in stream:
            events.append(event)  # type: ignore[arg-type]
    except ConfigurationError:
        pass  # torn trailing line
    return TraceFile(
        events=events,
        node=header.get("node"),
        epoch_wall=float(header.get("epoch_wall", 0.0)),
        epoch_mono=float(header.get("epoch_mono", 0.0)),
        path=path,
        header=header,
    )


class ProcessCluster:
    """*n* ``repro node`` subprocesses under the unified cluster API.

    Parameters mirror :class:`~repro.cluster.local.LocalCluster` where
    they overlap; the rest configure the spawned processes:

    Parameters:
        n / transport / stack / period / seed / codec: forwarded into the
            address book every node reads (UDP or TCP only — loopback
            cannot cross process boundaries).
        duration: how long each node runs before exiting 0.  The whole
            scenario is scripted up front; there is no live orchestration
            channel into a foreign process.
        propose_after: when set, every (surviving) node proposes
            ``value-from-p<pid>`` at that cluster time.
        serve: allocate a client-facing TCP port per node and run the KV
            service frontend there (``stack="rsm"`` only); addresses are
            in :attr:`serve_addresses` after :meth:`start`.
        workdir: where the book, traces, and logs land; a temporary
            directory by default (kept for debugging, path in
            :attr:`workdir`).
        host: listening interface for every node.
        python: interpreter for the subprocesses (default:
            ``sys.executable``).
        ship_to: ``HOST:PORT`` of a live trace collector; when set it
            rides the address book and every node tees its trace into a
            :class:`~repro.obs.live.StreamingSink` shipping there (see
            ``repro watch``).
    """

    def __init__(
        self,
        n: int,
        transport: str = "udp",
        stack: str = "ring",
        period: Time = 0.05,
        duration: Time = 6.0,
        propose_after: Optional[Time] = None,
        initial_timeout: Optional[Time] = None,
        timeout_increment: Optional[Time] = None,
        seed: int = 0,
        codec: str = "auto",
        workdir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        python: Optional[str] = None,
        metrics_interval: Optional[Time] = None,
        serve: bool = False,
        max_batch: int = 64,
        pipeline_depth: int = 4,
        ship_to: Optional[str] = None,
    ) -> None:
        # Validate early (n, transport, stack, codec) by building a
        # node-less book; ports are allocated at start().
        AddressBook(
            n=n, transport=transport, stack=stack, codec=codec,
            max_batch=max_batch, pipeline_depth=pipeline_depth,
        )
        if serve and stack != "rsm":
            raise ConfigurationError(
                "serve=True needs stack='rsm' (the KV frontend submits "
                "into the replicated log)"
            )
        self.serve = serve
        self.n = n
        self.transport = transport
        self.stack = stack
        self.period = period
        self.duration = duration
        self.propose_after = propose_after
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.seed = seed
        self.codec = codec
        self.metrics_interval = metrics_interval
        self.max_batch = max_batch
        self.pipeline_depth = pipeline_depth
        self.ship_to = ship_to
        self.host = host
        self.python = python if python is not None else sys.executable
        self.workdir = Path(
            workdir if workdir is not None
            else tempfile.mkdtemp(prefix="repro-proc-")
        )
        self.book: Optional[AddressBook] = None
        self.procs: Dict[ProcessId, subprocess.Popen] = {}
        self.exit_statuses: Dict[ProcessId, Optional[int]] = {}
        self._logs: Dict[ProcessId, Any] = {}
        self._killed: set = set()
        self._kill_walls: Dict[ProcessId, float] = {}
        self._pending_crashes: List[tuple] = []
        self._crash_timers: List[asyncio.TimerHandle] = []
        # Fault-verb machinery, mirroring the crash machinery: pre-start
        # verbs queue as (at, fire) pairs, live ones arm loop timers.
        self._pending_faults: List[Tuple[Optional[Time], Callable[[], None]]] = []
        self._fault_timers: List[asyncio.TimerHandle] = []
        # In-flight control-command broadcasts (referenced so the tasks
        # survive GC; reaped in stop()) and their terminal failures.
        self._control_tasks: set = set()
        #: Failures delivering fault commands ("node down" timeouts on
        #: killed/frozen targets are expected and land here too).
        self.control_errors: List[str] = []
        self._stalled: set = set()
        # (pid, verb, wall-time) per delivered SIGSTOP/SIGCONT: a frozen
        # process cannot trace its own freeze, so traces() injects these
        # synthetically, like the crash events.
        self._signal_walls: List[Tuple[ProcessId, str, float]] = []
        self._scenario_meta: Optional[Tuple[str, int, Optional[int]]] = None
        self._started = False
        self._stopped = False
        self._t0: Optional[float] = None
        self._postmortem: Optional[MergeReport] = None
        self._trace_cache: Optional[MemorySink] = None

    # ---------------------------------------------------------------- basics
    @property
    def pids(self) -> range:
        return range(self.n)

    @property
    def correct_pids(self) -> frozenset:
        """Pids never killed (crash-stop: killed means gone for good)."""
        return frozenset(pid for pid in self.pids if pid not in self._killed)

    @property
    def trace_files(self) -> List[Path]:
        return [self.workdir / f"node-{pid}.jsonl" for pid in self.pids]

    def log_file(self, pid: ProcessId) -> Path:
        return self.workdir / f"node-{pid}.log"

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Write the book, spawn every node, arm the crash schedule."""
        if self._started:
            raise ConfigurationError("cluster already started")
        self._started = True
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.book = AddressBook.allocate(
            self.n,
            host=self.host,
            serve=self.serve,
            control=True,
            transport=self.transport,
            stack=self.stack,
            period=self.period,
            initial_timeout=self.initial_timeout,
            timeout_increment=self.timeout_increment,
            seed=self.seed,
            codec=self.codec,
            duration=self.duration,
            propose_after=self.propose_after,
            metrics_interval=self.metrics_interval,
            max_batch=self.max_batch,
            pipeline_depth=self.pipeline_depth,
            ship_to=self.ship_to,
        )
        book_path = self.book.save(self.workdir / "book.json")
        env = dict(os.environ)
        # The children must import the same repro tree as the launcher,
        # installed or not.
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        for pid in self.pids:
            log = open(self.log_file(pid), "w", encoding="utf-8")
            self._logs[pid] = log
            self.procs[pid] = subprocess.Popen(
                [
                    self.python, "-m", "repro", "node",
                    "--book", str(book_path),
                    "--pid", str(pid),
                    "--trace-out", str(self.workdir / f"node-{pid}.jsonl"),
                ],
                stdout=log, stderr=subprocess.STDOUT, env=env,
            )
        await self._wait_control_ready()
        self._t0 = time.monotonic()
        loop = asyncio.get_running_loop()
        for pid, at in self._pending_crashes:
            self._arm_crash(loop, pid, at)
        self._pending_crashes.clear()
        for at, fire in self._pending_faults:
            self._arm_fault(loop, at, fire)
        self._pending_faults.clear()

    async def _wait_control_ready(self, budget: float = 10.0) -> None:
        """Block until every node's fault-control endpoint answers a ping
        (or *budget* seconds pass for a node that never will).

        The fault clock must not start while the nodes are still
        interpreters mid-import: a scenario's first window would fire
        into unbound sockets and vanish.  Pinging every endpoint before
        zeroing :attr:`elapsed` pins "cluster time 0" to the moment the
        whole cluster is actually listening — which is also (to within a
        ping) when the node-local trace clocks were zeroed, so scheduled
        faults land at the node-local times the scenario names.  A node
        that dies during boot just eats its budget; the failure is
        recorded in :attr:`control_errors`, never raised.
        """
        assert self.book is not None

        async def ready(pid: ProcessId) -> None:
            address = self.book.control_address(pid)
            if address is None:
                return
            try:
                await send_fault_command(
                    address, {"op": "ping"},
                    timeout=0.5, attempts=max(1, int(budget / 0.5)),
                )
            except (ConfigurationError, OSError,
                    asyncio.TimeoutError) as exc:
                self.control_errors.append(
                    f"ping -> node {pid}: {exc!r}"
                )

        await asyncio.gather(*(ready(pid) for pid in self.pids))

    @property
    def serve_addresses(self) -> Dict[ProcessId, tuple]:
        """Client-facing service addresses (empty unless ``serve=True``)."""
        if self.book is None:
            return {}
        return self.book.serve_addresses()

    @property
    def elapsed(self) -> float:
        """Wall seconds since the nodes were spawned (0 before start)."""
        return 0.0 if self._t0 is None else time.monotonic() - self._t0

    def crash(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """``kill -9`` node *pid* at wall offset *at* from cluster start.

        ``at=None`` means now.  Callable before :meth:`start` (the whole
        failure pattern is usually scripted up front) or while running.
        Killed nodes never restart.
        """
        if not 0 <= pid < self.n:
            raise ConfigurationError(f"pid {pid} out of range for n={self.n}")
        if not self._started:
            self._pending_crashes.append((pid, at))
            return
        self._arm_crash(asyncio.get_running_loop(), pid, at)

    def _arm_crash(
        self, loop: asyncio.AbstractEventLoop, pid: ProcessId, at: Optional[Time]
    ) -> None:
        delay = 0.0 if at is None else max(0.0, at - self.elapsed)
        if delay <= 0.0:
            self._kill_now(pid)
        else:
            self._crash_timers.append(loop.call_later(delay, self._kill_now, pid))

    def _kill_now(self, pid: ProcessId) -> None:
        """The actual ``kill -9``: no warning, no cleanup on the victim."""
        proc = self.procs.get(pid)
        if proc is None or proc.poll() is not None or pid in self._killed:
            return
        os.kill(proc.pid, signal.SIGKILL)
        self._killed.add(pid)
        self._kill_walls[pid] = time.time()

    # ----------------------------------------------------------- fault verbs
    # Same scheduling contract as crash(): `at` is a wall offset from
    # cluster start (None = now), callable before start.  Process verbs
    # (stall/resume) are OS signals — the victim does not cooperate;
    # network verbs are JSON commands broadcast to every node's
    # fault-control endpoint (each node's plan only governs its own
    # sends, so both sides of a partition must install it).

    def _check_pid(self, pid: ProcessId) -> ProcessId:
        if not 0 <= pid < self.n:
            raise ConfigurationError(f"pid {pid} out of range for n={self.n}")
        return pid

    def _fault(self, at: Optional[Time], fire: Callable[[], None]) -> None:
        if not self._started:
            self._pending_faults.append((at, fire))
            return
        self._arm_fault(asyncio.get_running_loop(), at, fire)

    def _arm_fault(
        self,
        loop: asyncio.AbstractEventLoop,
        at: Optional[Time],
        fire: Callable[[], None],
    ) -> None:
        delay = 0.0 if at is None else max(0.0, at - self.elapsed)
        if delay <= 0.0:
            fire()
        else:
            self._fault_timers.append(loop.call_later(delay, fire))

    def _signal_now(self, pid: ProcessId, sig: int, verb: str) -> None:
        """Deliver SIGSTOP/SIGCONT to a still-living node."""
        proc = self.procs.get(pid)
        if proc is None or proc.poll() is not None or pid in self._killed:
            return
        os.kill(proc.pid, sig)
        if verb == "stall":
            self._stalled.add(pid)
        else:
            self._stalled.discard(pid)
        self._signal_walls.append((pid, verb, time.time()))

    def _send_control(
        self, command: Dict[str, Any], targets: Iterable[ProcessId]
    ) -> None:
        task = asyncio.ensure_future(
            self._broadcast_control(command, list(targets))
        )
        self._control_tasks.add(task)
        task.add_done_callback(self._control_tasks.discard)

    async def _broadcast_control(
        self, command: Dict[str, Any], targets: List[ProcessId]
    ) -> None:
        assert self.book is not None
        live = []
        for pid in targets:
            if pid in self._killed:
                continue
            if self.book.control_address(pid) is None:
                self.control_errors.append(
                    f"{command.get('op')}: node {pid} has no control port "
                    "(book written without control=True?)"
                )
                continue
            live.append(pid)
        sends = []
        for idx, pid in enumerate(live):
            # Exactly one copy is flagged to narrate the scenario.* trace
            # event — one logical fault, one event in the merged trace.
            per_node = dict(command, record=(idx == 0))
            address = self.book.control_address(pid)
            assert address is not None
            sends.append(send_fault_command(address, per_node))
        results = await asyncio.gather(*sends, return_exceptions=True)
        for pid, result in zip(live, results):
            if isinstance(result, BaseException):
                # A dead or frozen target cannot ack — expected under
                # overlapping faults; recorded, not raised.
                self.control_errors.append(
                    f"{command.get('op')} -> node {pid}: {result!r}"
                )

    def note_scenario(
        self, name: str, events: int, seed: Optional[int] = None
    ) -> None:
        """Record that a scenario schedule was armed (``scenario.run``)."""
        self._scenario_meta = (name, events, seed)

    def stall(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Freeze node *pid* with a real ``SIGSTOP`` until :meth:`resume`.

        The process stops executing mid-instruction — timers, sockets and
        all — which is the crash-recovery-adjacent fault the paper's
        detectors must eventually forgive: peers see silence, then the
        node comes back with its state intact (it stays in the correct
        set, unlike a :meth:`crash`)."""
        self._check_pid(pid)
        self._fault(at, lambda: self._signal_now(pid, signal.SIGSTOP, "stall"))

    def resume(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Unfreeze a stalled node with ``SIGCONT``."""
        self._check_pid(pid)
        self._fault(at, lambda: self._signal_now(pid, signal.SIGCONT, "resume"))

    def partition(
        self,
        groups: Sequence[Iterable[ProcessId]],
        at: Optional[Time] = None,
    ) -> None:
        """Split the network into *groups* (pids in no group form an
        implicit final group); cross-group traffic is dropped both ways."""
        frozen = [list(group) for group in groups]
        seen: set = set()
        for group in frozen:
            for pid in group:
                self._check_pid(pid)
                if pid in seen:
                    raise ConfigurationError(f"pid {pid} in two groups")
                seen.add(pid)
        command = {"op": "partition", "groups": frozen}
        self._fault(at, lambda: self._send_control(command, self.pids))

    def heal(self, at: Optional[Time] = None) -> None:
        """Remove the active network partition."""
        self._fault(at, lambda: self._send_control({"op": "heal"}, self.pids))

    def isolate(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Partition node *pid* away from everyone else."""
        self._check_pid(pid)
        command = {"op": "isolate", "pid": pid}
        self._fault(at, lambda: self._send_control(command, self.pids))

    def degrade(
        self,
        src: ProcessId,
        dst: ProcessId,
        loss: Optional[float] = None,
        delay: Optional[Time] = None,
        at: Optional[Time] = None,
    ) -> None:
        """Make the directed link ``src -> dst`` lossy and/or slow."""
        self._check_pid(src)
        self._check_pid(dst)
        if loss is not None and not 0.0 <= loss <= 1.0:
            raise ConfigurationError(f"loss_prob {loss} outside [0, 1]")
        if delay is not None and delay < 0:
            raise ConfigurationError(f"negative delay {delay}")
        command = {
            "op": "degrade", "src": src, "dst": dst,
            "loss": loss, "delay": delay,
        }
        # A directed link is the sender's business alone: faults inject at
        # send time, so only src's plan needs the override.
        self._fault(at, lambda: self._send_control(command, [src]))

    def restore(
        self, src: ProcessId, dst: ProcessId, at: Optional[Time] = None
    ) -> None:
        """Undo :meth:`degrade` for the directed link ``src -> dst``."""
        self._check_pid(src)
        self._check_pid(dst)
        command = {"op": "restore", "src": src, "dst": dst}
        self._fault(at, lambda: self._send_control(command, [src]))

    def storm(self, loss: float, at: Optional[Time] = None) -> None:
        """Start a cluster-wide message-loss storm (until :meth:`calm`)."""
        if not 0.0 <= loss <= 1.0:
            raise ConfigurationError(f"loss_prob {loss} outside [0, 1]")
        command = {"op": "storm", "loss": loss}
        self._fault(at, lambda: self._send_control(command, self.pids))

    def calm(self, at: Optional[Time] = None) -> None:
        """End the active message-loss storm."""
        self._fault(at, lambda: self._send_control({"op": "calm"}, self.pids))

    def skew(
        self, pid: ProcessId, offset: Time, at: Optional[Time] = None
    ) -> None:
        """Step node *pid*'s clock by *offset* seconds (cumulative)."""
        self._check_pid(pid)
        command = {"op": "skew", "offset": offset}
        self._fault(at, lambda: self._send_control(command, [pid]))

    @property
    def stalled_pids(self) -> frozenset:
        """Pids currently frozen by :meth:`stall`."""
        return frozenset(self._stalled)

    def poll(self) -> Dict[ProcessId, Optional[int]]:
        """Liveness snapshot: pid -> exit status (``None`` = still running)."""
        return {pid: proc.poll() for pid, proc in self.procs.items()}

    async def wait_quiescent(self, timeout: Optional[Time] = None) -> bool:
        """Wait until every node process has exited (died or finished).

        Default *timeout* is the scenario duration plus a grace period.
        Returns whether full quiescence was reached in time.
        """
        if not self._started:
            raise ConfigurationError("cluster not started")
        if timeout is None:
            timeout = self.duration + 10.0
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            statuses = self.poll()
            if all(status is not None for status in statuses.values()):
                return True
            await asyncio.sleep(0.05)
        return all(status is not None for status in self.poll().values())

    async def stop(self) -> None:
        """Reap everything: kill stragglers, collect exit statuses, close
        logs.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        for timer in self._crash_timers:
            timer.cancel()
        self._crash_timers.clear()
        for timer in self._fault_timers:
            timer.cancel()
        self._fault_timers.clear()
        if self._control_tasks:
            await asyncio.gather(
                *tuple(self._control_tasks), return_exceptions=True
            )
            self._control_tasks.clear()
        # Unfreeze never-resumed stalls before reaping (SIGKILL does land
        # on a stopped process, but un-stopping first keeps the shutdown
        # path uniform and the process table free of T-state strays).
        for pid in tuple(self._stalled):
            proc = self.procs.get(pid)
            if proc is not None and proc.poll() is None:
                os.kill(proc.pid, signal.SIGCONT)
            self._stalled.discard(pid)
        for pid, proc in self.procs.items():
            if proc.poll() is None:
                proc.kill()  # launcher cleanup, not part of the crash model
            proc.wait()
            self.exit_statuses[pid] = proc.returncode
        for log in self._logs.values():
            log.close()
        self._logs.clear()

    # ------------------------------------------------------------ postmortem
    def merge_report(self) -> MergeReport:
        """Merge the shipped traces (cached); see :mod:`repro.obs.merge`."""
        if self._postmortem is None:
            files = [
                _read_trace_lenient(path)
                for path in self.trace_files
                if path.exists()
            ]
            if not files:
                raise ConfigurationError(
                    f"no trace files under {self.workdir} — did the nodes "
                    "start? check the node-*.log files"
                )
            self._postmortem = merge_traces(files)
        return self._postmortem

    def traces(self) -> MemorySink:
        """The merged postmortem stream, with synthetic ``crash`` events.

        A ``kill -9`` victim cannot record its own death, so the launcher
        injects one ``crash`` event per kill at the kill's wall time
        rebased onto the merged time base — the property checkers then
        see the same failure-pattern shape an in-process run records.
        """
        if self._trace_cache is not None:
            return self._trace_cache
        report = self.merge_report()
        events = list(report.trace)
        base = min(f.epoch_wall for f in report.files)
        for pid, wall in self._kill_walls.items():
            events.append(
                TraceEvent(
                    time=max(0.0, wall - base), kind="crash", pid=pid,
                    data={"signal": "SIGKILL"},
                )
            )
        # Signal faults are as invisible to their victim as kills (the
        # process is frozen the instant SIGSTOP lands), so they are
        # injected synthetically too.
        for pid, verb, wall in self._signal_walls:
            events.append(
                TraceEvent(
                    time=max(0.0, wall - base), kind=f"scenario.{verb}",
                    pid=pid,
                    data={
                        "target": pid,
                        "signal": (
                            "SIGSTOP" if verb == "stall" else "SIGCONT"
                        ),
                    },
                )
            )
        if self._scenario_meta is not None:
            name, count, seed = self._scenario_meta
            data: Dict[str, Any] = {"name": name, "events": count}
            if seed is not None:
                data["seed"] = seed
            events.append(
                TraceEvent(time=0.0, kind="scenario.run", pid=None, data=data)
            )
        events.sort(key=lambda event: event.time)
        merged = MemorySink()
        merged.extend(events)
        self._trace_cache = merged
        return merged

    def save_merged(self, path: Union[str, Path]) -> Path:
        """Write the merged stream (synthetic ``crash`` events included)
        to one combined ``.jsonl`` file.

        The per-node files under :attr:`workdir` are the raw shipped
        streams — a kill victim's file necessarily ends mid-run with no
        ``crash`` marker.  This file is the analysis-ready form:
        ``repro trace qos`` / ``repro trace check`` see the same
        failure-pattern shape the in-process checkers do.
        """
        from ..obs.sinks import JsonlSink

        report = self.merge_report()
        path = Path(path)
        out = JsonlSink(
            path, node=None,
            epoch_wall=min(f.epoch_wall for f in report.files),
            epoch_mono=min(f.epoch_mono for f in report.files),
        )
        for event in self.traces().events:
            out.record_event(event)
        out.close()
        return path

    def verdicts(self, channel: str = "fd", algo: str = "ec") -> Dict[str, Any]:
        """Machine-checked FD + consensus properties of the merged run.

        An ``rsm`` cluster is judged by :func:`rsm_verdicts` (log-level
        agreement/prefix/progress over ``apply`` events); anything else
        by :func:`standard_verdicts`.
        """
        if self.stack == "rsm":
            return rsm_verdicts(
                self.traces(), self.correct_pids, channel=channel,
            )
        return standard_verdicts(
            self.traces(), self.correct_pids, channel=channel, algo=algo,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "stopped" if self._stopped
            else "running" if self._started else "new"
        )
        return (
            f"<ProcessCluster n={self.n} transport={self.transport} "
            f"{state} workdir={self.workdir}>"
        )
