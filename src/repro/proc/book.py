"""The address book: one JSON document describing a process cluster.

A multi-process run has no shared Python objects, so everything every
node must agree on travels in one static JSON file — the classic static
membership assumption of the paper (all *n* identities known up front;
only crashes change the picture):

.. code-block:: json

    {
      "n": 3,
      "transport": "udp",
      "stack": "ring",
      "period": 0.05,
      "initial_timeout": 0.12,
      "timeout_increment": 0.05,
      "seed": 0,
      "codec": "auto",
      "duration": 6.0,
      "propose_after": 1.0,
      "nodes": [
        {"pid": 0, "host": "127.0.0.1", "port": 42001},
        {"pid": 1, "host": "127.0.0.1", "port": 42002},
        {"pid": 2, "host": "127.0.0.1", "port": 42003}
      ]
    }

``repro node --book cluster.json --pid 2`` reads this, binds pid 2's
socket, and runs that one node; the :class:`~repro.proc.ProcessCluster`
launcher writes the file before spawning anything.  For a multi-machine
deployment you write the book by hand (real hosts instead of loopback)
and start one ``repro node`` per box.

:meth:`AddressBook.allocate` builds a loopback book with genuinely free
ports by binding each one to port 0 and reading back the kernel's choice
— the ports are released again before the nodes start, which is racy in
principle but reliable for single-machine test runs.
"""

from __future__ import annotations

import json
import socket
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..types import ProcessId, Time

__all__ = ["NodeAddress", "AddressBook", "PROC_TRANSPORTS"]

#: Transports that cross process boundaries (no loopback hub here).
PROC_TRANSPORTS = ("udp", "tcp")

_STACKS = ("ring", "heartbeat", "rsm")
_CODECS = ("auto", "json", "msgpack")


@dataclass
class NodeAddress:
    """Where one node listens.

    ``serve_port`` is the optional client-facing TCP port of the node's
    KV service frontend (``--stack rsm`` only); ``control_port`` the
    optional UDP port of its fault-control endpoint (see
    :mod:`repro.net.control` — the launcher's network fault verbs need
    it); ``port`` stays the node-to-node transport address.
    """

    pid: ProcessId
    host: str
    port: int
    serve_port: Optional[int] = None
    control_port: Optional[int] = None


@dataclass
class AddressBook:
    """Everything a node needs to join a process cluster (see module doc)."""

    n: int
    transport: str = "udp"
    stack: str = "ring"
    period: Time = 0.05
    initial_timeout: Optional[Time] = None
    timeout_increment: Optional[Time] = None
    seed: int = 0
    codec: str = "auto"
    duration: Time = 6.0
    propose_after: Optional[Time] = None
    #: When set, every node attaches a MetricsReporter emitting
    #: ``obs.metrics_snapshot`` trace events at this interval (seconds).
    metrics_interval: Optional[Time] = None
    #: Command-path shape of the ``rsm`` stack (see
    #: :class:`~repro.consensus.multi.ReplicatedStateMachine`); books
    #: written before these fields existed load with the defaults.
    max_batch: int = 64
    pipeline_depth: int = 4
    #: ``HOST:PORT`` of a live trace collector (see
    #: :mod:`repro.obs.live`); when set, every node tees its trace into a
    #: ``StreamingSink`` shipping there.  Absent from books written
    #: before live telemetry existed — they load with ``None``.
    ship_to: Optional[str] = None
    nodes: List[NodeAddress] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.transport not in PROC_TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r} for a process "
                f"cluster; pick one of {PROC_TRANSPORTS} (loopback cannot "
                "cross process boundaries)"
            )
        if self.stack not in _STACKS:
            raise ConfigurationError(
                f"unknown stack {self.stack!r}; pick one of {_STACKS}"
            )
        if self.codec not in _CODECS:
            raise ConfigurationError(
                f"unknown codec {self.codec!r}; pick one of {_CODECS}"
            )
        # Same scaling rule as LocalCluster.deploy_standard_stack: the
        # paper's timeout ≈ 2.4 periods, increment = one period.
        if self.initial_timeout is None:
            self.initial_timeout = 2.4 * self.period
        if self.timeout_increment is None:
            self.timeout_increment = self.period
        self.nodes = [
            NodeAddress(**entry) if isinstance(entry, dict) else entry
            for entry in self.nodes
        ]
        if self.nodes:
            pids = sorted(entry.pid for entry in self.nodes)
            if pids != list(range(self.n)):
                raise ConfigurationError(
                    f"address book must cover pids 0..{self.n - 1} exactly, "
                    f"got {pids}"
                )
        if self.stack != "rsm" and any(
            entry.serve_port is not None for entry in self.nodes
        ):
            raise ConfigurationError(
                "serve ports only make sense with the 'rsm' stack (the KV "
                "service frontend rides the replicated state machine)"
            )

    # ----------------------------------------------------------------- access
    def address(self, pid: ProcessId) -> Tuple[str, int]:
        """The ``(host, port)`` pair node *pid* listens on."""
        for entry in self.nodes:
            if entry.pid == pid:
                return (entry.host, entry.port)
        raise ConfigurationError(f"pid {pid} not in the address book")

    def addresses(self) -> Dict[ProcessId, Tuple[str, int]]:
        """The full peer map, the shape ``Transport.set_peers`` takes."""
        return {entry.pid: (entry.host, entry.port) for entry in self.nodes}

    def serve_address(self, pid: ProcessId) -> Optional[Tuple[str, int]]:
        """Node *pid*'s client-facing service address, if it has one."""
        for entry in self.nodes:
            if entry.pid == pid:
                if entry.serve_port is None:
                    return None
                return (entry.host, entry.serve_port)
        raise ConfigurationError(f"pid {pid} not in the address book")

    def serve_addresses(self) -> Dict[ProcessId, Tuple[str, int]]:
        """All client-facing service addresses (pids without one omitted)."""
        return {
            entry.pid: (entry.host, entry.serve_port)
            for entry in self.nodes
            if entry.serve_port is not None
        }

    def control_address(self, pid: ProcessId) -> Optional[Tuple[str, int]]:
        """Node *pid*'s fault-control endpoint address, if it has one."""
        for entry in self.nodes:
            if entry.pid == pid:
                if entry.control_port is None:
                    return None
                return (entry.host, entry.control_port)
        raise ConfigurationError(f"pid {pid} not in the address book")

    def control_addresses(self) -> Dict[ProcessId, Tuple[str, int]]:
        """All fault-control addresses (pids without one omitted)."""
        return {
            entry.pid: (entry.host, entry.control_port)
            for entry in self.nodes
            if entry.control_port is not None
        }

    # -------------------------------------------------------------- (de)serde
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        # Keep the on-disk document minimal and byte-compatible with books
        # written before serve/control ports existed: absent means "no
        # frontend" / "no fault-control endpoint" / "no live shipping".
        if data.get("ship_to") is None:
            data.pop("ship_to", None)
        for entry in data["nodes"]:
            for key in ("serve_port", "control_port"):
                if entry.get(key) is None:
                    entry.pop(key)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AddressBook":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown address-book keys: {sorted(unknown)}"
            )
        return cls(**data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AddressBook":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read address book {path}: {exc}")
        return cls.from_dict(data)

    # ------------------------------------------------------------- allocation
    @classmethod
    def allocate(
        cls, n: int, host: str = "127.0.0.1", transport: str = "udp",
        serve: bool = False, control: bool = False, **settings: Any,
    ) -> "AddressBook":
        """Build a single-machine book with *n* kernel-chosen free ports.

        With ``serve=True`` every node also gets a client-facing TCP
        ``serve_port`` for its KV service frontend (requires
        ``stack="rsm"``); with ``control=True`` a UDP ``control_port``
        for its fault-control endpoint (the launcher's network fault
        verbs are delivered there).
        """
        kind = (
            socket.SOCK_DGRAM if transport == "udp" else socket.SOCK_STREAM
        )
        nodes: List[NodeAddress] = []
        probes: List[socket.socket] = []
        try:
            # Hold all probes open until every port is chosen so the kernel
            # cannot hand the same port out twice.
            for pid in range(n):
                probe = socket.socket(socket.AF_INET, kind)
                probe.bind((host, 0))
                probes.append(probe)
                serve_port: Optional[int] = None
                if serve:
                    # Client connections are always TCP streams, whatever
                    # the node-to-node transport is.
                    extra = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                    extra.bind((host, 0))
                    probes.append(extra)
                    serve_port = extra.getsockname()[1]
                control_port: Optional[int] = None
                if control:
                    # Fault commands are always UDP datagrams, whatever
                    # the node-to-node transport is.
                    ctrl = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                    ctrl.bind((host, 0))
                    probes.append(ctrl)
                    control_port = ctrl.getsockname()[1]
                nodes.append(
                    NodeAddress(
                        pid=pid, host=host,
                        port=probe.getsockname()[1], serve_port=serve_port,
                        control_port=control_port,
                    )
                )
        finally:
            for probe in probes:
                probe.close()
        return cls(n=n, transport=transport, nodes=nodes, **settings)
