"""One node per OS process: the ``repro node`` entrypoint.

This is the runtime half of the multi-process story: read the address
book, bind this pid's socket, attach the paper's standard stack on a
single :class:`~repro.net.host.NodeHost`, ship the trace to a per-node
JSONL file, run for the configured duration, exit 0.  Everything the
node does is self-driving — proposals fire from the book's
``propose_after``, timers run on a wall :class:`AsyncioClock` — because
a process cluster has no in-process orchestrator to poke components.

Crashes are *not* handled here, and that is the point: the launcher
``kill -9``'s the process, the OS reclaims the sockets, and the peers
observe genuine silence.  The node never traps signals, so there is no
cooperative-shutdown path that could soften the failure model — stalls
arrive the same way, as real ``SIGSTOP``/``SIGCONT``.  *Network* faults,
by contrast, need the node's cooperation (only it can drop its own
sends), so each node wraps its transport in a
:class:`~repro.net.faults.FaultyTransport` over an idle per-node
:class:`~repro.net.faults.FaultPlan` and — when the address book names a
``control_port`` — binds a :class:`~repro.net.control.FaultControlEndpoint`
through which the launcher's partition/degrade/storm/skew verbs mutate
that plan (and the node's clock) at runtime.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..errors import ConfigurationError
from ..net.clock import AsyncioClock, SkewedClock
from ..net.codec import default_codec
from ..net.control import FaultControlEndpoint
from ..net.faults import FaultPlan, FaultyTransport
from ..net.host import NodeHost
from ..net.stats import StatsEndpoint, parse_stats_addr
from ..net.tcp import TCPTransport
from ..net.udp import UDPTransport
from ..obs.live import StreamingSink
from ..obs.sinks import JsonlSink, MemorySink, TeeSink, TraceSink
from ..cluster.local import attach_node_stack
from ..svc.frontend import ServiceFrontend
from ..types import ProcessId
from .book import AddressBook

__all__ = ["build_node", "run_node"]


def build_node(
    book: AddressBook,
    pid: ProcessId,
    trace: Optional[TraceSink] = None,
) -> NodeHost:
    """Assemble (but do not start) node *pid* of the cluster in *book*.

    The host gets its listening address from the book, the paper's
    standard stack attached (``book.stack`` selects the ◇S source), and
    *trace* as its sink (an in-memory one by default).  Components by
    role are available as ``host.stacks`` afterwards.
    """
    host_addr, port = book.address(pid)
    if book.transport == "udp":
        real: Any = UDPTransport(pid, host=host_addr, port=port)
    else:
        real = TCPTransport(pid, host=host_addr, port=port)
    prefer = None if book.codec == "auto" else book.codec
    # The node's own fault surface: an (idle, near-free) plan its sends
    # run through and a steppable clock — the fault-control endpoint
    # mutates both on command from the launcher.  Decorrelate the plan's
    # rng from peers so "30% loss everywhere" is not 3 identical streams.
    plan = FaultPlan(book.n, seed=book.seed * 1009 + pid)
    clock = SkewedClock(AsyncioClock())
    host = NodeHost(
        pid, book.n, FaultyTransport(real, plan, clock),
        clock=clock,
        codec=default_codec(prefer=prefer),
        trace=trace if trace is not None else MemorySink(),
        seed=book.seed,
    )
    host.fault_plan = plan  # type: ignore[attr-defined]
    host.stacks = attach_node_stack(  # type: ignore[attr-defined]
        host.attach,
        suspects=book.stack,
        period=book.period,
        initial_timeout=book.initial_timeout,
        timeout_increment=book.timeout_increment,
        metrics_interval=book.metrics_interval,
        max_batch=book.max_batch,
        pipeline_depth=book.pipeline_depth,
    )
    return host


async def run_node(
    book: AddressBook,
    pid: ProcessId,
    trace_out: Optional[Union[str, Path]] = None,
    duration: Optional[float] = None,
    stats_addr: Optional[str] = None,
    serve_addr: Optional[str] = None,
    ship_to: Optional[str] = None,
) -> Dict[str, int]:
    """Run node *pid* to completion; returns transport counters.

    The lifecycle mirrors one slot of ``LocalCluster.start()``: bind,
    learn the peer map, rebase trace time zero, start components,
    schedule the proposal round, sleep out the duration, tear down.

    *stats_addr* (``HOST:PORT`` / ``:PORT`` / ``PORT``) additionally
    binds the UDP introspection endpoint serving the node's metrics
    registry in Prometheus text format (see :mod:`repro.net.stats`).

    On an ``rsm`` stack, a KV :class:`~repro.svc.ServiceFrontend` is
    bound for real clients when either *serve_addr* (same spec syntax
    as *stats_addr*) or the book's per-node ``serve_port`` names a
    listen address.

    *ship_to* (``HOST:PORT``, overriding the book's ``ship_to``)
    additionally tees the node's trace into a
    :class:`~repro.obs.live.StreamingSink` forwarding every event to a
    live collector (``repro watch``); its shipper counters ride both
    the ``obs_stream_*`` gauges and the returned counter dict.
    """
    base_sink: TraceSink
    if trace_out is not None:
        base_sink = JsonlSink(Path(trace_out), node=pid)
    else:
        base_sink = MemorySink()
    sink = base_sink
    streaming: Optional[StreamingSink] = None
    ship_spec = ship_to if ship_to is not None else book.ship_to
    if ship_spec is not None:
        streaming = StreamingSink(ship_spec, node=pid)
        sink = TeeSink(base_sink, streaming)
    host = build_node(book, pid, trace=sink)
    control: Optional[FaultControlEndpoint] = None
    control_at = book.control_address(pid)
    if control_at is not None:
        control = FaultControlEndpoint(
            host, host.fault_plan,  # type: ignore[attr-defined]
            listen_host=control_at[0], port=control_at[1],
        )
        await control.bind()
    stats: Optional[StatsEndpoint] = None
    if stats_addr is not None:
        stats_host, stats_port = parse_stats_addr(stats_addr)
        stats = StatsEndpoint(
            host.metrics, samplers=host.world.metrics_samplers,
            host=stats_host, port=stats_port,
        )
        await stats.bind()
    frontend: Optional[ServiceFrontend] = None
    rsm = host.stacks.get("rsm")  # type: ignore[attr-defined]
    serve_at = (
        parse_stats_addr(serve_addr)
        if serve_addr is not None
        else book.serve_address(pid)
    )
    if serve_at is not None:
        if rsm is None:
            raise ConfigurationError(
                "a serve address needs the 'rsm' stack (the KV frontend "
                "submits into the replicated log)"
            )
        # Construct before start so no applied command can slip past the
        # frontend's on_apply registration.
        frontend = ServiceFrontend(
            host, rsm, host.stacks["fd"],  # type: ignore[attr-defined]
            listen_host=serve_at[0], port=serve_at[1],
        )
    await host.transport.bind()
    host.transport.set_peers(book.addresses())
    host.clock.rebase()  # trace time 0 = the instant this node starts
    if isinstance(base_sink, JsonlSink):
        base_sink.rebase_epoch()
    if streaming is not None:
        streaming.rebase_epoch()
        await streaming.start()
        shipper = streaming  # bind for the sampler closure

        def _sample_stream(registry) -> None:
            registry.set("obs_stream_events_shipped", shipper.events_shipped)
            registry.set("obs_stream_events_dropped", shipper.events_dropped)
            registry.set("obs_stream_batches_shipped", shipper.batches_shipped)
            registry.set("obs_stream_reconnects", shipper.reconnects)

        host.world.metrics_samplers.append(_sample_stream)
    host.start()
    if frontend is not None:
        await frontend.bind()
        frontend.set_peers(book.serve_addresses())
    if book.propose_after is not None:
        protocol = host.stacks.get("consensus")  # type: ignore[attr-defined]
        if protocol is not None:
            host.clock.schedule_at(
                book.propose_after,
                lambda: protocol.propose(f"value-from-p{pid}"),
            )
        if rsm is not None:
            host.clock.schedule_at(
                book.propose_after,
                lambda: rsm.submit(f"value-from-p{pid}"),
            )
    run_for = duration if duration is not None else book.duration
    await asyncio.sleep(run_for)
    if control is not None:
        control.close()
    if stats is not None:
        stats.close()
    if frontend is not None:
        await frontend.close()
    await host.transport.close()
    if streaming is not None:
        await streaming.aclose()
    sink.close()
    counters = {
        "frames_sent": host.transport.frames_sent,
        "frames_received": host.transport.frames_received,
        "send_errors": host.transport.send_errors,
    }
    if streaming is not None:
        counters["events_shipped"] = streaming.events_shipped
        counters["events_dropped"] = streaming.events_dropped
    return counters
