"""Multi-process clusters: one OS process per node, real ``kill -9``.

Everything before this package runs the paper's algorithms inside one
process — the simulator in virtual time, :class:`~repro.cluster.local
.LocalCluster` on one asyncio loop.  Here the failure model is enforced
by the operating system instead: each node is its own ``repro node``
process (:mod:`~repro.proc.node`), membership is a static JSON address
book (:mod:`~repro.proc.book`), crashes are genuine ``SIGKILL``\\ s
delivered by the :class:`ProcessCluster` launcher
(:mod:`~repro.proc.launcher`), and analysis happens postmortem by
merging the per-process JSONL traces.

The launcher implements the same :class:`~repro.cluster.api.ClusterAPI`
as ``LocalCluster``, so one harness drives both::

    cluster = ProcessCluster(3, transport="udp", duration=6.0,
                             propose_after=1.0)
    cluster.crash(0, at=2.5)            # kill -9 the initial leader
    await cluster.start()
    await cluster.wait_quiescent()
    await cluster.stop()
    assert verdicts_ok(cluster.verdicts())
"""

from __future__ import annotations

from .book import AddressBook, NodeAddress, PROC_TRANSPORTS
from .launcher import ProcessCluster
from .node import build_node, run_node

__all__ = [
    "AddressBook",
    "NodeAddress",
    "PROC_TRANSPORTS",
    "ProcessCluster",
    "build_node",
    "run_node",
]
