"""Replicated state machine on repeated ◇C consensus.

The classical motivation for consensus — and the paper's implicit
application — is state-machine replication: run one consensus instance per
log slot and apply decided commands in slot order.  This component does
exactly that on top of any of the library's consensus algorithms
(:class:`~repro.consensus.ec_consensus.ECConsensus` by default):

* clients call :meth:`submit` at any replica; the command is disseminated
  to every replica, which enqueues it (deduplicated, ordered by id);
* each open slot proposes a **batch** of pending commands (up to
  ``max_batch``; one bare command in the legacy ``max_batch=1`` shape), so
  slot rate and command rate decouple;
* up to ``pipeline_depth`` slots run concurrently — commands arriving
  while slot *k* is undecided propose straight into slot *k + 1* instead
  of queueing behind it — while applies stay strictly in slot order;
* when slot *i* decides, its commands are applied in batch order (exactly
  once — commands re-decided by an overlapping batch are skipped), the
  queue is trimmed, and the window slides forward.

Batches are an ordering optimization, not a new trust boundary: a decided
batch fans back out to per-command ``on_apply`` callbacks, so everything
downstream (the KV session table, the log verdicts) still sees a stream of
single commands.  With ``max_batch=1, pipeline_depth=1`` the component is
behaviourally identical to the historical one-command-per-slot machine —
the parity tests pin that.

This is the substrate for the replicated key-value-store example.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..fd.base import FailureDetector
from ..sim.component import Component
from ..types import ProcessId
from .base import ConsensusProtocol
from .ec_consensus import ECConsensus

__all__ = ["ReplicatedStateMachine", "NOOP", "BATCH"]

#: Decision filler for slots where a replica had nothing to propose.
NOOP = ("__noop__",)

#: Tag marking a batched slot value: ``(BATCH, (command, command, ...))``.
BATCH = "__batch__"

#: A command: (submitting pid, per-submitter sequence, payload).
Command = Tuple[ProcessId, int, Any]


class ReplicatedStateMachine(Component):
    """Slot-by-slot replicated log driven by repeated consensus."""

    channel = "rsm"

    def __init__(
        self,
        fd: FailureDetector,
        consensus_cls: Type[ConsensusProtocol] = ECConsensus,
        channel: str = "rsm",
        rebroadcast_period: Optional[float] = None,
        consensus_kwargs: Optional[dict] = None,
        idle_grace: Optional[float] = None,
        max_batch: int = 1,
        pipeline_depth: int = 1,
        max_delay: float = 0.0,
    ) -> None:
        super().__init__(channel)
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        self.fd = fd
        self.consensus_cls = consensus_cls
        self.consensus_kwargs = dict(consensus_kwargs or {})
        # When set: periodically re-disseminate pending commands and use
        # retransmitting Reliable Broadcast for decisions.  Both are needed
        # only when the run violates the reliable-links model (partitions);
        # they implement the usual "clients retry" recovery story.
        self.rebroadcast_period = rebroadcast_period
        # When set: a head slot with nothing to propose delays its NOOP
        # proposal by this long.  Liveness is untouched — a command
        # arriving mid-grace is proposed immediately (dissemination
        # reaches every replica, so every replica un-parks the slot), and
        # the timer is only the fallback keeping wholly idle clusters
        # live.  Off (None) by default: the eager-NOOP behaviour is what
        # the deterministic parity runs pin down.  Long-running services
        # want it, because an idle service otherwise burns one consensus
        # instance per slot at full speed forever.
        self.idle_grace = idle_grace
        #: Most commands one slot value may carry; 1 keeps the legacy
        #: bare-command wire shape.
        self.max_batch = max_batch
        #: How many slots may be undecided at once.  Non-head slots only
        #: propose when they have fresh commands to carry; they never burn
        #: eager NOOPs, so a deep window on an idle cluster costs nothing.
        self.pipeline_depth = pipeline_depth
        #: When > 0: a slot holding a non-full batch waits this long for
        #: more commands before proposing.  0 proposes immediately —
        #: under load the pipeline itself accumulates batches (commands
        #: arriving while slots are in flight pile up for the next one),
        #: so the delay is only for smoothing sparse open-loop traffic.
        self.max_delay = max_delay
        self.log: List[Any] = []
        self._pending: List[Command] = []
        self._seen: set = set()
        self._applied: set = set()
        self._next_seq = 0
        self._instances: Dict[int, ConsensusProtocol] = {}
        #: Command ids proposed (or delay-staged) per undecided slot; used
        #: to keep concurrent slots from proposing overlapping batches.
        self._inflight: Dict[int, Tuple[Tuple[ProcessId, int], ...]] = {}
        #: Decided values buffered until every lower slot has applied.
        self._decided: Dict[int, Any] = {}
        self._apply_next = 0
        self._next_open = 0
        self._noop_timer = None
        self._delay_timers: Dict[int, Any] = {}
        self._delay_done: set = set()
        self._apply_callbacks: List[Callable[[int, Any], None]] = []

    # ----------------------------------------------------------------- API
    def on_apply(self, callback: Callable[[int, Any], None]) -> None:
        """Register *callback(slot, command_payload)* for applied commands."""
        self._apply_callbacks.append(callback)

    def submit(self, payload: Any) -> Command:
        """Submit a command at this replica; it will eventually be applied
        at every correct replica (in the same log position everywhere)."""
        command: Command = (self.pid, self._next_seq, payload)
        self._next_seq += 1
        self.broadcast(("CMD", command), include_self=True, tag="cmd")
        return command

    @property
    def current_slot(self) -> int:
        """Index of the lowest slot still being agreed on."""
        return self._apply_next

    @property
    def pending_count(self) -> int:
        """Commands queued in the batch accumulator, not yet applied."""
        return len(self._pending)

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        self._fill_window()
        if self.rebroadcast_period is not None:
            self.periodically(self.rebroadcast_period, self._rebroadcast)

    def _rebroadcast(self) -> None:
        for command in self._pending:
            self.broadcast(("CMD", command), tag="cmd-retry")

    @staticmethod
    def _cid(command: Command) -> Tuple[ProcessId, int]:
        """Stable command identity (the payload itself may be unhashable)."""
        return (command[0], command[1])

    def on_message(self, src: ProcessId, payload: Any) -> None:
        kind, command = payload
        if kind != "CMD" or self._cid(command) in self._seen:
            return
        self._seen.add(self._cid(command))
        if self._cid(command) not in self._applied:
            self._pending.append(command)
            self._pending.sort(key=self._cid)
            self._reconsider_open_slots()

    # ------------------------------------------------------------- proposing
    def _fill_window(self) -> None:
        while self._next_open < self._apply_next + self.pipeline_depth:
            self._open_slot(self._next_open)
            self._next_open += 1

    def _open_slot(self, slot: int) -> None:
        rb = ReliableBroadcast(
            channel=f"{self.channel}.c{slot}.rb",
            retransmit_period=self.rebroadcast_period,
        )
        self.process.attach(rb)
        instance = self.consensus_cls(
            self.fd, rb, channel=f"{self.channel}.c{slot}",
            **self.consensus_kwargs,
        )
        self.process.attach(instance)
        self._instances[slot] = instance
        instance.on_decide(lambda value, s=slot: self._on_slot_decided(s, value))
        self._consider_proposal(slot)

    def _reconsider_open_slots(self) -> None:
        for slot in range(self._apply_next, self._next_open):
            self._consider_proposal(slot)

    def _proposable(self, slot: int) -> List[Command]:
        """Pending commands not already carried by another undecided slot."""
        taken = set()
        for other, cids in self._inflight.items():
            if other != slot:
                taken.update(cids)
        batch = [c for c in self._pending if self._cid(c) not in taken]
        return batch[: self.max_batch]

    def _consider_proposal(self, slot: int) -> None:
        instance = self._instances.get(slot)
        if instance is None or instance.proposed or instance.decided:
            return
        batch = self._proposable(slot)
        if batch:
            if (
                len(batch) >= self.max_batch
                or self.max_delay <= 0
                or slot in self._delay_done
            ):
                self._propose(slot, batch)
                return
            # Stage a non-full batch: reserve its commands against other
            # slots and give late arrivals max_delay to join it.
            self._inflight[slot] = tuple(self._cid(c) for c in batch)
            if slot not in self._delay_timers:
                self._delay_timers[slot] = self.set_timer(
                    self.max_delay, self._delay_expired, slot
                )
            return
        if slot != self._apply_next:
            return  # non-head slots wait for commands; no eager NOOPs
        if self.idle_grace is None:
            self._propose(slot, None)
        elif self._noop_timer is None or self._noop_timer[0] != slot:
            # Idle head slot: park it; a CMD arrival or the grace timer
            # (the liveness fallback) proposes later.
            if self._noop_timer is not None:
                self._noop_timer[1].cancel()
            self._noop_timer = (
                slot, self.set_timer(self.idle_grace, self._grace_expired, slot)
            )

    @staticmethod
    def _span_of(command: Command) -> Optional[str]:
        """The causal-span id riding *command*'s payload, if any."""
        payload = command[2]
        if isinstance(payload, dict):
            span = payload.get("span")
            return span if isinstance(span, str) else None
        return None

    def _trace_spans(self, kind: str, slot: int, commands) -> None:
        """Emit one ``span.*`` stage event per span-carrying command."""
        if not self.world.trace.wants(kind):
            return
        for command in commands:
            span = self._span_of(command)
            if span is not None:
                self.trace(kind, span=span, slot=slot)

    def _propose(self, slot: int, batch: Optional[List[Command]]) -> None:
        self._cancel_slot_timers(slot)
        instance = self._instances[slot]
        if not batch:
            self._inflight.pop(slot, None)
            instance.propose(NOOP)
            return
        self._inflight[slot] = tuple(self._cid(c) for c in batch)
        self._trace_spans("span.propose", slot, batch)
        if self.max_batch == 1:
            instance.propose(batch[0])
            return
        self.trace("rsm.batch_proposed", slot=slot, size=len(batch))
        self.metrics.observe("rsm_batch_size", len(batch))
        instance.propose((BATCH, tuple(batch)))

    def _grace_expired(self, slot: int) -> None:
        if self._noop_timer is not None and self._noop_timer[0] == slot:
            self._noop_timer = None
        instance = self._instances.get(slot)
        if instance is None or instance.proposed or instance.decided:
            return
        self._propose(slot, self._proposable(slot) or None)

    def _delay_expired(self, slot: int) -> None:
        self._delay_timers.pop(slot, None)
        self._delay_done.add(slot)
        instance = self._instances.get(slot)
        if instance is None or instance.proposed or instance.decided:
            return
        self._inflight.pop(slot, None)
        batch = self._proposable(slot)
        if batch:
            self._propose(slot, batch)
        else:
            # The staged commands decided elsewhere meanwhile; fall back
            # to the regular (head-NOOP / park) consideration.
            self._consider_proposal(slot)

    def _cancel_slot_timers(self, slot: int) -> None:
        if self._noop_timer is not None and self._noop_timer[0] == slot:
            self._noop_timer[1].cancel()
            self._noop_timer = None
        handle = self._delay_timers.pop(slot, None)
        if handle is not None:
            handle.cancel()

    # -------------------------------------------------------------- applying
    @staticmethod
    def _commands_in(value: Any) -> Tuple[Command, ...]:
        """The commands a decided slot value carries, in batch order."""
        if value == NOOP:
            return ()
        if (
            isinstance(value, (tuple, list))
            and len(value) == 2
            and value[0] == BATCH
        ):
            return tuple(tuple(c) for c in value[1])
        return (tuple(value),)

    def _on_slot_decided(self, slot: int, value: Any) -> None:
        self._cancel_slot_timers(slot)
        self._inflight.pop(slot, None)
        self._delay_done.discard(slot)
        self._trace_spans("span.decide", slot, self._commands_in(value))
        self._decided[slot] = value
        while self._apply_next in self._decided:
            self._apply_value(
                self._apply_next, self._decided.pop(self._apply_next)
            )
            self._apply_next += 1
        self._fill_window()
        self._reconsider_open_slots()

    def _apply_value(self, slot: int, value: Any) -> None:
        commands = self._commands_in(value)
        if not commands:
            return
        is_batch = (
            isinstance(value, (tuple, list))
            and len(value) == 2
            and value[0] == BATCH
        )
        duplicates = 0
        index = 0
        for command in commands:
            cid = self._cid(command)
            if cid in self._applied:
                # An overlapping batch (a retried command proposed into two
                # slots) already applied it; exactly-once holds here.
                duplicates += 1
                continue
            self._applied.add(cid)
            self.log.append(command[2])
            self.trace("apply", slot=slot, index=index, command=command[2])
            span = self._span_of(command)
            if span is not None:
                self.trace("span.apply", span=span, slot=slot)
            for callback in self._apply_callbacks:
                callback(slot, command[2])
            index += 1
        if is_batch:
            self.trace(
                "rsm.batch_applied",
                slot=slot, size=len(commands), duplicates=duplicates,
            )
        decided = set(self._cid(c) for c in commands)
        self._pending = [
            c for c in self._pending if self._cid(c) not in decided
        ]
