"""Replicated state machine on repeated ◇C consensus.

The classical motivation for consensus — and the paper's implicit
application — is state-machine replication: run one consensus instance per
log slot and apply decided commands in slot order.  This component does
exactly that on top of any of the library's consensus algorithms
(:class:`~repro.consensus.ec_consensus.ECConsensus` by default):

* clients call :meth:`submit` at any replica; the command is disseminated
  to every replica, which enqueues it (deduplicated, ordered by id);
* every replica proposes its queue head (or ``NOOP``) in the current slot,
  so no instance ever stalls waiting for a silent proposer;
* when slot *i* decides, the command is applied (exactly once — re-decided
  duplicates are skipped), the queue is trimmed, and slot *i + 1* opens.

This is the substrate for the replicated key-value-store example.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..broadcast.reliable import ReliableBroadcast
from ..fd.base import FailureDetector
from ..sim.component import Component
from ..types import ProcessId
from .base import ConsensusProtocol
from .ec_consensus import ECConsensus

__all__ = ["ReplicatedStateMachine", "NOOP"]

#: Decision filler for slots where a replica had nothing to propose.
NOOP = ("__noop__",)

#: A command: (submitting pid, per-submitter sequence, payload).
Command = Tuple[ProcessId, int, Any]


class ReplicatedStateMachine(Component):
    """Slot-by-slot replicated log driven by repeated consensus."""

    channel = "rsm"

    def __init__(
        self,
        fd: FailureDetector,
        consensus_cls: Type[ConsensusProtocol] = ECConsensus,
        channel: str = "rsm",
        rebroadcast_period: Optional[float] = None,
        consensus_kwargs: Optional[dict] = None,
        idle_grace: Optional[float] = None,
    ) -> None:
        super().__init__(channel)
        self.fd = fd
        self.consensus_cls = consensus_cls
        self.consensus_kwargs = dict(consensus_kwargs or {})
        # When set: periodically re-disseminate pending commands and use
        # retransmitting Reliable Broadcast for decisions.  Both are needed
        # only when the run violates the reliable-links model (partitions);
        # they implement the usual "clients retry" recovery story.
        self.rebroadcast_period = rebroadcast_period
        # When set: a slot opened with an empty queue delays its NOOP
        # proposal by this long.  Liveness is untouched — a command
        # arriving mid-grace is proposed immediately (dissemination
        # reaches every replica, so every replica un-parks the slot), and
        # the timer is only the fallback keeping wholly idle clusters
        # live.  Off (None) by default: the eager-NOOP behaviour is what
        # the deterministic parity runs pin down.  Long-running services
        # want it, because an idle service otherwise burns one consensus
        # instance per slot at full speed forever.
        self.idle_grace = idle_grace
        self.log: List[Any] = []
        self._pending: List[Command] = []
        self._seen: set = set()
        self._applied: set = set()
        self._next_seq = 0
        self._slot = -1
        self._noop_timer = None
        self._instances: Dict[int, ConsensusProtocol] = {}
        self._apply_callbacks: List[Callable[[int, Any], None]] = []

    # ----------------------------------------------------------------- API
    def on_apply(self, callback: Callable[[int, Any], None]) -> None:
        """Register *callback(slot, command_payload)* for applied commands."""
        self._apply_callbacks.append(callback)

    def submit(self, payload: Any) -> Command:
        """Submit a command at this replica; it will eventually be applied
        at every correct replica (in the same log position everywhere)."""
        command: Command = (self.pid, self._next_seq, payload)
        self._next_seq += 1
        self.broadcast(("CMD", command), include_self=True, tag="cmd")
        return command

    @property
    def current_slot(self) -> int:
        """Index of the slot currently being agreed on."""
        return self._slot

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        self._open_slot(0)
        if self.rebroadcast_period is not None:
            self.periodically(self.rebroadcast_period, self._rebroadcast)

    def _rebroadcast(self) -> None:
        for command in self._pending:
            self.broadcast(("CMD", command), tag="cmd-retry")

    @staticmethod
    def _cid(command: Command) -> Tuple[ProcessId, int]:
        """Stable command identity (the payload itself may be unhashable)."""
        return (command[0], command[1])

    def on_message(self, src: ProcessId, payload: Any) -> None:
        kind, command = payload
        if kind != "CMD" or self._cid(command) in self._seen:
            return
        self._seen.add(self._cid(command))
        if self._cid(command) not in self._applied:
            self._pending.append(command)
            self._pending.sort(key=self._cid)
            self._unpark_idle_slot()

    # ------------------------------------------------------------- internals
    def _open_slot(self, slot: int) -> None:
        self._slot = slot
        if self._noop_timer is not None:
            # The previous slot decided while parked (its decision arrived
            # by broadcast before our CMD copy did): retire its timer.
            self._noop_timer[1].cancel()
            self._noop_timer = None
        rb = ReliableBroadcast(
            channel=f"{self.channel}.c{slot}.rb",
            retransmit_period=self.rebroadcast_period,
        )
        self.process.attach(rb)
        instance = self.consensus_cls(
            self.fd, rb, channel=f"{self.channel}.c{slot}",
            **self.consensus_kwargs,
        )
        self.process.attach(instance)
        self._instances[slot] = instance
        instance.on_decide(lambda value, s=slot: self._on_slot_decided(s, value))
        if self._pending or self.idle_grace is None:
            instance.propose(self._pending[0] if self._pending else NOOP)
        else:
            # Idle slot: park it; a CMD arrival or the grace timer (the
            # liveness fallback) proposes later.
            self._noop_timer = (
                slot, self.set_timer(self.idle_grace, self._grace_expired, slot)
            )

    def _unpark_idle_slot(self) -> None:
        """A command arrived while the current slot sat parked: propose."""
        if self._noop_timer is None or not self._pending:
            return
        slot, handle = self._noop_timer
        if slot != self._slot:
            self._noop_timer = None
            return
        handle.cancel()
        self._noop_timer = None
        self._propose_now(slot)

    def _grace_expired(self, slot: int) -> None:
        if self._noop_timer is not None and self._noop_timer[0] == slot:
            self._noop_timer = None
        if slot == self._slot:
            self._propose_now(slot)

    def _propose_now(self, slot: int) -> None:
        instance = self._instances[slot]
        if instance.proposed or instance.decided:
            return  # decided via broadcast while parked; nothing to add
        instance.propose(self._pending[0] if self._pending else NOOP)

    def _on_slot_decided(self, slot: int, value: Any) -> None:
        if value != NOOP:
            cid = self._cid(value)
            if cid not in self._applied:
                self._applied.add(cid)
                self.log.append(value[2])
                self.trace("apply", slot=slot, command=value[2])
                for callback in self._apply_callbacks:
                    callback(slot, value[2])
            self._pending = [c for c in self._pending if self._cid(c) != cid]
        self._open_slot(slot + 1)
