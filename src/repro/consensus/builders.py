"""Convenience builders wiring detector + broadcast + consensus stacks.

Every consensus component needs a local failure detector and a local
Reliable Broadcast instance; assembling those per process is boilerplate
that examples, tests and benchmarks all share — it lives here.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..fd.base import FailureDetector
from ..sim.world import World
from ..types import ProcessId
from .base import ConsensusProtocol
from .chandra_toueg import ChandraTouegConsensus
from .ec_consensus import ECConsensus
from .mostefaoui_raynal import MostefaouiRaynalConsensus
from .paxos import PaxosConsensus

__all__ = ["ALGORITHMS", "attach_consensus", "propose_all"]

#: Algorithm name -> constructor taking ``(fd, rb, channel=...)``.
ALGORITHMS = {
    "ec": ECConsensus,
    "ct": ChandraTouegConsensus,
    "mr": MostefaouiRaynalConsensus,
    "paxos": PaxosConsensus,
}


def attach_consensus(
    world: World,
    algo: str,
    fd_factory: Callable[[ProcessId], FailureDetector],
    channel: str = "consensus",
    **kwargs: Any,
) -> List[ConsensusProtocol]:
    """Attach a full consensus stack to every process of *world*.

    For each process this attaches ``fd_factory(pid)`` (channel ``fd``
    unless the factory sets its own), a :class:`ReliableBroadcast` on
    ``"<channel>.rb"``, and the consensus protocol *algo* (one of
    :data:`ALGORITHMS`) on *channel*.  Extra keyword arguments go to the
    protocol constructor.

    Returns the consensus components in pid order.
    """
    try:
        cls = ALGORITHMS[algo]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {algo!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    out: List[ConsensusProtocol] = []
    for pid in world.pids:
        fd = world.attach(pid, fd_factory(pid))
        rb = world.attach(pid, ReliableBroadcast(channel=f"{channel}.rb"))
        out.append(world.attach(pid, cls(fd, rb, channel=channel, **kwargs)))
    return out


def propose_all(
    protocols: Sequence[ConsensusProtocol],
    values: Optional[Sequence[Any]] = None,
) -> None:
    """Have every protocol instance propose (``values[pid]``, or its pid)."""
    for pid, protocol in enumerate(protocols):
        protocol.propose(values[pid] if values is not None else pid)
