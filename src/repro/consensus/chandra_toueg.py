"""Chandra–Toueg ◇S consensus (rotating coordinator) — baseline.

The classical centralized algorithm of [6], reproduced as the paper's main
comparison target:

* the coordinator of round *r* is process ``(r − 1) mod n`` — the *rotating
  coordinator paradigm* whose worst case Theorem 3 bounds;
* **Phase 1** — everyone sends ``(estimate, ts)`` to the round's coordinator;
* **Phase 2** — the coordinator waits for the first ⌈(n+1)/2⌉ estimates and
  proposes the one with the largest timestamp;
* **Phase 3** — each process waits for the proposal or suspicion of the
  coordinator; it adopts & acks the proposal, or nacks on suspicion;
* **Phase 4** — the coordinator waits for the first ⌈(n+1)/2⌉ replies and
  decides (via Reliable Broadcast) only if **all** of them are acks — the
  "one single negative reply blocks the decision" behaviour that the ◇C
  algorithm's majority-of-positives rule improves on (experiment E7).

4 phases per round, ≈3n messages per round in nice runs (Section 5.4).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..broadcast.reliable import ReliableBroadcast
from ..fd.base import FailureDetector
from ..sim.tasks import Sleep, WaitUntil
from ..types import ProcessId
from .base import ConsensusProtocol
from .ec_consensus import NULL

__all__ = ["ChandraTouegConsensus"]

_EST = "EST"
_PROP = "PROP"
_ACK = "ACK"
_NACK = "NACK"


class ChandraTouegConsensus(ConsensusProtocol):
    """Rotating-coordinator ◇S consensus (see module docstring)."""

    name = "ct"

    def __init__(
        self,
        fd: FailureDetector,
        rb: ReliableBroadcast,
        round_step: float = 0.01,
        channel: str = "consensus",
    ) -> None:
        super().__init__(channel)
        self.fd = fd
        self.rb = rb
        # Per-round local processing cost; see ECConsensus.round_step.
        self.round_step = round_step
        self._est_msgs: Dict[int, Dict[ProcessId, Tuple[Any, int]]] = {}
        self._props: Dict[int, Dict[ProcessId, Any]] = {}
        self._replies: Dict[int, Dict[ProcessId, bool]] = {}
        self.r = 0
        self.estimate: Any = None
        self.ts = 0

    # ------------------------------------------------------------- start-up
    def on_start(self) -> None:
        self.rb.on_deliver(self._on_rdeliver)

    def _on_propose(self, value: Any) -> None:
        self.estimate = value
        self.ts = 0
        self.r = 1
        self.spawn(self._main(), "main")

    def coordinator_of(self, r: int) -> ProcessId:
        """The rotating coordinator of round *r*."""
        return (r - 1) % self.n

    # --------------------------------------------------------- the main task
    def _main(self):
        majority = self.n // 2 + 1
        while not self.decided:
            if self.round_step:
                yield Sleep(self.round_step)
            if self.decided:
                return
            r = self.r
            coord = self.coordinator_of(r)
            self.mark_round(r)

            # Phase 1: all processes send their estimate to the coordinator.
            self.mark_phase(r, 1)
            self.send(coord, (_EST, r, self.estimate, self.ts), tag="est", round=r)

            proposal: Any = NULL
            if coord == self.pid:
                # Phase 2: wait for the first majority of estimates.
                self.mark_phase(r, 2)
                ests = self._est_msgs.setdefault(r, {})
                yield WaitUntil(lambda: self.decided or len(ests) >= majority)
                if self.decided:
                    return
                _, _, best = max(
                    ((est, ts, q) for q, (est, ts) in ests.items()),
                    key=lambda item: (item[1], -item[2]),
                )
                proposal = ests[best][0]
                self.broadcast(
                    (_PROP, r, proposal), include_self=True, tag="prop", round=r
                )

            # Phase 3: wait for the proposal or suspicion of the coordinator.
            self.mark_phase(r, 3)
            props = self._props.setdefault(r, {})
            suspected = self.fd.suspected
            yield WaitUntil(
                lambda: self.decided or coord in props or coord in suspected()
            )
            if self.decided:
                return
            if coord in props:
                self.estimate = props[coord]
                self.ts = r
                self.send(coord, (_ACK, r), tag="ack", round=r)
            else:
                self.send(coord, (_NACK, r), tag="nack", round=r)

            if coord == self.pid and proposal is not NULL:
                # Phase 4: first majority of replies; all must be positive.
                self.mark_phase(r, 4)
                replies = self._replies.setdefault(r, {})
                yield WaitUntil(lambda: self.decided or len(replies) >= majority)
                if self.decided:
                    return
                if all(replies.values()):
                    self.rb.rbroadcast(("DECIDE", self.channel, r, proposal))

            self.r = r + 1

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: Any) -> None:
        kind = payload[0]
        if kind == _EST:
            _, r, est, ts = payload
            self._est_msgs.setdefault(r, {})[src] = (est, ts)
        elif kind == _PROP:
            _, r, value = payload
            self._props.setdefault(r, {})[src] = value
        elif kind == _ACK:
            _, r = payload
            self._replies.setdefault(r, {})[src] = True
        elif kind == _NACK:
            _, r = payload
            self._replies.setdefault(r, {})[src] = False

    # --------------------------------------------------------------- deciding
    def _on_rdeliver(self, origin: ProcessId, payload: Any) -> None:
        if payload[0] == "DECIDE" and payload[1] == self.channel:
            _, _, r, value = payload
            self._decide(value, round=r)
