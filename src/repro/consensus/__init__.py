"""Consensus algorithms: the paper's ◇C-based protocol (Figs. 3–4) plus the
baselines it is evaluated against (Chandra–Toueg ◇S rotating coordinator,
Mostefaoui–Raynal Ω leader-based, single-decree Paxos) and a replicated
state machine built on repeated consensus."""

from .base import ConsensusProtocol
from .builders import ALGORITHMS, attach_consensus, propose_all
from .chandra_toueg import ChandraTouegConsensus
from .ec_consensus import ECConsensus, NULL
from .mostefaoui_raynal import MostefaouiRaynalConsensus
from .multi import BATCH, NOOP, ReplicatedStateMachine
from .paxos import PaxosConsensus
from .total_order import TotalOrderBroadcast

__all__ = [
    "ConsensusProtocol",
    "ALGORITHMS",
    "attach_consensus",
    "propose_all",
    "ChandraTouegConsensus",
    "ECConsensus",
    "NULL",
    "MostefaouiRaynalConsensus",
    "ReplicatedStateMachine",
    "BATCH",
    "NOOP",
    "PaxosConsensus",
    "TotalOrderBroadcast",
]
