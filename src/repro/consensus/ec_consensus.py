"""◇C-based Uniform Consensus (the paper's Figs. 3–4 — core contribution).

The algorithm proceeds in asynchronous rounds of five phases.  Unlike the
rotating-coordinator ◇S algorithms, the coordinator of a round is whoever
the ◇C detector's *leader election* output designates, so one round after
the detector stabilizes the (unique, unsuspected, correct) leader drives a
decision — Theorem 3 shows rotating coordinators can need n more rounds.

Round structure (main task, Fig. 3):

* **Phase 0** — a process whose ``D.trusted`` is itself becomes coordinator
  and announces itself to everybody; everyone else waits for an
  announcement.  An announcement for a *higher* round makes the waiting
  process jump to that round (footnote 2).
* **Phase 1** — send ``(estimate, ts)`` to the chosen coordinator.
* **Phase 2** (coordinator) — gather estimates until a majority has arrived
  **and** every non-suspected process has answered (the ◇C accuracy
  improvement); with a majority of *non-null* estimates, propose the one
  with the largest timestamp, else propose null.
* **Phase 3** — wait for the coordinator's proposition, stop early on
  suspicion or on a non-null proposition from another coordinator; adopt &
  ``ack`` non-null propositions, ``nack`` a suspected coordinator.
* **Phase 4** (coordinator that proposed non-null) — gather ack/nacks until
  a majority **and** every non-suspected process replied; with a majority
  of acks — *even in the presence of nacks* — R-broadcast the decision.

Concurrent tasks (Fig. 4): null estimates are sent to coordinators of
current/previous rounds other than one's own (so no coordinator blocks in
Phase 2), and non-null propositions from late coordinators are nacked (so
none blocks in Phase 4); decisions are taken upon R-delivery.

The ``merged_phase01`` flag implements the Section 5.4 variant that merges
Phases 0 and 1 — every process sends its estimate to its own leader and
null estimates to everyone else — trading the announcement phase for
Θ(n²) messages per round (ablation A1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..broadcast.reliable import ReliableBroadcast
from ..fd.base import FailureDetector
from ..sim.tasks import Sleep, WaitUntil
from ..types import ProcessId
from .base import ConsensusProtocol

__all__ = ["ECConsensus", "NULL"]


class _NullEstimate:
    """Singleton sentinel for the algorithm's ``null_estimate`` marker
    (distinct from ``None`` so user proposals may be any value)."""

    _instance: Optional["_NullEstimate"] = None

    def __new__(cls) -> "_NullEstimate":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NULL"


#: The null estimate/proposition marker.
NULL = _NullEstimate()

# Wire tags
_COORD = "COORD"
_EST = "EST"
_PROP = "PROP"
_ACK = "ACK"
_NACK = "NACK"


class ECConsensus(ConsensusProtocol):
    """Uniform Consensus from any ◇C detector (see module docstring).

    Parameters:
        fd: the local ◇C detector module (same process).
        rb: the local Reliable Broadcast component used for decisions.
        merged_phase01: enable the merged Phase 0/1 variant (A1).
    """

    name = "ec"

    def __init__(
        self,
        fd: FailureDetector,
        rb: ReliableBroadcast,
        merged_phase01: bool = False,
        round_step: float = 0.01,
        stubborn_period: Optional[float] = None,
        channel: str = "consensus",
    ) -> None:
        super().__init__(channel)
        self.fd = fd
        self.rb = rb
        self.merged_phase01 = merged_phase01
        # Stubborn-channel retransmission (see Component.enable_stubborn_
        # resend): lets the protocol survive runs that violate the
        # reliable-links model, e.g. network partitions.  None = off.
        self.stubborn_period = stubborn_period
        # Local processing cost charged at each round start.  Without it, a
        # process whose detector simultaneously elects and suspects the same
        # coordinator could start unboundedly many rounds at one simulated
        # instant (every wait already satisfied) — real processors cannot.
        self.round_step = round_step
        # Round-indexed message state.  Entries are never discarded: a round
        # may receive messages long after the process moved on.
        self._coord_annc: Dict[int, List[ProcessId]] = {}
        self._est_msgs: Dict[int, Dict[ProcessId, Tuple[Any, int]]] = {}
        self._props: Dict[int, Dict[ProcessId, Any]] = {}
        self._replies: Dict[int, Dict[ProcessId, bool]] = {}
        self._my_coord: Dict[int, ProcessId] = {}
        self._acked: Dict[int, ProcessId] = {}
        self._past_phase3: Set[int] = set()
        self._responded_est: Set[Tuple[int, ProcessId]] = set()
        self._nacked: Set[Tuple[int, ProcessId]] = set()
        self.r = 0
        self.estimate: Any = None
        self.ts = 0

    # ------------------------------------------------------------- start-up
    def on_start(self) -> None:
        self.rb.on_deliver(self._on_rdeliver)
        if self.stubborn_period is not None:
            self.enable_stubborn_resend(self.stubborn_period)

    def _on_propose(self, value: Any) -> None:
        self.estimate = value
        self.ts = 0
        self.r = 1
        self.spawn(self._main(), "main")

    # --------------------------------------------------------- the main task
    def _main(self):
        majority = self.n // 2 + 1
        while not self.decided:
            if self.round_step:
                yield Sleep(self.round_step)
            if self.decided:
                return
            r = self.r
            self.mark_round(r)
            if self.merged_phase01:
                coord = yield from self._merged_phase01(r)
            else:
                coord = yield from self._phase0(r)
                if coord is None:
                    continue  # jumped rounds (or decided)
                yield from self._phase1(r, coord)
            if self.decided:
                return
            if coord is None:
                continue
            decidable = False
            proposal: Any = NULL
            if coord == self.pid:
                decidable, proposal = yield from self._phase2(r, majority)
            if self.decided:
                return
            yield from self._phase3(r, coord)
            if self.decided:
                return
            if decidable:
                yield from self._phase4(r, majority, proposal)
            if self.r == r:
                self.r = r + 1

    # ---------------------------------------------------------------- phases
    def _phase0(self, r: int):
        """Determine the coordinator of round *r* (or jump to a higher
        round).  Returns the coordinator pid, or ``None`` after a jump."""
        self.mark_phase(r, 0)
        yield WaitUntil(
            lambda: self.decided
            or self.fd.trusted() == self.pid
            or self._best_announced(r) is not None
        )
        if self.decided:
            return None
        announced = self._best_announced(r)
        if announced is not None:
            ann_round, ann_coord = announced
            if ann_round > r:
                self.r = ann_round
                self._enter_round(ann_round, ann_coord)
                return None
            self._enter_round(r, ann_coord)
            return ann_coord
        # We trust ourselves: become coordinator and announce.
        self._enter_round(r, self.pid)
        self.broadcast((_COORD, r), tag="coord", round=r)
        return self.pid

    def _phase1(self, r: int, coord: ProcessId):
        """Send the current estimate to the coordinator."""
        self.mark_phase(r, 1)
        self._responded_est.add((r, coord))
        self.send(coord, (_EST, r, self.estimate, self.ts), tag="est", round=r)
        return
        yield  # pragma: no cover - makes this a generator

    def _merged_phase01(self, r: int):
        """A1 variant: estimate to own leader, nulls to everyone else."""
        self.mark_phase(r, 1)
        yield WaitUntil(
            lambda: self.decided
            or self.fd.trusted() is not None
            or self._max_seen_round(r) is not None
        )
        if self.decided:
            return None
        jump = self._max_seen_round(r)
        if jump is not None:
            self.r = jump
            self._enter_round(jump, None)
            return None
        coord = self.fd.trusted()
        self._enter_round(r, coord)
        self._responded_est.add((r, coord))
        self.send(coord, (_EST, r, self.estimate, self.ts), tag="est", round=r)
        for q in range(self.n):
            if q != self.pid and q != coord:
                self._responded_est.add((r, q))
                self.send(q, (_EST, r, NULL, 0), tag="null-est", round=r)
        return coord

    def _phase2(self, r: int, majority: int):
        """Coordinator: gather estimates, then propose."""
        self.mark_phase(r, 2)
        ests = self._est_msgs.setdefault(r, {})
        suspected = self.fd.suspected

        def gathered() -> bool:
            return (
                len(ests) >= majority
                and all(
                    q in ests or q in suspected() or q == self.pid
                    for q in range(self.n)
                )
                and self.pid in ests
            )

        yield WaitUntil(
            lambda: self.decided
            or gathered()
            or (self.merged_phase01 and self._max_seen_round(r) is not None)
        )
        if self.decided:
            return False, NULL
        if self.merged_phase01 and not gathered():
            # Merged variant only: without Phase 0 announcements, round
            # catch-up happens by observing higher-round traffic.  Abandon
            # this round; participants escape their Phase 3 the same way.
            jump = self._max_seen_round(r)
            self.r = jump  # type: ignore[assignment]
            self._enter_round(jump, None)  # type: ignore[arg-type]
            return False, NULL
        non_null = [(est, ts, q) for q, (est, ts) in ests.items() if est is not NULL]
        if len(non_null) >= majority:
            # Largest timestamp wins; pid breaks ties deterministically.
            _, _, best = max(non_null, key=lambda item: (item[1], -item[2]))
            proposal = ests[best][0]
            self.broadcast(
                (_PROP, r, proposal), include_self=True, tag="prop", round=r
            )
            return True, proposal
        self.broadcast((_PROP, r, NULL), include_self=True, tag="null-prop", round=r)
        return False, NULL

    def _phase3(self, r: int, coord: ProcessId):
        """Wait for a proposition; adopt/ack, pass on null, nack a suspect."""
        self.mark_phase(r, 3)
        props = self._props.setdefault(r, {})
        suspected = self.fd.suspected

        def actionable() -> bool:
            return (
                coord in props
                or coord in suspected()
                or any(v is not NULL for v in props.values())
            )

        yield WaitUntil(
            lambda: self.decided
            or actionable()
            or (self.merged_phase01 and self._max_seen_round(r) is not None)
        )
        if self.decided:
            return
        if self.merged_phase01 and not actionable():
            # Merged-variant round catch-up (see _phase2).  Obligations to
            # the coordinators of the skipped rounds are settled by
            # _enter_round / the late-nack rule.
            jump = self._max_seen_round(r)
            self.r = jump  # type: ignore[assignment]
            self._enter_round(jump, None)  # type: ignore[arg-type]
            return
        chosen: Optional[ProcessId] = None
        if props.get(coord, NULL) is not NULL and coord in props:
            chosen = coord
        else:
            for sender, value in props.items():
                if value is not NULL:
                    chosen = sender
                    break
        if chosen is not None:
            # Adopt the proposition and ack its coordinator.
            self.estimate = props[chosen]
            self.ts = r
            self._acked[r] = chosen
            self.send(chosen, (_ACK, r), tag="ack", round=r)
        elif coord in props:
            pass  # null proposition from our coordinator: move on silently
        else:
            # We came to suspect our coordinator.
            self._nacked.add((r, coord))
            self.send(coord, (_NACK, r), tag="nack", round=r)
        self._past_phase3.add(r)

    def _phase4(self, r: int, majority: int, proposal: Any):
        """Coordinator that proposed non-null: gather acks, maybe decide."""
        self.mark_phase(r, 4)
        replies = self._replies.setdefault(r, {})
        suspected = self.fd.suspected
        yield WaitUntil(
            lambda: self.decided
            or (
                len(replies) >= majority
                and all(
                    q in replies or q in suspected() or q == self.pid
                    for q in range(self.n)
                )
                and self.pid in replies
            )
        )
        if self.decided:
            return
        acks = sum(1 for positive in replies.values() if positive)
        if acks >= majority:
            # Majority of positive replies suffices even alongside nacks —
            # the paper's improvement over the one-nack-blocks rule.
            self.rb.rbroadcast(("DECIDE", self.channel, r, proposal))

    # ------------------------------------------------------- round accounting
    def _enter_round(self, r: int, coord: Optional[ProcessId]) -> None:
        """Fix our coordinator for round *r* and settle obligations to
        coordinators of now-previous rounds (Fig. 4 tasks 1 and 2 for
        announcements/propositions that were buffered while we advanced).
        Settled rounds are then pruned: messages for rounds below the
        current one are always answered immediately on arrival, so their
        buffers can never be read again — without pruning, runs with long
        unstable prefixes (thousands of rounds) degrade quadratically."""
        if coord is not None:
            self._my_coord[r] = coord
        for ann_round, senders in self._coord_annc.items():
            if ann_round > r:
                continue
            for sender in senders:
                if ann_round == r and sender == coord:
                    continue
                self._send_null_est(ann_round, sender)
        for prop_round, senders in self._props.items():
            if prop_round >= r:
                continue
            for sender, value in senders.items():
                self._maybe_late_nack(prop_round, sender, value)
        self._prune_below(r)

    def _prune_below(self, r: int) -> None:
        """Drop all buffered state for rounds < *r* (see _enter_round)."""
        for store in (
            self._coord_annc,
            self._est_msgs,
            self._props,
            self._replies,
            self._my_coord,
            self._acked,
        ):
            stale = [rr for rr in store if rr < r]
            for rr in stale:
                del store[rr]
        self._past_phase3 = {rr for rr in self._past_phase3 if rr >= r}
        self._responded_est = {
            key for key in self._responded_est if key[0] >= r
        }
        self._nacked = {key for key in self._nacked if key[0] >= r}

    def _send_null_est(self, r: int, coord: ProcessId) -> None:
        if (r, coord) in self._responded_est:
            return
        self._responded_est.add((r, coord))
        self.send(coord, (_EST, r, NULL, 0), tag="null-est", round=r)

    def _maybe_late_nack(self, r: int, sender: ProcessId, value: Any) -> None:
        if value is NULL:
            return
        if self._acked.get(r) == sender or (r, sender) in self._nacked:
            return
        self._nacked.add((r, sender))
        self.send(sender, (_NACK, r), tag="nack", round=r)

    def _best_announced(self, r: int) -> Optional[Tuple[int, ProcessId]]:
        """The highest-round announcement with round >= *r* (first sender
        wins within a round), or ``None``."""
        best: Optional[Tuple[int, ProcessId]] = None
        for ann_round, senders in self._coord_annc.items():
            if ann_round >= r and senders and (best is None or ann_round > best[0]):
                best = (ann_round, senders[0])
        return best

    def _max_seen_round(self, r: int) -> Optional[int]:
        """Merged variant: highest round > *r* seen in any message."""
        best = None
        for store in (self._est_msgs, self._props):
            for seen_round in store:
                if seen_round > r and (best is None or seen_round > best):
                    best = seen_round
        return best

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: Any) -> None:
        kind = payload[0]
        if kind == _COORD:
            _, r = payload
            self._coord_annc.setdefault(r, []).append(src)
            if r < self.r:
                self._send_null_est(r, src)
            elif r == self.r and self.r in self._my_coord and src != self._my_coord[self.r]:
                self._send_null_est(r, src)
            # Otherwise the Phase 0 wait predicate consumes the buffer.
        elif kind == _EST:
            _, r, est, ts = payload
            self._est_msgs.setdefault(r, {})[src] = (est, ts)
        elif kind == _PROP:
            _, r, value = payload
            self._props.setdefault(r, {})[src] = value
            if value is not NULL and (
                r < self.r or (r in self._past_phase3 and self._acked.get(r) != src)
            ):
                self._maybe_late_nack(r, src, value)
        elif kind == _ACK:
            _, r = payload
            self._replies.setdefault(r, {})[src] = True
        elif kind == _NACK:
            _, r = payload
            self._replies.setdefault(r, {})[src] = False

    # --------------------------------------------------------------- deciding
    def _on_rdeliver(self, origin: ProcessId, payload: Any) -> None:
        if payload[0] == "DECIDE" and payload[1] == self.channel:
            _, _, r, value = payload
            self._decide(value, round=r)
