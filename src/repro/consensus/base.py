"""Base class shared by every consensus protocol in the library.

A consensus component receives a proposal through :meth:`propose` and
eventually decides by calling :meth:`_decide` exactly once (Uniform
Integrity is enforced here: late duplicate decisions are ignored, and a
*conflicting* duplicate — which would indicate a protocol bug — raises).

All protocols emit structured trace events so the analysis layer can measure
rounds, phases and message complexity without protocol-specific knowledge:

* ``propose`` (value) — once per process;
* ``round`` (algo, round) — on entering each round;
* ``phase`` (algo, round, phase) — on entering each phase of a round;
* ``decide`` (algo, value, round) — once per deciding process.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import ProtocolError
from ..sim.component import Component
from ..types import Time

__all__ = ["ConsensusProtocol"]


class ConsensusProtocol(Component):
    """Abstract base for consensus algorithms (see module docstring)."""

    #: Short algorithm label used in traces and benchmark tables.
    name: str = "consensus"

    def __init__(self, channel: str = "consensus") -> None:
        super().__init__(channel)
        self.proposal: Any = None
        self.proposed = False
        self.decision: Any = None
        self.decided = False
        self.decision_round: Optional[int] = None
        self.decision_time: Optional[Time] = None
        self._decide_callbacks: List[Callable[[Any], None]] = []
        self._last_phase_mark: Optional[tuple] = None

    # ----------------------------------------------------------------- API
    def propose(self, value: Any) -> None:
        """Submit this process's initial value.  May be called once."""
        if self.proposed:
            raise ProtocolError(f"process {self.pid} already proposed")
        if self.crashed:
            return
        self.proposal = value
        self.proposed = True
        self.trace("propose", algo=self.name, value=value)
        self.metrics.inc("consensus_proposals_total", algo=self.name)
        self._on_propose(value)

    def on_decide(self, callback: Callable[[Any], None]) -> None:
        """Register *callback(value)* to run when this process decides."""
        self._decide_callbacks.append(callback)

    # ------------------------------------------------------------ subclasses
    def _on_propose(self, value: Any) -> None:
        """Protocol hook: start executing with the given initial value."""
        raise NotImplementedError

    def _decide(self, value: Any, round: Optional[int] = None) -> None:
        """Record the (single) decision of this process."""
        if self.decided:
            if value != self.decision:
                raise ProtocolError(
                    f"process {self.pid} decided twice with different values: "
                    f"{self.decision!r} then {value!r}"
                )
            return
        self.decided = True
        self.decision = value
        self.decision_round = round
        self.decision_time = self.now
        self.trace("decide", algo=self.name, value=value, round=round)
        self.metrics.inc("consensus_decisions_total", algo=self.name)
        for callback in self._decide_callbacks:
            callback(value)
        # A decision may unblock waits like ``... or self.decided``.
        self.tasks.poke()

    # --------------------------------------------------------------- tracing
    def mark_round(self, round: int) -> None:
        """Trace entry into *round*."""
        self.trace("round", algo=self.name, round=round)
        self.metrics.inc("consensus_rounds_total", algo=self.name)

    def mark_phase(self, round: int, phase: int) -> None:
        """Trace entry into *phase* of *round* (consecutive duplicates are
        collapsed)."""
        key = (round, phase)
        if key == self._last_phase_mark:
            return
        self._last_phase_mark = key
        self.trace("phase", algo=self.name, round=round, phase=phase)
