"""Total-order (atomic) broadcast from repeated consensus.

Chandra & Toueg's classic equivalence — the paper's consensus algorithms
exist precisely because atomic broadcast reduces to consensus — deserves a
first-class API: :class:`TotalOrderBroadcast` wraps the replicated log of
:mod:`repro.consensus.multi` behind the standard ``to_broadcast`` /
``to_deliver`` interface and guarantees:

* **validity** — a correct broadcaster's message is eventually delivered;
* **uniform agreement** — if any process TO-delivers m, all correct do;
* **uniform integrity** — each message TO-delivered at most once;
* **total order** — any two processes deliver common messages in the same
  order.

The total-order property is what the tests verify structurally: delivery
sequences at different replicas are always prefix-comparable.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, Type

from ..fd.base import FailureDetector
from ..sim.component import Component
from ..types import ProcessId
from .base import ConsensusProtocol
from .ec_consensus import ECConsensus
from .multi import ReplicatedStateMachine

__all__ = ["TotalOrderBroadcast"]


class TotalOrderBroadcast(Component):
    """Atomic broadcast over a replicated log (see module docstring)."""

    channel = "tob"

    def __init__(
        self,
        fd: FailureDetector,
        consensus_cls: Type[ConsensusProtocol] = ECConsensus,
        channel: str = "tob",
        max_batch: int = 1,
        pipeline_depth: int = 1,
    ) -> None:
        super().__init__(channel)
        self.fd = fd
        self.consensus_cls = consensus_cls
        # Forwarded to the underlying log verbatim; the 1/1 defaults keep
        # the historical one-message-per-slot delivery schedule that the
        # deterministic broadcast tests pin.
        self.max_batch = max_batch
        self.pipeline_depth = pipeline_depth
        self._rsm: Optional[ReplicatedStateMachine] = None
        self._callbacks: List[Callable[[ProcessId, Any], None]] = []
        self.delivered: List[Tuple[ProcessId, Any]] = []

    # ----------------------------------------------------------------- API
    def to_broadcast(self, payload: Any) -> None:
        """TO-broadcast *payload*; it will be TO-delivered in the same
        position of every correct process's delivery sequence."""
        assert self._rsm is not None, "component not started"
        self._rsm.submit((self.pid, payload))

    def on_to_deliver(self, callback: Callable[[ProcessId, Any], None]) -> None:
        """Register *callback(origin, payload)* for every TO-delivery."""
        self._callbacks.append(callback)

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        self._rsm = ReplicatedStateMachine(
            self.fd,
            consensus_cls=self.consensus_cls,
            channel=f"{self.channel}.log",
            max_batch=self.max_batch,
            pipeline_depth=self.pipeline_depth,
        )
        self.process.attach(self._rsm)
        self._rsm.on_apply(self._on_apply)

    def _on_apply(self, slot: int, wrapped: Any) -> None:
        # ``to_broadcast`` wrapped the user payload as (origin, payload).
        origin, payload = wrapped
        self.delivered.append((origin, payload))
        self.trace("todeliver", origin=origin)
        for callback in self._callbacks:
            callback(origin, payload)
