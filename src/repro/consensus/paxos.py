"""Single-decree Paxos (synod) — extension baseline.

The paper discusses Paxos as the first consensus algorithm that selects
coordinators through a leader-election mechanism rather than rotation.  This
module provides a classic single-decree synod so benchmarks can place the
◇C algorithm next to it: proposers are driven by an Ω/◇C detector (a process
attempts a ballot while it trusts itself), ballots are ``(attempt, pid)``
pairs, and acceptors follow the standard promise/accept rules.  Decisions
are disseminated by Reliable Broadcast, like the other protocols here, so
the property checkers apply unchanged.

The safety core is pure Paxos — at most one value can be chosen per ballot
history; the Ω detector only affects liveness (who keeps trying).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..broadcast.reliable import ReliableBroadcast
from ..fd.base import FailureDetector
from ..types import ProcessId, Time
from .base import ConsensusProtocol

__all__ = ["PaxosConsensus"]

Ballot = Tuple[int, ProcessId]

_PREPARE = "1A"
_PROMISE = "1B"
_ACCEPT = "2A"
_ACCEPTED = "2B"
_PREEMPTED = "NACK"


class PaxosConsensus(ConsensusProtocol):
    """Ω-driven single-decree Paxos (see module docstring).

    Parameters:
        fd: local Ω/◇C detector; a process runs ballots while it trusts
            itself.
        rb: Reliable Broadcast for decision dissemination.
        retry_period: how long a proposer waits on a stalled ballot before
            starting a higher one.
    """

    name = "paxos"

    def __init__(
        self,
        fd: FailureDetector,
        rb: ReliableBroadcast,
        retry_period: Time = 20.0,
        channel: str = "consensus",
    ) -> None:
        super().__init__(channel)
        self.fd = fd
        self.rb = rb
        self.retry_period = retry_period
        # Acceptor state.
        self._promised: Optional[Ballot] = None
        self._accepted: Optional[Tuple[Ballot, Any]] = None
        # Proposer state.
        self._attempt = 0
        self._ballot: Optional[Ballot] = None
        self._promises: Dict[ProcessId, Optional[Tuple[Ballot, Any]]] = {}
        self._accepts: Set[ProcessId] = set()
        self._phase2_sent = False

    # ------------------------------------------------------------- start-up
    def on_start(self) -> None:
        self.rb.on_deliver(self._on_rdeliver)

    def _on_propose(self, value: Any) -> None:
        self._try_ballot()
        self.periodically(self.retry_period, self._retry)

    # --------------------------------------------------------------- proposer
    def _retry(self) -> None:
        if not self.decided:
            self._try_ballot()

    def _try_ballot(self) -> None:
        """Start a new, higher ballot if we currently trust ourselves."""
        if self.decided or self.fd.trusted() != self.pid:
            return
        self._attempt += 1
        self._ballot = (self._attempt, self.pid)
        self._promises = {}
        self._accepts = set()
        self._phase2_sent = False
        self.trace("round", algo=self.name, round=self._attempt)
        self.mark_phase(self._attempt, 1)
        self.broadcast((_PREPARE, self._ballot), include_self=True, tag="prepare")

    def _on_promise(
        self,
        src: ProcessId,
        ballot: Ballot,
        accepted: Optional[Tuple[Ballot, Any]],
    ) -> None:
        if ballot != self._ballot or self._phase2_sent:
            return
        self._promises[src] = accepted
        if len(self._promises) >= self.n // 2 + 1:
            self._phase2_sent = True
            prior = [a for a in self._promises.values() if a is not None]
            if prior:
                value = max(prior, key=lambda item: item[0])[1]
            else:
                value = self.proposal
            self.mark_phase(self._attempt, 2)
            self.broadcast(
                (_ACCEPT, ballot, value), include_self=True, tag="accept"
            )

    def _on_accepted(self, src: ProcessId, ballot: Ballot, value: Any) -> None:
        if ballot != self._ballot or not self._phase2_sent:
            return
        self._accepts.add(src)
        if len(self._accepts) >= self.n // 2 + 1:
            self.rb.rbroadcast(("DECIDE", self.channel, ballot[0], value))

    def _on_preempted(self, higher: Ballot) -> None:
        # Fast-forward our attempt counter so the next ballot wins numbering.
        self._attempt = max(self._attempt, higher[0])

    # --------------------------------------------------------------- acceptor
    def _acceptor(self, src: ProcessId, kind: str, payload: Any) -> None:
        if kind == _PREPARE:
            (ballot,) = payload
            if self._promised is None or ballot > self._promised:
                self._promised = ballot
                self.send(src, (_PROMISE, ballot, self._accepted), tag="promise")
            else:
                self.send(src, (_PREEMPTED, self._promised), tag="preempted")
        elif kind == _ACCEPT:
            ballot, value = payload
            if self._promised is None or ballot >= self._promised:
                self._promised = ballot
                self._accepted = (ballot, value)
                self.send(src, (_ACCEPTED, ballot, value), tag="accepted")
            else:
                self.send(src, (_PREEMPTED, self._promised), tag="preempted")

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: Any) -> None:
        kind = payload[0]
        if kind in (_PREPARE, _ACCEPT):
            self._acceptor(src, kind, payload[1:])
        elif kind == _PROMISE:
            _, ballot, accepted = payload
            self._on_promise(src, ballot, accepted)
        elif kind == _ACCEPTED:
            _, ballot, value = payload
            self._on_accepted(src, ballot, value)
        elif kind == _PREEMPTED:
            self._on_preempted(payload[1])

    # --------------------------------------------------------------- deciding
    def _on_rdeliver(self, origin: ProcessId, payload: Any) -> None:
        if payload[0] == "DECIDE" and payload[1] == self.channel:
            _, _, r, value = payload
            self._decide(value, round=r)
