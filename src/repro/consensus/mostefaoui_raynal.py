"""Mostefaoui–Raynal-style Ω-based consensus — baseline (reconstruction).

The paper compares its ◇C algorithm against the leader-based consensus of
Mostefaoui & Raynal (PPL 11(1), 2001).  The original text was not available
offline, so this module implements a documented reconstruction that matches
every property the paper states about the algorithm (DESIGN.md §2):

* no rotating coordinator — the coordinator role is played by whatever
  process each participant's **Ω** detector currently trusts;
* **3 phases per round, each beginning with a broadcast** (Θ(n²) —
  concretely ≈3n(n−1) ≈ 3n² messages per round, Section 5.4);
* every quorum wait is for exactly **n − f** messages, where *f* is the a
  priori bound on failures (with only a majority assumption, n − f is a bare
  majority), so "a small number of negative replies can block the decision"
  — the behaviour experiment E7 contrasts with ◇C;
* decides one round after Ω stabilizes.

Round structure:

* **Phase 1 (EST)** — broadcast ``(estimate, ts)``; wait until the estimate
  of the *currently trusted* process for this round is known (the Ω output
  is re-read whenever it changes, so a crashed leader stalls nobody), then
  take that estimate as the round's candidate value.
* **Phase 2 (FILTER)** — broadcast the candidate (or null); wait for n − f
  phase-2 messages; keep the value only if **all** n − f agree on it (any
  two (n−f)-quorums intersect, so at most one non-null value system-wide
  survives this phase — the safety core).
* **Phase 3 (VOTE)** — broadcast the filtered value (or null); wait for
  n − f votes; decide (by Reliable Broadcast) if all are the same non-null
  value; adopt it as the new estimate if at least one is non-null.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..fd.base import FailureDetector
from ..sim.tasks import WaitUntil
from ..types import ProcessId
from .base import ConsensusProtocol
from .ec_consensus import NULL

__all__ = ["MostefaouiRaynalConsensus"]

_EST = "MR-EST"
_FILTER = "MR-FILTER"
_VOTE = "MR-VOTE"


class MostefaouiRaynalConsensus(ConsensusProtocol):
    """Leader-based Ω consensus, quorum size n − f (see module docstring).

    Parameters:
        fd: local Ω (or ◇C — only ``trusted`` is read) detector.
        rb: local Reliable Broadcast for decisions.
        f: upper bound on crashes; defaults to the bare-majority bound
            ``ceil(n/2) - 1``, the "only f < n/2 is known" setting.
    """

    name = "mr"

    def __init__(
        self,
        fd: FailureDetector,
        rb: ReliableBroadcast,
        f: Optional[int] = None,
        channel: str = "consensus",
    ) -> None:
        super().__init__(channel)
        self.fd = fd
        self.rb = rb
        self.f = f
        self._ests: Dict[int, Dict[ProcessId, Any]] = {}
        self._filters: Dict[int, Dict[ProcessId, Any]] = {}
        self._votes: Dict[int, Dict[ProcessId, Any]] = {}
        self.r = 0
        self.estimate: Any = None

    # ------------------------------------------------------------- start-up
    def on_start(self) -> None:
        if self.f is None:
            self.f = (self.n - 1) // 2
        if not 0 <= self.f < self.n / 2:
            raise ConfigurationError("MR consensus requires 0 <= f < n/2")
        self.rb.on_deliver(self._on_rdeliver)

    def _on_propose(self, value: Any) -> None:
        self.estimate = value
        self.r = 1
        self.spawn(self._main(), "main")

    # --------------------------------------------------------- the main task
    def _main(self):
        quorum = self.n - self.f  # type: ignore[operator]
        while not self.decided:
            r = self.r
            self.mark_round(r)

            # Phase 1 (EST): broadcast, then wait for the leader's estimate.
            self.mark_phase(r, 1)
            ests = self._ests.setdefault(r, {})
            self.broadcast((_EST, r, self.estimate), include_self=True,
                           tag="est", round=r)
            trusted = self.fd.trusted
            yield WaitUntil(
                lambda: self.decided
                or (trusted() is not None and trusted() in ests)
            )
            if self.decided:
                return
            candidate = ests[trusted()]

            # Phase 2 (FILTER): unanimous n-f quorum or null.
            self.mark_phase(r, 2)
            filters = self._filters.setdefault(r, {})
            self.broadcast((_FILTER, r, candidate), include_self=True,
                           tag="filter", round=r)
            yield WaitUntil(lambda: self.decided or len(filters) >= quorum)
            if self.decided:
                return
            values = list(filters.values())
            if all(v is not NULL and v == values[0] for v in values):
                aux = values[0]
            else:
                aux = NULL

            # Phase 3 (VOTE): decide on unanimity, adopt on any support.
            self.mark_phase(r, 3)
            votes = self._votes.setdefault(r, {})
            self.broadcast((_VOTE, r, aux), include_self=True,
                           tag="vote", round=r)
            yield WaitUntil(lambda: self.decided or len(votes) >= quorum)
            if self.decided:
                return
            vote_values = list(votes.values())
            non_null = [v for v in vote_values if v is not NULL]
            if non_null and len(non_null) == len(vote_values):
                self.rb.rbroadcast(("DECIDE", self.channel, r, non_null[0]))
            if non_null:
                self.estimate = non_null[0]

            self.r = r + 1

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: Any) -> None:
        kind, r, value = payload
        if kind == _EST:
            self._ests.setdefault(r, {})[src] = value
        elif kind == _FILTER:
            self._filters.setdefault(r, {})[src] = value
        elif kind == _VOTE:
            self._votes.setdefault(r, {})[src] = value

    # --------------------------------------------------------------- deciding
    def _on_rdeliver(self, origin: ProcessId, payload: Any) -> None:
        if payload[0] == "DECIDE" and payload[1] == self.channel:
            _, _, r, value = payload
            self._decide(value, round=r)
