"""The ◇P → ◇C reduction (Section 3).

With ◇P, eventually every correct process's suspect set equals the set of
actually-crashed processes, so "the first process not in the suspect set"
(in the total order of the system model) is eventually the same correct
process at every correct process — an Ω output for free.  No messages are
exchanged.
"""

from __future__ import annotations

from typing import Optional

from ..fd.base import FailureDetector, first_non_suspected

__all__ = ["PToC"]


class PToC(FailureDetector):
    """◇C view over a local ◇P (or P) source."""

    def __init__(self, p_source: FailureDetector, channel: str = "fd") -> None:
        super().__init__(channel)
        self.p_source = p_source

    def on_start(self) -> None:
        self.p_source.subscribe(self._recompute)
        self._recompute()
        super().on_start()

    def _recompute(self, _source: Optional[FailureDetector] = None) -> None:
        suspected = self.p_source.suspected()
        trusted = first_non_suspected(suspected, self.n)
        if trusted is not None:
            suspected = suspected - {trusted}
        self._set_output(suspected=suspected, trusted=trusted)
