"""The ◇S → ◇C transformation (Section 3, via the ◇W/◇S → Ω reductions of
Chandra–Hadzilacos–Toueg and Chu).

Each process periodically **R-broadcasts** the suspect set of its local ◇S
source.  Every process counts, for each process *q*, how many delivered
reports contained *q*.  The trusted process is the one minimizing
``(count, pid)``:

* a crashed process is eventually in *every* report of every correct
  process (strong completeness), so its count grows without bound;
* the eventual leader ℓ of ◇S's weak accuracy appears in only finitely many
  reports, so its count freezes;
* because reports travel by *Reliable Broadcast*, every correct process
  delivers exactly the same multiset of reports eventually, so frozen counts
  are eventually identical everywhere and the argmin stabilizes on the same
  correct process at every correct process — the Ω property.

The suspect-set output is passed through from the ◇S source (minus the
trusted process, per Definition 1's third clause).  As the paper notes,
this route is correct but expensive — every process broadcasts periodically,
and each report costs a full Reliable Broadcast (Θ(n²) messages).
"""

from __future__ import annotations

from typing import Dict

from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..fd.base import FailureDetector
from ..types import ProcessId, Time

__all__ = ["SToC"]


class SToC(FailureDetector):
    """◇C built from a local ◇S source via report counting over R-broadcast.

    The component owns a private :class:`ReliableBroadcast` instance on
    channel ``"<channel>.rb"``, which must be attached to the same process
    *before* this component (:func:`attach_s_to_c_stack` handles wiring).
    """

    def __init__(
        self,
        s_source: FailureDetector,
        rb: ReliableBroadcast,
        period: Time = 5.0,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.s_source = s_source
        self.rb = rb
        self.period = period
        self._counts: Dict[ProcessId, int] = {}

    def on_start(self) -> None:
        self._counts = {q: 0 for q in range(self.n)}
        self.rb.on_deliver(self._on_report)
        self.s_source.subscribe(self._recompute)
        self._recompute()
        super().on_start()
        self._report()
        self.periodically(self.period, self._report)

    # ------------------------------------------------------------ reporting
    def _report(self) -> None:
        self.rb.rbroadcast(("SUSPECT-REPORT", self.s_source.suspected()))

    def _on_report(self, origin: ProcessId, payload: object) -> None:
        kind, suspected = payload  # type: ignore[misc]
        if kind != "SUSPECT-REPORT":  # pragma: no cover - defensive
            return
        for q in suspected:
            self._counts[q] += 1
        self._recompute()

    # ---------------------------------------------------------------- output
    def _recompute(self, _source: object = None) -> None:
        trusted = min(range(self.n), key=lambda q: (self._counts[q], q))
        suspected = self.s_source.suspected() - {trusted}
        self._set_output(suspected=suspected, trusted=trusted)

    def count_of(self, q: ProcessId) -> int:
        """Number of delivered reports that contained *q* (introspection)."""
        return self._counts[q]


def attach_s_to_c_stack(world, s_factory, period: float = 5.0, channel: str = "fd"):
    """Attach ``s_factory(pid)`` (a ◇S detector) plus the :class:`SToC`
    transformation (and its private Reliable Broadcast) to every process.

    Returns the per-process :class:`SToC` instances in pid order.
    """
    out = []
    for pid in world.pids:
        source = world.attach(pid, s_factory(pid))
        rb = world.attach(pid, ReliableBroadcast(channel=f"{channel}.rb"))
        out.append(
            world.attach(pid, SToC(source, rb, period=period, channel=channel))
        )
    return out
