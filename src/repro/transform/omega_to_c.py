"""The trivial Ω → ◇C reduction (Section 3).

``D.trusted`` is taken directly from the Ω source; ``D.suspected`` is
*everyone except the trusted process*.  The paper: "This transformation is
very simple and efficient (no extra messages are needed).  However, it
offers very poor accuracy."  Ablation A2 quantifies that poor accuracy
against the ◇S-based compositions.
"""

from __future__ import annotations

from typing import Optional

from ..fd.base import FailureDetector

__all__ = ["OmegaToC"]


class OmegaToC(FailureDetector):
    """◇C view over a local Ω source, with complement suspect sets."""

    def __init__(self, omega_source: FailureDetector, channel: str = "fd") -> None:
        super().__init__(channel)
        self.omega_source = omega_source

    def on_start(self) -> None:
        self.omega_source.subscribe(self._recompute)
        self._recompute()
        super().on_start()

    def _recompute(self, _source: Optional[FailureDetector] = None) -> None:
        leader = self.omega_source.trusted()
        suspected = frozenset(
            q for q in range(self.n) if q != leader and q != self.pid
        )
        self._set_output(suspected=suspected, trusted=leader)
