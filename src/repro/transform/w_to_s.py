"""The ◇W → ◇S transformation (Chandra–Toueg, as cited in Section 3).

Every process periodically broadcasts the suspect set of its local ◇W
source.  On receiving a report ``S`` from ``q``, a process updates its
output to ``(output ∪ S) − {q}``: gossip spreads suspicions (upgrading weak
completeness to strong — a crashed process is eventually reported by its
witness and, never sending reports itself, is never removed), while every
report doubles as proof that its *sender* is alive (preserving eventual weak
accuracy — once nobody's ◇W suspects the eventual leader, no report re-adds
it and the leader's own reports keep removing it everywhere).

Cost: n·(n−1) messages per period — the "expensive" price the paper notes
for taking the ◇W/◇S route to ◇C.
"""

from __future__ import annotations

from typing import FrozenSet

from ..errors import ConfigurationError
from ..fd.base import FailureDetector
from ..types import ProcessId, Time

__all__ = ["WToS"]


class WToS(FailureDetector):
    """Gossip amplification of weak completeness into strong completeness."""

    def __init__(
        self,
        w_source: FailureDetector,
        period: Time = 5.0,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.w_source = w_source
        self.period = period

    def on_start(self) -> None:
        self._apply_report(self.pid, self.w_source.suspected())
        super().on_start()
        self._report()
        self.periodically(self.period, self._report)

    def _report(self) -> None:
        report = self.w_source.suspected()
        self.broadcast(report, tag="report")
        # A process's own report also updates its own output.
        self._apply_report(self.pid, report)

    def on_message(self, src: ProcessId, payload: object) -> None:
        self._apply_report(src, payload)  # type: ignore[arg-type]

    def _apply_report(self, sender: ProcessId, report: FrozenSet[ProcessId]) -> None:
        updated = (self._suspected | report) - {sender, self.pid}
        self._set_output(suspected=updated)
