"""Failure-detector class transformations.

Section 3 reductions (Ω→◇C, ◇P→◇C, ◇W→◇S, ◇S→◇C) plus the paper's core
Section 4 algorithm transforming ◇C into ◇P under partial synchrony
(:class:`~repro.transform.c_to_p.CToPTransformation`).
"""

from .c_to_p import CToPTransformation
from .omega_to_c import OmegaToC
from .p_to_c import PToC
from .s_to_c import SToC, attach_s_to_c_stack
from .w_to_s import WToS

__all__ = [
    "CToPTransformation",
    "OmegaToC",
    "PToC",
    "SToC",
    "attach_s_to_c_stack",
    "WToS",
]
