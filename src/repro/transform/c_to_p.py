"""The ◇C → ◇P transformation in partial synchrony (Section 4, Fig. 2).

This is one of the paper's two core contributions.  Given any ◇C (or Ω —
only the ``trusted`` output is queried) detector *D*, the algorithm builds a
◇P detector as follows:

* **Task 1** — every *send_period*, each process that considers itself the
  leader (``D.trusted == self``) sends its local suspect list to every other
  process.  These *output* links only need to be **fair-lossy**.
* **Task 2** — every *alive_period* (Φ), every process sends ``I-AM-ALIVE``
  to its trusted process.  These *input* links of the leader must be
  **partially synchronous** (reliable; bounded unknown delay Δ after GST).
* **Task 3** — a leader suspects any process from which it has not heard an
  ``I-AM-ALIVE`` within that process's adaptive timeout Δp(q).
* **Task 4** — when a leader hears from a process it suspects, it stops
  suspecting it and *increases* Δp(q); after GST the timeout therefore
  exceeds 2Φ+Δ after finitely many mistakes, the key step of Theorem 1.
* **Task 5** — when a process receives a suspect list from the process it
  currently trusts, it adopts that list as its own output.

Steady-state cost: 2(n−1) messages per period (n−1 ``SUSPECTS`` down, n−1
``I-AM-ALIVE`` up), versus n·(n−1) for the all-to-all ◇P — experiment E3.

Engineering notes kept faithful to the proof:

* a leader never suspects itself;
* when a process *becomes* leader its freshness clocks restart (it was not
  collecting ``I-AM-ALIVE`` messages before), which only delays suspicions —
  harmless for the eventual properties;
* a process that stops being leader keeps its last adopted/ built list until
  it adopts from the new leader.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from ..errors import ConfigurationError
from ..fd.base import FailureDetector
from ..types import ProcessId, Time

__all__ = ["CToPTransformation"]

_ALIVE = "I-AM-ALIVE"
_SUSPECTS = "SUSPECTS"


class CToPTransformation(FailureDetector):
    """◇P built from the leader elected by a local ◇C/Ω source (Fig. 2)."""

    def __init__(
        self,
        c_source: FailureDetector,
        send_period: Time = 5.0,
        alive_period: Time = 5.0,
        initial_timeout: Time = 12.0,
        timeout_increment: Time = 5.0,
        check_period: Optional[Time] = None,
        channel: str = "fdp",
    ) -> None:
        super().__init__(channel)
        if min(send_period, alive_period, initial_timeout) <= 0:
            raise ConfigurationError("periods and timeouts must be positive")
        if timeout_increment < 0:
            raise ConfigurationError("timeout increment must be >= 0")
        self.c_source = c_source
        self.send_period = send_period
        self.alive_period = alive_period
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.check_period = (
            check_period if check_period is not None else alive_period / 2
        )
        self._local_list: set[ProcessId] = set()
        self._last_alive: Dict[ProcessId, Time] = {}
        self._delta: Dict[ProcessId, Time] = {}
        self._was_leader = False

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        for q in range(self.n):
            if q != self.pid:
                self._delta[q] = self.initial_timeout
                self._last_alive[q] = self.now
        super().on_start()
        self.c_source.subscribe(self._on_source_change)
        self._was_leader = self._is_leader()
        self.periodically(self.send_period, self._task1_send_list)
        self.periodically(self.alive_period, self._task2_send_alive)
        self.periodically(self.check_period, self._task3_check)

    def _is_leader(self) -> bool:
        return self.c_source.trusted() == self.pid

    def _on_source_change(self, _source: FailureDetector) -> None:
        leader_now = self._is_leader()
        if leader_now and not self._was_leader:
            # Freshness clocks restart on leadership acquisition.
            now = self.now
            for q in self._last_alive:
                self._last_alive[q] = now
        self._was_leader = leader_now

    # --------------------------------------------------------------- Task 1
    def _task1_send_list(self) -> None:
        if self._is_leader():
            self.broadcast(
                (_SUSPECTS, frozenset(self._local_list)), tag="suspects"
            )

    # --------------------------------------------------------------- Task 2
    def _task2_send_alive(self) -> None:
        trusted = self.c_source.trusted()
        if trusted is not None and trusted != self.pid:
            self.send(trusted, _ALIVE, tag="alive")

    # --------------------------------------------------------------- Task 3
    def _task3_check(self) -> None:
        if not self._is_leader():
            return
        now = self.now
        changed = False
        for q, heard in self._last_alive.items():
            if q not in self._local_list and now - heard > self._delta[q]:
                self._local_list.add(q)
                changed = True
        if changed:
            self._publish()

    # --------------------------------------------------------- Tasks 4 and 5
    def on_message(self, src: ProcessId, payload: object) -> None:
        if payload == _ALIVE:
            self._last_alive[src] = self.now
            if src in self._local_list:
                # Task 4: false suspicion — retract and widen the timeout.
                self._local_list.discard(src)
                self._delta[src] += self.timeout_increment
                self.metrics.inc("fd_timeout_adaptations_total", channel=self.channel)
                if self._is_leader():
                    self._publish()
            return
        kind, suspects = payload  # type: ignore[misc]
        if kind == _SUSPECTS and self.c_source.trusted() == src:
            # Task 5: adopt the leader's list.
            self._set_output(suspected=frozenset(suspects) - {self.pid})

    # ---------------------------------------------------------------- output
    def _publish(self) -> None:
        self._set_output(suspected=frozenset(self._local_list))

    def delta_of(self, q: ProcessId) -> Time:
        """Current adaptive timeout Δp(q) (introspection for tests/benches)."""
        return self._delta[q]
