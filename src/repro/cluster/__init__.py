"""Cluster runtimes behind one contract: :class:`ClusterAPI`.

This package is the home of everything that boots *n* nodes, crashes
some of them, and judges the run:

* :mod:`~repro.cluster.api` — the :class:`ClusterAPI` structural
  protocol (``start / stop / crash / wait_quiescent / traces /
  verdicts``) and :func:`standard_verdicts`, the shared postmortem;
* :mod:`~repro.cluster.local` — :class:`LocalCluster`, *n*
  :class:`~repro.net.host.NodeHost`\\ s in one OS process (wall or
  virtual clock), moved here from ``repro.net.cluster``;
* :class:`~repro.proc.ProcessCluster` (re-exported lazily) — one OS
  process per node with real ``kill -9`` crashes, from :mod:`repro.proc`.

``repro.net.cluster`` remains as a deprecation shim.
"""

from __future__ import annotations

from .api import (
    FAULT_VERBS,
    ClusterAPI,
    rsm_verdicts,
    standard_verdicts,
    verdicts_ok,
)
from .local import (
    LocalCluster,
    STACKS,
    TRANSPORTS,
    attach_node_stack,
    attach_standard_stack,
)

__all__ = [
    "ClusterAPI",
    "FAULT_VERBS",
    "rsm_verdicts",
    "standard_verdicts",
    "verdicts_ok",
    "LocalCluster",
    "ProcessCluster",
    "attach_node_stack",
    "attach_standard_stack",
    "STACKS",
    "TRANSPORTS",
]


def __getattr__(name: str):
    # Lazy: repro.proc imports repro.cluster.api, so an eager import here
    # would be circular; it also keeps `import repro.cluster` cheap.
    if name == "ProcessCluster":
        from ..proc import ProcessCluster

        return ProcessCluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
