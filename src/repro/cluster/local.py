"""In-process clusters of :class:`~repro.net.host.NodeHost` nodes.

:class:`LocalCluster` spins up *n* hosts sharing one clock and one trace
recorder, wires a transport per node (loopback, UDP, or TCP — always
wrapped in a fault-injection proxy over the cluster's
:class:`~repro.net.faults.FaultPlan`, which the ClusterAPI fault verbs
mutate), and drives the run:

* **wall mode** (default) — an :class:`~repro.net.clock.AsyncioClock` and
  real sockets; drive it with ``await cluster.start() / run(seconds) /
  stop()`` inside ``asyncio.run``;
* **virtual mode** (``clock="virtual"``, loopback only) — the simulator's
  deterministic scheduler under the full runtime path (codec, transport
  framing, fault proxy); drive it synchronously with ``start_virtual()`` /
  ``run_virtual(until)``.  This is what the sim↔net parity tests use: same
  components, same seeds, bit-for-bit reproducible.

Either way, a ``LocalCluster`` implements the unified
:class:`~repro.cluster.api.ClusterAPI` protocol — ``crash(pid, at)``
schedules crash-stop kills (before or after start), ``wait_quiescent``
waits out a fixed-``duration`` scenario, and ``traces()`` /
``verdicts()`` hand the run to the same postmortem pipeline a
multi-process :class:`~repro.proc.ProcessCluster` uses.

Because all hosts share one trace with one time base, everything in
:mod:`repro.analysis` — property checkers, QoS metrics, ASCII timelines —
works on a live run's trace without modification.  Pass ``trace_out`` to
*also* ship the stream to disk as it happens: a ``*.jsonl`` path writes
one combined file, a directory writes one ``node-<pid>.jsonl`` per node
(each with its own provenance header, ready for ``repro trace merge``).

:func:`attach_standard_stack` deploys the paper's full pipeline on every
node: leader-based Ω + a ◇S source + the ◇C combiner, the Fig. 2 ◇C→◇P
transformation, reliable broadcast, and ◇C-based consensus — the live
counterpart of :func:`repro.fd.attach_ec_stack` plus consensus wiring.
:meth:`LocalCluster.deploy_standard_stack` is the self-driving variant
(stack plus a scheduled proposal round), mirroring what each node of a
process cluster does for itself.
"""

from __future__ import annotations

import asyncio
import inspect
import warnings
from pathlib import Path
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union,
)

from ..broadcast.reliable import ReliableBroadcast
from ..consensus.ec_consensus import ECConsensus
from ..consensus.multi import ReplicatedStateMachine
from ..errors import ConfigurationError
from ..fd.eventually_consistent import CombinedDetector
from ..fd.heartbeat import HeartbeatEventuallyPerfect
from ..fd.leader_based import LeaderBasedOmega
from ..fd.ring import RingDetector
from ..net.clock import AsyncioClock, SkewedClock, VirtualClock
from ..net.codec import Codec, default_codec
from ..net.faults import FaultPlan, FaultyTransport
from ..net.host import NodeHost
from ..net.tcp import TCPTransport
from ..net.transport import LoopbackHub, LoopbackTransport, Transport
from ..net.udp import UDPTransport
from ..obs.live import StreamingSink
from ..obs.metrics import MetricsReporter
from ..obs.sinks import JsonlSink, MemorySink, TeeSink, TraceSink
from ..sim.component import Component
from ..sim.delays import FixedDelay
from ..transform.c_to_p import CToPTransformation
from ..types import ProcessId, Time
from .api import rsm_verdicts, standard_verdicts

__all__ = [
    "LocalCluster",
    "attach_standard_stack",
    "attach_node_stack",
    "TRANSPORTS",
    "STACKS",
]

#: Transport kinds `LocalCluster` can build itself.
TRANSPORTS = ("loopback", "udp", "tcp")

#: Deployable stack flavours: suspect-source variants of the one-shot
#: consensus pipeline, plus ``rsm`` — the same ◇C detectors driving a
#: slot-by-slot :class:`~repro.consensus.multi.ReplicatedStateMachine`
#: instead of a single consensus instance (the service substrate).
STACKS = ("ring", "heartbeat", "rsm")


async def _maybe(value: Any) -> Any:
    """Await *value* if it is awaitable (loopback lifecycle calls are sync)."""
    if inspect.isawaitable(value):
        return await value
    return value


class LocalCluster:
    """*n* live nodes in one OS process (see module docstring)."""

    def __init__(
        self,
        n: int,
        transport: str = "loopback",
        clock: str = "wall",
        seed: int = 0,
        codec: Optional[Codec] = None,
        fault_plan: Optional[FaultPlan] = None,
        bind_host: str = "127.0.0.1",
        trace_kinds: Optional[Iterable[str]] = None,
        trace_out: Optional[Union[str, Path]] = None,
        duration: Optional[Time] = None,
        ship_to: Optional[str] = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; pick one of {TRANSPORTS}"
            )
        if clock not in ("wall", "virtual"):
            raise ConfigurationError(f"clock must be 'wall' or 'virtual'")
        if clock == "virtual" and transport != "loopback":
            raise ConfigurationError(
                "virtual-clock clusters are deterministic in-process runs; "
                "only the loopback transport can ride a virtual clock"
            )
        if ship_to is not None and clock == "virtual":
            raise ConfigurationError(
                "ship_to needs a wall clock: live shipping runs on the "
                "event loop and a virtual run has no wall epoch to rebase"
            )
        self.n = n
        self.transport_kind = transport
        self.clock = VirtualClock() if clock == "virtual" else AsyncioClock()
        self.virtual = clock == "virtual"
        #: Scenario length in cluster seconds; `wait_quiescent` waits it out.
        self.duration = duration
        #: Analysis-facing in-memory log, always shared by every host.
        self.trace = MemorySink(kinds=trace_kinds)
        # Trace shipping: a `*.jsonl` path streams one combined file; a
        # directory streams one per-node file (own provenance header each,
        # the input shape `repro trace merge` reassembles).
        self._jsonl_sinks: List[JsonlSink] = []
        host_traces: List[TraceSink] = [self.trace] * n
        if trace_out is not None:
            # Virtual runs have no meaningful wall epoch; zero it so the
            # files stay byte-for-byte deterministic (and trivially merge).
            epochs = (
                {"epoch_wall": 0.0, "epoch_mono": 0.0} if self.virtual else {}
            )
            out = Path(trace_out)
            if out.suffix == ".jsonl":
                out.parent.mkdir(parents=True, exist_ok=True)
                combined = JsonlSink(
                    out, node=None, kinds=trace_kinds, **epochs
                )
                self._jsonl_sinks.append(combined)
                host_traces = [TeeSink(self.trace, combined)] * n
            else:
                out.mkdir(parents=True, exist_ok=True)
                host_traces = []
                for pid in range(n):
                    sink = JsonlSink(
                        out / f"node-{pid}.jsonl", node=pid,
                        kinds=trace_kinds, **epochs
                    )
                    self._jsonl_sinks.append(sink)
                    host_traces.append(TeeSink(self.trace, sink))
        # Live shipping: one combined StreamingSink for the whole cluster
        # (hosts share a time base, so a single ``node=None`` stream is
        # what the collector expects) teed around every host trace.
        self._streaming: Optional[StreamingSink] = None
        if ship_to is not None:
            self._streaming = StreamingSink(ship_to, node=None)
            host_traces = [
                TeeSink(sink, self._streaming) for sink in host_traces
            ]
        self.codec = codec if codec is not None else default_codec()
        # Sink the cluster-level scenario.* narration goes through: the
        # same object node 0 traces into, so combined/per-node JSONL
        # shipping sees the fault events too (not just the MemorySink).
        self._cluster_sink: TraceSink = host_traces[0]
        if fault_plan is not None:
            warnings.warn(
                "the fault_plan= constructor kwarg is deprecated; every "
                "LocalCluster now carries a fault plan — use the ClusterAPI "
                "fault verbs (partition/degrade/storm/stall/...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            self.plan = fault_plan
        else:
            #: The always-on fault surface; idle plans cost one flag read
            #: per send (see FaultPlan.active), so every transport is
            #: wrapped unconditionally and the ClusterAPI fault verbs are
            #: always live.
            self.plan = FaultPlan(n, seed=seed)
        self._hub = LoopbackHub(self.clock) if transport == "loopback" else None
        self._started = False
        # Crash-stop schedule accepted before start; flushed onto the clock
        # the moment components start (ClusterAPI.crash contract).
        self._pending_crashes: List[Tuple[ProcessId, Optional[Time]]] = []
        # Fault-verb schedule accepted before start, same contract: a list
        # of (at, fire-closure) pairs flushed by _flush_pending().
        self._pending_faults: List[Tuple[Optional[Time], Callable[[], None]]] = []
        # (time, value-factory) proposal rounds from deploy_standard_stack.
        self._pending_proposals: List[Time] = []
        #: Components per role when `deploy_standard_stack` was used.
        self.stacks: Optional[Dict[str, List[Component]]] = None
        #: Which stack `deploy_standard_stack` deployed (verdict dispatch).
        self.stack_kind: Optional[str] = None
        # In-flight async transport closes from kill(); referenced here so
        # the tasks cannot be garbage-collected mid-close, reaped in stop().
        self._closing: set = set()
        self.hosts: List[NodeHost] = []
        # Per-node clock proxies: zero-offset (exact) until the skew verb
        # steps one — every host keeps its *own* notion of time over the
        # one shared timeline.
        self._host_clocks: List[SkewedClock] = []
        for pid in range(n):
            real: Transport
            if transport == "loopback":
                real = LoopbackTransport(pid, self._hub)
            elif transport == "udp":
                real = UDPTransport(pid, host=bind_host)
            else:
                real = TCPTransport(pid, host=bind_host)
            wire = FaultyTransport(real, self.plan, self.clock)
            host_clock = SkewedClock(self.clock)
            self._host_clocks.append(host_clock)
            self.hosts.append(
                NodeHost(
                    pid, n, wire,
                    clock=host_clock, codec=self.codec,
                    trace=host_traces[pid], seed=seed,
                )
            )

    # ---------------------------------------------------------------- basics
    @property
    def pids(self) -> range:
        return range(self.n)

    def host(self, pid: ProcessId) -> NodeHost:
        return self.hosts[pid]

    @property
    def correct_pids(self) -> frozenset:
        """Nodes that have not been crashed/killed (so far)."""
        return frozenset(h.pid for h in self.hosts if not h.crashed)

    @property
    def now(self) -> Time:
        return self.clock.now

    # ---------------------------------------------------------------- wiring
    def attach(self, pid: ProcessId, component: Component) -> Component:
        """Attach *component* to node *pid*; returns the component."""
        return self.hosts[pid].attach(component)

    def attach_all(
        self, factory: Callable[[ProcessId], Component]
    ) -> List[Component]:
        """Attach ``factory(pid)`` on every node; returns them in pid order."""
        return [self.attach(pid, factory(pid)) for pid in self.pids]

    def deploy_standard_stack(
        self,
        stack: str = "ring",
        period: Time = 0.05,
        initial_timeout: Optional[Time] = None,
        timeout_increment: Optional[Time] = None,
        propose_after: Optional[Time] = None,
        **kwargs: Any,
    ) -> Dict[str, List[Component]]:
        """Deploy the paper's full pipeline and make the run self-driving.

        Attaches :func:`attach_standard_stack` on every node (``stack``
        selects the ◇S suspect source) and, when *propose_after* is given,
        schedules one proposal round at that cluster time: every
        still-correct node proposes ``value-from-p<pid>``.  This mirrors
        exactly what each node of a :class:`~repro.proc.ProcessCluster`
        does for itself, so the same scenario drives both runtimes.
        """
        if stack not in STACKS:
            raise ConfigurationError(
                f"unknown stack {stack!r}; pick one of {STACKS}"
            )
        self.stack_kind = stack
        self.stacks = attach_standard_stack(
            self,
            suspects=stack,
            period=period,
            initial_timeout=(
                initial_timeout if initial_timeout is not None else 2.4 * period
            ),
            timeout_increment=(
                timeout_increment if timeout_increment is not None else period
            ),
            **kwargs,
        )
        if propose_after is not None:
            self._pending_proposals.append(propose_after)
        return self.stacks

    def _propose_all(self) -> None:
        """One proposal round: every correct node proposes its own value.

        On a one-shot consensus stack each node proposes into its single
        instance; on an ``rsm`` stack each node submits one command into
        the replicated log (same scenario shape, different substrate).
        """
        for protocol in (self.stacks or {}).get("consensus", []):
            if not protocol.crashed:
                protocol.propose(f"value-from-p{protocol.pid}")
        for rsm in (self.stacks or {}).get("rsm", []):
            if not rsm.crashed:
                rsm.submit(f"value-from-p{rsm.pid}")

    # ------------------------------------------------------- wall-clock mode
    async def start(self) -> None:
        """Bind every transport, share the address book, start every node.

        Virtual-clock clusters are redirected to :meth:`start_virtual`, so
        the unified ``await cluster.start()`` harness drives both modes.
        """
        if self.virtual:
            self.start_virtual()
            return
        self._check_started()
        for h in self.hosts:
            await _maybe(h.transport.bind())
        addresses = {h.pid: h.transport.local_address for h in self.hosts}
        for h in self.hosts:
            h.transport.set_peers(addresses)
        if isinstance(self.clock, AsyncioClock):
            self.clock.rebase()  # trace time 0 = the instant components start
            for sink in self._jsonl_sinks:
                sink.rebase_epoch()  # headers must reference the same zero
        if self._streaming is not None:
            self._streaming.rebase_epoch()  # hello frame carries this epoch
            await self._streaming.start()
        for h in self.hosts:
            h.start()
        self._flush_pending()

    async def run(self, seconds: float) -> None:
        """Let the cluster run for *seconds* of wall time."""
        await asyncio.sleep(seconds)

    async def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        poll: float = 0.01,
    ) -> bool:
        """Run until ``predicate()`` holds or *timeout* elapses; returns
        whether the predicate was met."""
        deadline = self.clock.now + timeout
        while self.clock.now < deadline:
            if predicate():
                return True
            await asyncio.sleep(poll)
        return predicate()

    async def wait_quiescent(self, timeout: Optional[Time] = None) -> bool:
        """Wait out the scenario (ClusterAPI contract).

        With a ``duration`` configured, waits until the cluster clock
        reaches it (virtual clusters run their scheduler to that point) —
        always quiescent, returns ``True``.  Without one, waits up to
        *timeout* seconds for every node to have crashed.
        """
        if self.duration is not None:
            if self.virtual:
                self.run_virtual(until=self.duration)
            else:
                remaining = self.duration - self.now
                if remaining > 0:
                    await asyncio.sleep(remaining)
            return True
        if self.virtual:
            self.run_virtual()
            return all(h.crashed for h in self.hosts)
        if timeout is None:
            raise ConfigurationError(
                "wait_quiescent needs a timeout when the cluster has no "
                "configured duration"
            )
        return await self.run_until(
            lambda: all(h.crashed for h in self.hosts), timeout=timeout
        )

    async def stop(self) -> None:
        """Close every transport and flush trace files (idempotent)."""
        if self.virtual:
            self.close_traces()
            return
        for h in self.hosts:
            await _maybe(h.transport.close())
        if self._closing:
            await asyncio.gather(*self._closing, return_exceptions=True)
            self._closing.clear()
        if self._streaming is not None:
            await self._streaming.aclose()  # drain before the sync close
        self.close_traces()

    def close_traces(self) -> None:
        """Flush and close any ``trace_out`` JSONL files (idempotent).

        ``stop()`` calls this; virtual-clock runs driven by hand (no
        ``stop()``) call it directly once the run is over.
        """
        for sink in self._jsonl_sinks:
            sink.close()
        if self._streaming is not None:
            self._streaming.close()

    # --------------------------------------------------------- virtual mode
    def start_virtual(self) -> None:
        """Deterministic start: bind, share addresses, start components."""
        if not self.virtual:
            raise ConfigurationError(
                "start_virtual() needs clock='virtual'; use `await start()`"
            )
        self._check_started()
        for h in self.hosts:
            h.transport.bind()
        addresses = {h.pid: h.transport.local_address for h in self.hosts}
        for h in self.hosts:
            h.transport.set_peers(addresses)
        for h in self.hosts:
            h.start()
        self._flush_pending()

    def run_virtual(
        self, until: Optional[Time] = None, max_events: Optional[int] = None
    ) -> int:
        """Drive the shared virtual clock (see sim ``Scheduler.run``)."""
        if not self.virtual:
            raise ConfigurationError("run_virtual() needs clock='virtual'")
        if not self._started:
            self.start_virtual()
        return self.clock.run(until=until, max_events=max_events)

    def schedule_kill(self, pid: ProcessId, time: Time) -> None:
        """Schedule :meth:`kill` at absolute clock *time* (both modes)."""
        self.clock.schedule_at(time, self.kill, pid)

    # ----------------------------------------------------------------- kills
    def crash(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Crash-stop node *pid* at cluster time *at* (ClusterAPI contract).

        ``at=None`` means "now" (immediately if running, at time zero if
        the cluster has not started yet).  Before :meth:`start` the kill
        is queued and flushed onto the clock at start, so whole failure
        patterns can be scripted up front.  Crashed nodes never restart.
        """
        if not 0 <= pid < self.n:
            raise ConfigurationError(f"pid {pid} out of range for n={self.n}")
        if not self._started:
            self._pending_crashes.append((pid, at))
            return
        if at is None:
            self.kill(pid)
        else:
            self.schedule_kill(pid, at)

    def kill(self, pid: ProcessId) -> None:
        """Kill node *pid*: crash its process and tear down its transport.

        Unlike a bare ``host.crash()`` (which keeps receiving and counting
        drops, like a simulated crashed process), a kill takes the node off
        the network entirely — peers see silence, TCP peers see resets and
        enter retry/backoff: the "killed leader process" scenario.
        """
        host = self.hosts[pid]
        host.crash()
        result = host.transport.close()
        if inspect.isawaitable(result):
            task = asyncio.ensure_future(result)
            self._closing.add(task)
            task.add_done_callback(self._closing.discard)

    # ----------------------------------------------------------- fault verbs
    # Every verb shares crash()'s scheduling contract: `at=None` fires now,
    # a time fires at that cluster instant, and calls before start() are
    # queued and flushed the moment components start.  Arguments are
    # validated eagerly (at call time) so a bad scenario fails before the
    # run, not inside a clock callback.

    def _check_pid(self, pid: ProcessId) -> ProcessId:
        if not 0 <= pid < self.n:
            raise ConfigurationError(f"pid {pid} out of range for n={self.n}")
        return pid

    def _fault(self, at: Optional[Time], fire: Callable[[], None]) -> None:
        if not self._started:
            self._pending_faults.append((at, fire))
        elif at is None:
            fire()
        else:
            self.clock.schedule_at(at, fire)

    def _record_fault(
        self, kind: str, pid: Optional[ProcessId] = None, **data: Any
    ) -> None:
        self._cluster_sink.record(self.clock.now, kind, pid, **data)

    def note_scenario(
        self, name: str, events: int, seed: Optional[int] = None
    ) -> None:
        """Record that a scenario schedule was armed (``scenario.run``)."""
        extra = {} if seed is None else {"seed": seed}
        self._record_fault("scenario.run", name=name, events=events, **extra)

    def stall(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Freeze node *pid*: every message from or to it is dropped until
        :meth:`resume` — the in-process stand-in for ``SIGSTOP`` (peers
        observe the same silence; the node stays in the correct set)."""
        self._check_pid(pid)

        def fire() -> None:
            self.plan.stall(pid)
            self._record_fault("scenario.stall", target=pid, signal="silence")

        self._fault(at, fire)

    def resume(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Unfreeze a stalled node (see :meth:`stall`)."""
        self._check_pid(pid)

        def fire() -> None:
            self.plan.resume(pid)
            self._record_fault("scenario.resume", target=pid, signal="silence")

        self._fault(at, fire)

    def partition(
        self,
        groups: Sequence[Iterable[ProcessId]],
        at: Optional[Time] = None,
    ) -> None:
        """Split the network into *groups* (pids in no group form an
        implicit final group); cross-group traffic is dropped both ways."""
        frozen = [list(group) for group in groups]
        seen: set = set()
        for group in frozen:
            for pid in group:
                self._check_pid(pid)
                if pid in seen:
                    raise ConfigurationError(f"pid {pid} in two groups")
                seen.add(pid)

        def fire() -> None:
            applied = self.plan.partition(*frozen)
            self._record_fault("scenario.partition", groups=applied)

        self._fault(at, fire)

    def heal(self, at: Optional[Time] = None) -> None:
        """Remove the active network partition."""

        def fire() -> None:
            self.plan.heal()
            self._record_fault("scenario.heal")

        self._fault(at, fire)

    def isolate(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Partition node *pid* away from everyone else."""
        self._check_pid(pid)
        self.partition([[pid]], at=at)

    def degrade(
        self,
        src: ProcessId,
        dst: ProcessId,
        loss: Optional[float] = None,
        delay: Optional[Time] = None,
        at: Optional[Time] = None,
    ) -> None:
        """Make the directed link ``src -> dst`` lossy and/or slow."""
        self._check_pid(src)
        self._check_pid(dst)
        if loss is not None and not 0.0 <= loss <= 1.0:
            raise ConfigurationError(f"loss_prob {loss} outside [0, 1]")
        if delay is not None and delay < 0:
            raise ConfigurationError(f"negative delay {delay}")

        def fire() -> None:
            self.plan.degrade(
                src, dst,
                loss_prob=loss,
                delay=None if delay is None else FixedDelay(delay),
            )
            self._record_fault(
                "scenario.degrade", src=src, dst=dst, loss=loss, delay=delay
            )

        self._fault(at, fire)

    def restore(
        self, src: ProcessId, dst: ProcessId, at: Optional[Time] = None
    ) -> None:
        """Undo :meth:`degrade` for the directed link ``src -> dst``."""
        self._check_pid(src)
        self._check_pid(dst)

        def fire() -> None:
            self.plan.restore(src, dst)
            self._record_fault("scenario.restore", src=src, dst=dst)

        self._fault(at, fire)

    def storm(self, loss: float, at: Optional[Time] = None) -> None:
        """Start a cluster-wide message-loss storm (until :meth:`calm`)."""
        if not 0.0 <= loss <= 1.0:
            raise ConfigurationError(f"loss_prob {loss} outside [0, 1]")

        def fire() -> None:
            self.plan.storm(loss)
            self._record_fault("scenario.storm", loss=loss)

        self._fault(at, fire)

    def calm(self, at: Optional[Time] = None) -> None:
        """End the active message-loss storm."""

        def fire() -> None:
            self.plan.calm()
            self._record_fault("scenario.calm")

        self._fault(at, fire)

    def skew(
        self, pid: ProcessId, offset: Time, at: Optional[Time] = None
    ) -> None:
        """Step node *pid*'s clock by *offset* seconds (cumulative)."""
        self._check_pid(pid)

        def fire() -> None:
            self._host_clocks[pid].skew(offset)
            self._record_fault(
                "scenario.skew", pid=pid, target=pid, offset=offset
            )

        self._fault(at, fire)

    # ------------------------------------------------------------ postmortem
    def traces(self) -> MemorySink:
        """The run's events as one time-ordered stream (ClusterAPI)."""
        return self.trace

    def verdicts(self, channel: str = "fd", algo: str = "ec") -> Dict[str, Any]:
        """Machine-checked FD + consensus properties of the run so far.

        An ``rsm`` deployment is judged by :func:`rsm_verdicts` (log-level
        agreement/prefix/progress); anything else by
        :func:`standard_verdicts` (one-shot Uniform Consensus).
        """
        if self.stack_kind == "rsm":
            return rsm_verdicts(
                self.trace, self.correct_pids,
                channel=channel, end_time=self.now,
            )
        return standard_verdicts(
            self.trace, self.correct_pids,
            channel=channel, algo=algo, end_time=self.now,
        )

    # -------------------------------------------------------------- internals
    def _flush_pending(self) -> None:
        """Move pre-start crash/fault/proposal schedules onto the clock."""
        for pid, at in self._pending_crashes:
            if at is None:
                self.kill(pid)
            else:
                self.schedule_kill(pid, at)
        self._pending_crashes.clear()
        for at, fire in self._pending_faults:
            if at is None:
                fire()
            else:
                self.clock.schedule_at(at, fire)
        self._pending_faults.clear()
        for at in self._pending_proposals:
            self.clock.schedule_at(at, self._propose_all)
        self._pending_proposals.clear()

    def _check_started(self) -> None:
        if self._started:
            raise ConfigurationError("cluster already started")
        self._started = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "virtual" if self.virtual else "wall"
        return (
            f"<LocalCluster n={self.n} transport={self.transport_kind} "
            f"clock={mode}>"
        )


def attach_node_stack(
    attach: Callable[[Component], Component],
    suspects: str = "ring",
    period: Time = 0.05,
    initial_timeout: Time = 0.12,
    timeout_increment: Time = 0.05,
    with_transformation: bool = True,
    with_consensus: bool = True,
    stubborn_period: Optional[Time] = None,
    channel: str = "fd",
    metrics_interval: Optional[Time] = None,
    max_batch: int = 64,
    pipeline_depth: int = 4,
) -> Dict[str, Component]:
    """Deploy one node's slice of the paper's pipeline via *attach*.

    *attach* receives each component in dependency order and must return
    it attached — ``host.attach`` for a bare :class:`NodeHost` (this is
    what ``repro node`` runs in every OS process), or a closure over
    ``cluster.attach(pid, ...)`` for in-process clusters.  Returns the
    components by role.

    ``suspects="rsm"`` deploys the service substrate: the ring-sourced
    ◇C detectors as usual, but a slot-by-slot
    :class:`~repro.consensus.multi.ReplicatedStateMachine` (role
    ``rsm``) in place of the one-shot consensus instance.  *max_batch*
    and *pipeline_depth* shape its command path (they only matter for
    that stack); ``max_batch=1, pipeline_depth=1`` restores the
    historical one-command-per-slot machine.
    """
    parts: Dict[str, Component] = {}
    with_rsm = suspects == "rsm"
    if with_rsm:
        suspects = "ring"
        with_consensus = False
    omega = LeaderBasedOmega(
        period=period,
        initial_timeout=initial_timeout,
        timeout_increment=timeout_increment,
        channel=f"{channel}.omega",
    )
    attach(omega)
    if suspects == "ring":
        source: Component = RingDetector(
            period=period,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
            channel=f"{channel}.suspects",
        )
    elif suspects == "heartbeat":
        source = HeartbeatEventuallyPerfect(
            period=period,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
            channel=f"{channel}.suspects",
        )
    else:
        raise ConfigurationError(f"unknown suspects source {suspects!r}")
    attach(source)
    combined = CombinedDetector(omega, source, channel=channel)
    attach(combined)
    parts["omega"] = omega
    parts["suspects"] = source
    parts["fd"] = combined
    if with_transformation:
        fdp = CToPTransformation(
            combined,
            send_period=period,
            alive_period=period,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
            channel="fdp",
        )
        attach(fdp)
        parts["fdp"] = fdp
    if with_consensus:
        rb = ReliableBroadcast(channel="consensus.rb")
        attach(rb)
        protocol = ECConsensus(
            combined, rb,
            round_step=period / 5.0,
            stubborn_period=stubborn_period,
        )
        attach(protocol)
        parts["rb"] = rb
        parts["consensus"] = protocol
    if with_rsm:
        rsm = ReplicatedStateMachine(
            combined,
            channel="rsm",
            consensus_kwargs={
                "round_step": period / 5.0,
                "stubborn_period": stubborn_period,
            },
            # A service sits mostly idle between bursts; without grace it
            # would burn one NOOP consensus instance per slot forever.
            idle_grace=2 * period,
            max_batch=max_batch,
            pipeline_depth=pipeline_depth,
        )
        attach(rsm)
        parts["rsm"] = rsm
    if metrics_interval is not None:
        reporter = MetricsReporter(metrics_interval)
        attach(reporter)
        parts["metrics"] = reporter
    return parts


def attach_standard_stack(
    cluster: LocalCluster,
    suspects: str = "ring",
    period: Time = 0.05,
    initial_timeout: Time = 0.12,
    timeout_increment: Time = 0.05,
    with_transformation: bool = True,
    with_consensus: bool = True,
    stubborn_period: Optional[Time] = None,
    channel: str = "fd",
    metrics_interval: Optional[Time] = None,
    max_batch: int = 64,
    pipeline_depth: int = 4,
) -> Dict[str, List[Component]]:
    """Deploy the paper's full pipeline on every node of *cluster*.

    Per node: leader-based Ω (``fd.omega``) + a ◇S suspect source
    (``fd.suspects``, ring or heartbeat) + the ◇C combiner (``fd``);
    optionally the Fig. 2 ◇C→◇P transformation (``fdp``); optionally
    reliable broadcast (``consensus.rb``) + ◇C-based consensus
    (``consensus``).  Defaults are scaled for wall-clock seconds (50 ms
    period) — pass sim-scale values for virtual-clock parity runs.

    Returns the components per role, each a pid-ordered list (only the
    roles the chosen stack actually deploys appear as keys).
    """
    stacks: Dict[str, List[Component]] = {}
    for pid in cluster.pids:
        parts = attach_node_stack(
            lambda component, pid=pid: cluster.attach(pid, component),
            suspects=suspects,
            period=period,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
            with_transformation=with_transformation,
            with_consensus=with_consensus,
            stubborn_period=stubborn_period,
            channel=channel,
            metrics_interval=metrics_interval,
            max_batch=max_batch,
            pipeline_depth=pipeline_depth,
        )
        for role, component in parts.items():
            stacks.setdefault(role, []).append(component)
    return stacks
