"""The one cluster contract: :class:`ClusterAPI` and the shared verdicts.

Two very different runtimes host the paper's protocol stacks:

* :class:`~repro.cluster.local.LocalCluster` — *n* :class:`NodeHost`\\ s in
  one OS process sharing a clock (wall or virtual) and one trace sink;
* :class:`~repro.proc.ProcessCluster` — one OS process *per node*, crashes
  delivered as real ``SIGKILL``\\ s, traces shipped as per-process JSONL
  files and merged postmortem.

Test harnesses, examples, and the CLI should not care which one they
drive.  :class:`ClusterAPI` is the structural protocol both implement —
the whole crash-recovery experiment is expressible against it::

    cluster.crash(pid=0, at=2.5)          # schedule a crash-stop kill
    cluster.partition([[0], [1, 2]], at=1.0)   # fault verbs, same shape
    cluster.heal(at=2.0)
    await cluster.start()                 # boot every node
    await cluster.wait_quiescent(30.0)    # let the scenario play out
    await cluster.stop()                  # tear down, flush traces
    trace = cluster.traces()              # one time-ordered stream
    verdicts = cluster.verdicts()         # machine-checked properties

Beyond ``crash``, the protocol carries the full fault surface in
:data:`FAULT_VERBS` — stalls, partitions, link degradation, loss storms,
clock skew — every verb schedulable via ``at=`` exactly like ``crash``,
which is what the declarative :mod:`repro.scenario` layer compiles to.

Crashes follow the paper's **crash-stop** model: a crashed process never
recovers and is excluded from the correct set (no restart semantics).

:func:`standard_verdicts` is the shared postmortem: it runs the
:mod:`repro.analysis` property checkers for the paper's ◇C class (strong
completeness, eventual weak accuracy, Ω eventual leader agreement,
trusted ∉ suspected) plus the four Uniform Consensus properties over any
trace source, so an in-memory live trace and a merged multi-process trace
are judged by exactly the same code.
"""

from __future__ import annotations

from typing import (
    Any, Dict, FrozenSet, Iterable, Optional, Protocol, Sequence, Tuple,
    runtime_checkable,
)

from ..analysis import check_consensus, check_fd_class, extract_outcome
from ..fd.classes import EVENTUALLY_CONSISTENT, FDClass
from ..obs.reader import TraceSource, as_trace
from ..obs.sinks import MemorySink
from ..types import ProcessId, Time

__all__ = [
    "ClusterAPI",
    "FAULT_VERBS",
    "standard_verdicts",
    "rsm_verdicts",
    "verdicts_ok",
]

#: Every fault verb a :class:`ClusterAPI` implementation must carry — the
#: conformance tests iterate this tuple and compare signatures across
#: substrates, so the scenario layer can drive either one blindly.
FAULT_VERBS = (
    "crash", "stall", "resume", "partition", "heal", "isolate",
    "degrade", "restore", "storm", "calm", "skew",
)


@runtime_checkable
class ClusterAPI(Protocol):
    """What every cluster runtime exposes (see module docstring).

    The protocol is structural and ``@runtime_checkable``, so
    ``isinstance(cluster, ClusterAPI)`` verifies a new implementation
    carries the whole surface.
    """

    n: int

    @property
    def correct_pids(self) -> FrozenSet[ProcessId]:
        """Nodes not (yet) crashed — the paper's correct set, so far."""
        ...

    async def start(self) -> None:
        """Boot every node and flush any pre-start crash schedule."""
        ...

    async def stop(self) -> None:
        """Tear the cluster down and flush trace outputs.  Idempotent."""
        ...

    def crash(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Crash-stop node *pid* at cluster time *at* (``None`` = now).

        May be called before :meth:`start` to schedule the failure
        pattern up front.  Crashed nodes never restart.
        """
        ...

    # ------------------------------------------------------- fault verbs
    # Every verb takes ``at`` — cluster time to fire at (``None`` = now),
    # schedulable before start() like crash() — so a declarative scenario
    # compiles to the same calls on either substrate.

    def stall(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Freeze node *pid*: it stops executing (process cluster:
        ``SIGSTOP``) or falls silent (local cluster: every message from
        or to it dropped) until :meth:`resume`.  Unlike :meth:`crash`,
        the node stays in the correct set — a stall models the
        crash-recovery-adjacent pause the paper's detectors must forgive
        without violating crash-stop."""
        ...

    def resume(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Unfreeze a stalled node (process cluster: ``SIGCONT``)."""
        ...

    def partition(
        self,
        groups: Sequence[Iterable[ProcessId]],
        at: Optional[Time] = None,
    ) -> None:
        """Split the network into *groups*; traffic crossing a group
        boundary is dropped in both directions.  Pids named in no group
        form an implicit final group."""
        ...

    def heal(self, at: Optional[Time] = None) -> None:
        """Remove the active network partition."""
        ...

    def isolate(self, pid: ProcessId, at: Optional[Time] = None) -> None:
        """Partition node *pid* away from everyone else."""
        ...

    def degrade(
        self,
        src: ProcessId,
        dst: ProcessId,
        loss: Optional[float] = None,
        delay: Optional[Time] = None,
        at: Optional[Time] = None,
    ) -> None:
        """Make the directed link ``src -> dst`` lossy (*loss* probability
        in [0, 1]) and/or slow (*delay* extra seconds per message)."""
        ...

    def restore(
        self, src: ProcessId, dst: ProcessId, at: Optional[Time] = None
    ) -> None:
        """Undo :meth:`degrade` for the directed link ``src -> dst``."""
        ...

    def storm(self, loss: float, at: Optional[Time] = None) -> None:
        """Start a cluster-wide message-loss storm: every link drops
        messages with at least probability *loss* until :meth:`calm`."""
        ...

    def calm(self, at: Optional[Time] = None) -> None:
        """End the active message-loss storm."""
        ...

    def skew(
        self, pid: ProcessId, offset: Time, at: Optional[Time] = None
    ) -> None:
        """Step node *pid*'s clock by *offset* seconds (cumulative across
        calls) — the one-shot NTP-style clock jump."""
        ...

    async def wait_quiescent(self, timeout: Optional[Time] = None) -> bool:
        """Block until the scenario has played out (every node finished
        its run or crashed); returns whether quiescence was reached
        within *timeout* seconds."""
        ...

    def traces(self) -> MemorySink:
        """The run's events as one time-ordered in-memory stream."""
        ...

    def verdicts(self, channel: str = "fd", algo: str = "ec") -> Dict[str, Any]:
        """Machine-checked FD + consensus properties of the run."""
        ...


def standard_verdicts(
    trace: TraceSource,
    correct: FrozenSet[ProcessId],
    channel: str = "fd",
    algo: str = "ec",
    fd_class: FDClass = EVENTUALLY_CONSISTENT,
    end_time: Optional[Time] = None,
    margin: float = 0.1,
) -> Dict[str, Any]:
    """Judge one run: ◇C class properties plus Uniform Consensus.

    Returns a flat dict: ``fd.<property>`` keys map to
    :class:`~repro.analysis.PropertyCheck` objects (truthy when satisfied)
    and ``consensus.<property>`` keys map to plain bools.  Use
    :func:`verdicts_ok` for the single pass/fail bit.
    """
    trace = as_trace(trace)
    verdicts: Dict[str, Any] = {}
    fd_results = check_fd_class(
        trace, fd_class, correct,
        channel=channel, margin=margin, end_time=end_time,
    )
    for name, result in fd_results.items():
        verdicts[f"fd.{name}"] = result
    outcome = extract_outcome(trace, algo)
    for name, ok in check_consensus(outcome, correct).items():
        verdicts[f"consensus.{name}"] = ok
    return verdicts


def rsm_verdicts(
    trace: TraceSource,
    correct: FrozenSet[ProcessId],
    channel: str = "fd",
    fd_class: FDClass = EVENTUALLY_CONSISTENT,
    end_time: Optional[Time] = None,
    margin: float = 0.1,
) -> Dict[str, Any]:
    """Judge one replicated-state-machine run (``--stack rsm``).

    The FD-class checks are the same as :func:`standard_verdicts`, but the
    one-shot Uniform Consensus checks do not fit a slot-by-slot log (many
    ``decide`` events per pid; trailing slots legitimately differ while a
    replica catches up).  The log-level properties are checked from the
    ``apply`` events instead:

    * ``rsm.agreement`` — no two replicas applied different commands in
      the same slot;
    * ``rsm.prefix`` — each replica's applied log is a prefix of the
      longest: its applied slots are exactly the globally applied slots
      up to its own frontier (NOOP slots record no ``apply``, so slot
      sets are sparse but must stay aligned);
    * ``rsm.progress`` — every correct replica applied at least one
      command whenever any replica did.
    """
    trace = as_trace(trace)
    verdicts: Dict[str, Any] = {}
    fd_results = check_fd_class(
        trace, fd_class, correct,
        channel=channel, margin=margin, end_time=end_time,
    )
    for name, result in fd_results.items():
        verdicts[f"fd.{name}"] = result
    # Log positions are (slot, index): batched slots apply several
    # commands, each traced with its position inside the batch (older
    # traces without the key collapse to index 0, the unbatched shape).
    logs: Dict[ProcessId, Dict[Tuple[int, int], Any]] = {}
    for event in trace.events:
        if event.kind == "apply" and event.pid is not None:
            position = (event.get("slot"), event.get("index") or 0)
            logs.setdefault(event.pid, {})[position] = event.get("command")
    positions: Dict[Tuple[int, int], Any] = {}
    agreement = True
    for log in logs.values():
        for position, command in log.items():
            if position in positions and positions[position] != command:
                agreement = False
            positions.setdefault(position, command)
    prefix = True
    applied_positions = sorted(positions)
    for log in logs.values():
        frontier = max(log)
        expected = [p for p in applied_positions if p <= frontier]
        if sorted(log) != expected:
            prefix = False
    progress = (not positions) or all(pid in logs for pid in correct)
    verdicts["rsm.agreement"] = agreement
    verdicts["rsm.prefix"] = prefix
    verdicts["rsm.progress"] = progress
    return verdicts


def verdicts_ok(verdicts: Dict[str, Any]) -> bool:
    """True iff every verdict in *verdicts* holds."""
    return all(bool(result) for result in verdicts.values())
