"""The service frontend: real clients on one side, the replica on the other.

One :class:`ServiceFrontend` rides each :class:`~repro.net.host.NodeHost`
that carries the ``rsm`` stack.  It accepts asyncio TCP client
connections on a *separate* listen address (client traffic never shares
the node-to-node transport), and for each request:

* **redirects** when this node is not the leader — the Ω output of the
  node's own ◇C detector (``detector.trusted()``) names the pid, and the
  peer serve-address map turns it into a dialable address.  Writes must
  funnel through the leader because only its queue head is proposed
  promptly; a follower accepting writes would ack nothing until the
  cluster happened to decide its commands.
* **deduplicates** retries whose ``(client, seq)`` already executed,
  answering from the session table without touching the log;
* **submits** fresh commands into the local
  :class:`~repro.consensus.multi.ReplicatedStateMachine` replica and
  parks the connection on a future;
* **replies on local apply** — every replica applies every decided
  command to its own :class:`~repro.svc.state.KVStateMachine`; the one
  holding the client's parked future completes it with the result.

The ``dump`` op is the single deliberately non-replicated read: it
snapshots *this replica's* state without touching the log, which is what
convergence checks and debugging want (every other op, including
``get``, goes through the log for linearizability).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from ..net.codec import Codec, default_codec, wire_preferences
from ..net.host import NodeHost
from ..types import ProcessId
from .protocol import ProtocolError, Reply, Request, read_frame, write_frame
from .state import KVStateMachine

__all__ = ["ServiceFrontend", "start_service"]

Address = Tuple[str, int]

#: One (client, seq) command in flight.
Cid = Tuple[str, int]


class ServiceFrontend:
    """Client-facing TCP acceptor bound to one RSM replica (module doc)."""

    def __init__(
        self,
        host: NodeHost,
        rsm: Any,
        detector: Any,
        listen_host: str = "127.0.0.1",
        port: int = 0,
        codec: Optional[Codec] = None,
        apply_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.rsm = rsm
        self.detector = detector
        self.listen_host = listen_host
        self.port = port
        self.codec = codec if codec is not None else host.codec
        self.apply_timeout = apply_timeout
        self.state = KVStateMachine()
        self._server: Optional[asyncio.AbstractServer] = None
        self._peers: Dict[ProcessId, Address] = {}
        self._conn_tasks: Set[asyncio.Task] = set()
        self._waiters: Dict[Cid, List[asyncio.Future]] = {}
        #: Commands this frontend already pushed into its replica: a retry
        #: arriving before the original decides must not resubmit (the
        #: state machine would dedup it anyway, but every resubmission is
        #: one more slot burned on a duplicate).
        self._submitted: Set[Cid] = set()
        self.connections = 0
        rsm.on_apply(self._on_apply)

    # -------------------------------------------------------- host shortcuts
    @property
    def metrics(self):
        return self.host.metrics

    def trace(self, kind: str, **data: Any) -> None:
        sink = self.host.trace
        if sink.wants(kind):
            sink.record(self.host.clock.now, kind, self.host.pid, **data)

    # -------------------------------------------------------------- lifecycle
    async def bind(self) -> None:
        """Start accepting clients; resolves the kernel-chosen port."""
        self._server = await asyncio.start_server(
            self._on_accept, host=self.listen_host, port=self.port
        )
        addr = self._server.sockets[0].getsockname()[:2]
        self.listen_host, self.port = addr[0], addr[1]
        self._peers[self.host.pid] = (self.listen_host, self.port)

    @property
    def local_address(self) -> Address:
        if self._server is None:
            raise ConfigurationError("frontend is not bound yet")
        return (self.listen_host, self.port)

    def set_peers(self, peers: Dict[ProcessId, Address]) -> None:
        """Install the pid -> serve-address map redirects dial from."""
        self._peers.update(
            {pid: (addr[0], addr[1]) for pid, addr in peers.items()}
        )

    async def close(self) -> None:
        """Stop accepting, drop every client connection, fail waiters."""
        if self._server is not None:
            self._server.close()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        for futures in self._waiters.values():
            for future in futures:
                if not future.done():
                    future.cancel()
        self._waiters.clear()

    # ------------------------------------------------------------ connections
    async def _on_accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.connections += 1
        self.metrics.set("svc_connections", self.connections)
        codec = self.codec  # per-connection; negotiation may upgrade it
        try:
            while True:
                try:
                    payload = await read_frame(reader, codec)
                except ProtocolError:
                    break  # stream out of sync; drop the connection
                if payload is None:
                    break  # clean EOF
                upgrade: Optional[Codec] = None
                try:
                    request = Request.from_payload(payload)
                except ProtocolError as exc:
                    rid = payload.get("rid", -1) if isinstance(payload, dict) else -1
                    reply = Reply(rid=rid, status="error", error=str(exc))
                else:
                    reply = await self._handle(request)
                    if request.codecs:
                        upgrade = self._negotiate(request.codecs, codec)
                        if upgrade is not None:
                            reply.codec = upgrade.name
                # The reply goes out in the codec the request arrived in;
                # the named upgrade takes effect from the next frame.
                write_frame(writer, codec, reply.to_payload())
                if upgrade is not None:
                    codec = upgrade
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        except (ConnectionError, OSError):
            pass  # peer went away mid-frame; nothing to clean beyond finally
        except asyncio.CancelledError:
            # close() cancelling this connection task is the normal
            # shutdown path; this is the task's outermost frame, so eating
            # the cancellation only keeps asyncio's stream wrapper from
            # logging it as a crash.
            pass
        finally:
            self.connections -= 1
            self.metrics.set("svc_connections", self.connections)
            writer.close()

    def _negotiate(
        self, offered: List[str], current: Codec
    ) -> Optional[Codec]:
        """The codec to upgrade this connection to, or ``None`` to stay.

        Picks the client's most-preferred name this host also prefers
        (``wire_preferences`` lists only formats that are *fast* here, so
        a pure-msgpack host never drags a connection off C-accelerated
        JSON just because the format exists).
        """
        ours = wire_preferences()
        for name in offered:
            if name in ours:
                return default_codec(prefer=name) if name != current.name else None
        return None

    # --------------------------------------------------------------- requests
    async def _handle(self, request: Request) -> Reply:
        self.metrics.inc("svc_requests_total", op=request.op)
        self.trace(
            "svc.request", op=request.op, client=request.client,
            seq=request.seq, rid=request.rid, key=request.key,
            span=request.span,
        )
        if request.op == "dump":
            return Reply(rid=request.rid, status="ok", result=self.state.dump())
        if self.host.crashed:
            return Reply(rid=request.rid, status="error", error="node-down")
        leader = self.detector.trusted()
        if leader != self.host.pid:
            self.metrics.inc("svc_redirects_total")
            self.trace(
                "svc.redirect", leader=leader, client=request.client,
                op=request.op,
            )
            return Reply(
                rid=request.rid, status="redirect", leader=leader,
                addr=self._peers.get(leader) if leader is not None else None,
            )
        if not isinstance(request.seq, int):
            return Reply(
                rid=request.rid, status="error", error="missing-seq",
            )
        cached = self.state.cached(request.client, request.seq)
        if cached is not None:
            self.metrics.inc("svc_duplicates_total")
            if request.span is not None:
                self.trace("span.reply", span=request.span, status="cached")
            return Reply(rid=request.rid, status="ok", result=cached)
        cid: Cid = (request.client, request.seq)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.setdefault(cid, []).append(future)
        if cid not in self._submitted:
            self._submitted.add(cid)
            if request.span is not None:
                self.trace("span.queue", span=request.span, op=request.op)
            self.rsm.submit(request.command())
            depth = getattr(self.rsm, "pending_count", None)
            if depth is not None:
                self.metrics.set("svc_submit_queue_depth", depth)
        try:
            result = await asyncio.wait_for(future, timeout=self.apply_timeout)
        except asyncio.TimeoutError:
            return Reply(
                rid=request.rid, status="error", error="apply-timeout",
            )
        except asyncio.CancelledError:
            raise
        finally:
            waiters = self._waiters.get(cid)
            if waiters is not None:
                if future in waiters:
                    waiters.remove(future)
                if not waiters:
                    self._waiters.pop(cid, None)
        if request.span is not None:
            self.trace("span.reply", span=request.span, status="ok")
        return Reply(rid=request.rid, status="ok", result=result)

    # ------------------------------------------------------------------ apply
    def _on_apply(self, slot: int, command: Any) -> None:
        """Apply one decided command to this replica's state machine.

        Runs on *every* replica for every decided command — the store,
        locks, and session table stay identical everywhere; only the
        replica holding the client's parked future also answers it.
        """
        if not isinstance(command, dict):
            return  # non-service traffic sharing the log (proposal rounds)
        result, duplicate = self.state.apply(command)
        op = str(command.get("op"))
        self.metrics.inc("svc_applies_total", op=op)
        if duplicate:
            self.metrics.inc("svc_duplicates_total")
        self.metrics.set("svc_sessions", len(self.state.sessions))
        self.trace(
            "svc.apply", slot=slot, op=op, duplicate=duplicate,
            client=command.get("client"), seq=command.get("seq"),
            ok=result.get("ok"),
        )
        client, seq = command.get("client"), command.get("seq")
        if isinstance(client, str) and isinstance(seq, int):
            self._submitted.discard((client, seq))
            for future in self._waiters.pop((client, seq), []):
                if not future.done():
                    future.set_result(result)


async def start_service(
    cluster: Any,
    stacks: Dict[str, List[Any]],
    listen_host: str = "127.0.0.1",
    apply_timeout: float = 30.0,
) -> List[ServiceFrontend]:
    """Attach and bind one frontend per node of an ``rsm``-stack
    :class:`~repro.cluster.local.LocalCluster`; returns them pid-ordered.

    Call after ``cluster.start()`` (the frontends need a running event
    loop); the serve-address map is shared among them automatically.
    """
    if "rsm" not in stacks:
        raise ConfigurationError(
            "start_service needs an 'rsm' stack; deploy with stack='rsm'"
        )
    frontends = [
        ServiceFrontend(
            cluster.host(pid), rsm=stacks["rsm"][pid],
            detector=stacks["fd"][pid], listen_host=listen_host,
            apply_timeout=apply_timeout,
        )
        for pid in cluster.pids
    ]
    for frontend in frontends:
        await frontend.bind()
    peers = {f.host.pid: f.local_address for f in frontends}
    for frontend in frontends:
        frontend.set_peers(peers)
    return frontends
