"""The smart service client: redirects, retries, session sequencing.

A :class:`KVClient` is one client *session*: it owns a session name, a
monotonically increasing per-command sequence number, and at most one
open connection at a time (reused across requests, replaced on failure
or redirect).  The retry loop implements the paper's client-side story:

* a **redirect** reply repoints the connection at the leader the replica
  named; while *no* leader is named the client rotates and polls on a
  short fixed cadence (``redirect_poll``) — electing a leader is the
  cluster converging, not the client failing, so it shares neither the
  exponential backoff nor the attempt budget (it is bounded by
  ``request_timeout`` of total waiting instead);
* a **timeout** or connection failure abandons the connection, backs off
  exponentially, rotates, and *resubmits the same command under the same
  sequence number* — the replicated session table makes the retry
  exactly-once even if the original was applied after all;
* replies are matched by request id; a stale reply from before a timeout
  is discarded, never misattributed to the current command.

Every mutating op keeps one sequence number across all its retries; a
fresh op takes the next number.  One asyncio task per client — drive
thousands of them concurrently (see :mod:`repro.load`).
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..net.codec import Codec, default_codec, wire_preferences
from .protocol import ProtocolError, Reply, Request, encode_frame, read_frame

__all__ = ["KVClient", "ServiceUnavailable"]

Address = Tuple[str, int]


class ServiceUnavailable(Exception):
    """No replica answered the command within the retry budget."""


class KVClient:
    """One client session against a replicated KV service (module doc)."""

    def __init__(
        self,
        addrs: Sequence[Address],
        client_id: str,
        codec: Optional[Codec] = None,
        request_timeout: float = 5.0,
        max_attempts: int = 10,
        backoff_initial: float = 0.05,
        backoff_max: float = 1.0,
        redirect_poll: float = 0.05,
        seed: Optional[int] = None,
    ) -> None:
        if not addrs:
            raise ConfigurationError("KVClient needs at least one address")
        self.addrs: List[Address] = [(a[0], a[1]) for a in addrs]
        self.client_id = client_id
        self.codec = codec if codec is not None else default_codec()
        self.request_timeout = request_timeout
        self.max_attempts = max_attempts
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.redirect_poll = redirect_poll
        self._rng = random.Random(seed if seed is not None else hash(client_id))
        self._target = self._rng.randrange(len(self.addrs))
        self._conn: Optional[Tuple[Address, asyncio.StreamReader,
                                   asyncio.StreamWriter]] = None
        #: Codec names this host prefers, best first (negotiation offer).
        self._wire_prefs = wire_preferences()
        #: The codec the *current connection* speaks (negotiation may
        #: upgrade it past the configured default).
        self._conn_codec: Codec = self.codec
        #: Whether the next request on this connection opens negotiation.
        self._negotiate_pending = False
        self._seq = 0
        self._rid = 0
        self.redirects = 0
        self.retries = 0

    @property
    def next_seq(self) -> int:
        """The session sequence number the next sequenced op will use."""
        return self._seq

    # ------------------------------------------------------------ public ops
    async def get(self, key: str) -> Dict[str, Any]:
        return await self.request("get", key=key)

    async def put(self, key: str, value: Any) -> Dict[str, Any]:
        return await self.request("put", key=key, value=value)

    async def delete(self, key: str) -> Dict[str, Any]:
        return await self.request("delete", key=key)

    async def cas(self, key: str, expect: Any, value: Any) -> Dict[str, Any]:
        return await self.request("cas", key=key, expect=expect, value=value)

    async def acquire(self, lock: str) -> Dict[str, Any]:
        return await self.request("acquire", key=lock)

    async def release(self, lock: str) -> Dict[str, Any]:
        return await self.request("release", key=lock)

    async def dump(self, addr: Optional[Address] = None) -> Dict[str, Any]:
        """Snapshot one replica's local state (no log, no redirect)."""
        return await self.request("dump", addr=addr, sequenced=False)

    # -------------------------------------------------------------- requests
    async def request(
        self,
        op: str,
        key: Optional[str] = None,
        value: Any = None,
        expect: Any = None,
        addr: Optional[Address] = None,
        sequenced: bool = True,
    ) -> Dict[str, Any]:
        """Run one op to completion through redirects and retries.

        Returns the state machine's result dict (``{"ok": ...}``); raises
        :class:`ServiceUnavailable` after *max_attempts* failed tries.
        """
        seq: Optional[int] = None
        span: Optional[str] = None
        if sequenced:
            seq = self._seq
            self._seq += 1
            # One causal-span id per command, shared by every retry —
            # the span.* trace events follow it through the serving path.
            span = f"{self.client_id}.{seq}"
        backoff = self.backoff_initial
        pinned = addr
        started = time.monotonic()
        attempt = 0
        while attempt < self.max_attempts:
            attempt += 1
            self._rid += 1
            request = Request(
                rid=self._rid, client=self.client_id, op=op, seq=seq,
                key=key, value=value, expect=expect, span=span,
            )
            target = pinned if pinned is not None else self.addrs[self._target]
            try:
                reply = await asyncio.wait_for(
                    self._roundtrip(target, request),
                    timeout=self.request_timeout,
                )
            except (asyncio.TimeoutError, ConnectionError, OSError,
                    ProtocolError):
                await self._drop_connection()
                self.retries += 1
                self._rotate()
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.backoff_max)
                continue
            if reply.status == "redirect":
                self.redirects += 1
                await self._drop_connection()
                if reply.addr is not None:
                    self._point_at(reply.addr)
                else:
                    # No leader known there (yet): the cluster is
                    # converging, not failing, so rotate and poll on a
                    # short *fixed* cadence — the exponential backoff is
                    # for broken connections, and letting elections share
                    # it turns every cold start into a near-second stall.
                    # Polling does not burn the attempt budget; it is
                    # bounded by request_timeout of total waiting.
                    attempt -= 1
                    if time.monotonic() - started >= self.request_timeout:
                        break
                    self._rotate()
                    await asyncio.sleep(self.redirect_poll)
                continue
            if reply.status == "ok":
                return reply.result
            # status == "error": an apply-timeout is retryable (the command
            # may still decide; same seq keeps it exactly-once), and so is
            # node-down (a crashed replica whose frontend still answers —
            # a survivor can take the command).  Anything else is a
            # definitive answer.
            if reply.error in ("apply-timeout", "node-down"):
                self.retries += 1
                self._rotate()
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.backoff_max)
                continue
            return {"ok": False, "error": reply.error}
        raise ServiceUnavailable(
            f"{op} gave up after {self.max_attempts} attempts "
            f"(client={self.client_id}, seq={seq})"
        )

    async def _roundtrip(self, addr: Address, request: Request) -> Reply:
        reader, writer = await self._connect(addr)
        if self._negotiate_pending:
            request.codecs = list(self._wire_prefs)
        writer.write(encode_frame(self._conn_codec, request.to_payload()))
        await writer.drain()
        while True:
            payload = await read_frame(reader, self._conn_codec)
            if payload is None:
                raise ConnectionError("frontend closed the connection")
            reply = Reply.from_payload(payload)
            if reply.rid == request.rid:
                self._negotiate_pending = False
                if reply.codec is not None:
                    # The frontend named its pick; it decodes every later
                    # frame on this connection with it, so switch in step.
                    self._conn_codec = default_codec(prefer=reply.codec)
                return reply
            # Stale reply to an earlier, timed-out rid on a reused
            # connection: discard and keep reading.

    # ------------------------------------------------------------ connections
    async def _connect(
        self, addr: Address
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._conn is not None:
            conn_addr, reader, writer = self._conn
            if conn_addr == addr and not writer.is_closing():
                return reader, writer
            await self._drop_connection()
        reader, writer = await asyncio.open_connection(addr[0], addr[1])
        self._conn = (addr, reader, writer)
        self._conn_codec = self.codec
        # Offer an upgrade only when this host would rather speak
        # something better than the configured codec.
        self._negotiate_pending = self._wire_prefs[0] != self.codec.name
        return reader, writer

    async def _drop_connection(self) -> None:
        if self._conn is None:
            return
        _, _, writer = self._conn
        self._conn = None
        self._conn_codec = self.codec
        self._negotiate_pending = False
        writer.close()

    def _point_at(self, addr: Address) -> None:
        addr = (addr[0], addr[1])
        if addr not in self.addrs:
            self.addrs.append(addr)
        self._target = self.addrs.index(addr)

    def _rotate(self) -> None:
        self._target = (self._target + 1) % len(self.addrs)

    async def close(self) -> None:
        await self._drop_connection()

    async def __aenter__(self) -> "KVClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()
