"""The client wire protocol: length-prefixed tagged-JSON frames.

Clients and frontends exchange dict payloads through the same
:class:`~repro.net.codec.Codec` the node-to-node transports use — one
structural transform, one set of tags, on every wire this repo owns.
Framing mirrors :mod:`repro.net.tcp`: a 4-byte big-endian length prefix,
then the encoded body; frames above :data:`MAX_FRAME` are protocol bugs,
not traffic.

Two message shapes cross the wire:

* a :class:`Request` — ``rid`` (per-connection request id, echoed back so
  a client can discard stale replies after a timeout), ``client`` (the
  session name), ``seq`` (the per-client session sequence number that
  drives exactly-once dedup in :class:`~repro.svc.state.KVStateMachine`),
  ``op`` and its operands;
* a :class:`Reply` — the echoed ``rid`` plus a status: ``ok`` carries the
  state machine's result dict, ``error`` a human-readable reason, and
  ``redirect`` the pid (and, when known, the serve address) of the
  leader the client should retry against.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..net.codec import Codec, CodecError

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "Request",
    "Reply",
    "encode_frame",
    "read_frame",
]

_LEN_BYTES = 4
#: Client frames are small command/result dicts; anything near this is a bug.
MAX_FRAME = 1024 * 1024


class ProtocolError(Exception):
    """A frame violated the client wire protocol."""


@dataclass
class Request:
    """One client request (see module docstring for field semantics)."""

    rid: int
    client: str
    op: str
    seq: Optional[int] = None
    key: Optional[str] = None
    value: Any = None
    expect: Any = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "rid": self.rid, "client": self.client, "op": self.op,
            "seq": self.seq, "key": self.key, "value": self.value,
            "expect": self.expect,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "Request":
        if not isinstance(payload, dict):
            raise ProtocolError(f"request frame is not a dict: {payload!r}")
        try:
            return cls(
                rid=int(payload["rid"]),
                client=str(payload["client"]),
                op=str(payload["op"]),
                seq=payload.get("seq"),
                key=payload.get("key"),
                value=payload.get("value"),
                expect=payload.get("expect"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed request frame: {exc}") from exc

    def command(self) -> Dict[str, Any]:
        """The replicated-log payload this request submits (no ``rid`` —
        retries get fresh rids but must hash to the same command)."""
        return {
            "client": self.client, "seq": self.seq, "op": self.op,
            "key": self.key, "value": self.value, "expect": self.expect,
        }


@dataclass
class Reply:
    """One frontend reply; ``status`` is ``ok`` / ``error`` / ``redirect``."""

    rid: int
    status: str
    result: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    leader: Optional[int] = None
    addr: Optional[Tuple[str, int]] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "rid": self.rid, "status": self.status, "result": self.result,
            "error": self.error, "leader": self.leader, "addr": self.addr,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "Reply":
        if not isinstance(payload, dict):
            raise ProtocolError(f"reply frame is not a dict: {payload!r}")
        try:
            addr = payload.get("addr")
            return cls(
                rid=int(payload["rid"]),
                status=str(payload["status"]),
                result=dict(payload.get("result") or {}),
                error=payload.get("error"),
                leader=payload.get("leader"),
                addr=(str(addr[0]), int(addr[1])) if addr else None,
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ProtocolError(f"malformed reply frame: {exc}") from exc


def encode_frame(codec: Codec, payload: Any) -> bytes:
    """Serialize *payload* as one length-prefixed frame."""
    try:
        body = codec.encode_payload(payload)
    except CodecError as exc:
        raise ProtocolError(f"unencodable frame payload: {exc}") from exc
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return len(body).to_bytes(_LEN_BYTES, "big") + body


async def read_frame(reader: asyncio.StreamReader, codec: Codec) -> Any:
    """Read and decode one frame; ``None`` on clean EOF.

    A length above :data:`MAX_FRAME` or an undecodable body raises
    :class:`ProtocolError` — the caller drops the connection (the stream
    is unrecoverable once out of sync).
    """
    try:
        header = await reader.readexactly(_LEN_BYTES)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME={MAX_FRAME}"
        )
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    try:
        return codec.decode_payload(body)
    except CodecError as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
