"""The client wire protocol: length-prefixed codec frames.

Clients and frontends exchange dict payloads through the same
:class:`~repro.net.codec.Codec` the node-to-node transports use — one
structural transform, one set of tags, on every wire this repo owns.
Framing is the shared :mod:`repro.net.frame` contract (a 4-byte
big-endian length prefix, then the encoded body), the same module
:mod:`repro.net.tcp` frames the replica mesh with; frames above
:data:`MAX_FRAME` are protocol bugs, not traffic.

Two message shapes cross the wire:

* a :class:`Request` — ``rid`` (per-connection request id, echoed back so
  a client can discard stale replies after a timeout), ``client`` (the
  session name), ``seq`` (the per-client session sequence number that
  drives exactly-once dedup in :class:`~repro.svc.state.KVStateMachine`),
  ``op`` and its operands;
* a :class:`Reply` — the echoed ``rid`` plus a status: ``ok`` carries the
  state machine's result dict, ``error`` a human-readable reason, and
  ``redirect`` the pid (and, when known, the serve address) of the
  leader the client should retry against.

**Codec negotiation.**  Every connection starts in JSON-compatible
territory: the first request a client sends may carry ``codecs``, its
codec names in preference order.  The frontend answers that request in
the codec it was *received* in, names its pick in the reply's ``codec``
field, and decodes every subsequent frame on the connection with the
pick; the client sees the field and switches its next send the same way.
Both sides upgrade in lockstep with no extra round trip, and either side
omitting the field (an older peer) leaves the connection on its default
codec — the fields are additive, so mixed versions interoperate.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..net.codec import Codec, CodecError
from ..net.frame import (
    FrameOversizeError,
    FrameTruncatedError,
    encode_frame as _frame,
    read_frame_bytes,
    write_frame as _write_frame,
)

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "Request",
    "Reply",
    "encode_frame",
    "read_frame",
    "write_frame",
]

#: Client frames are small command/result dicts; anything near this is a bug.
MAX_FRAME = 1024 * 1024


class ProtocolError(Exception):
    """A frame violated the client wire protocol."""


@dataclass
class Request:
    """One client request (see module docstring for field semantics)."""

    rid: int
    client: str
    op: str
    seq: Optional[int] = None
    key: Optional[str] = None
    value: Any = None
    expect: Any = None
    #: Codec names in preference order; sent on a connection's first
    #: request to open negotiation, omitted (None) everywhere else.
    codecs: Optional[List[str]] = None
    #: Causal-span correlation id (``"<client>.<seq>"``), minted once per
    #: sequenced command and shared by all its retries; additive like
    #: ``codecs``, so older peers interoperate.
    span: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "rid": self.rid, "client": self.client, "op": self.op,
            "seq": self.seq, "key": self.key, "value": self.value,
            "expect": self.expect,
        }
        if self.codecs is not None:
            payload["codecs"] = list(self.codecs)
        if self.span is not None:
            payload["span"] = self.span
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "Request":
        if not isinstance(payload, dict):
            raise ProtocolError(f"request frame is not a dict: {payload!r}")
        try:
            codecs = payload.get("codecs")
            span = payload.get("span")
            return cls(
                rid=int(payload["rid"]),
                client=str(payload["client"]),
                op=str(payload["op"]),
                seq=payload.get("seq"),
                key=payload.get("key"),
                value=payload.get("value"),
                expect=payload.get("expect"),
                codecs=[str(c) for c in codecs] if codecs else None,
                span=str(span) if span is not None else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed request frame: {exc}") from exc

    def command(self) -> Dict[str, Any]:
        """The replicated-log payload this request submits (no ``rid`` —
        retries get fresh rids but must hash to the same command)."""
        command = {
            "client": self.client, "seq": self.seq, "op": self.op,
            "key": self.key, "value": self.value, "expect": self.expect,
        }
        if self.span is not None:
            # Rides the log so every replica can emit span.* stage events;
            # the state machine dedups on (client, seq) and ignores it.
            command["span"] = self.span
        return command


@dataclass
class Reply:
    """One frontend reply; ``status`` is ``ok`` / ``error`` / ``redirect``."""

    rid: int
    status: str
    result: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    leader: Optional[int] = None
    addr: Optional[Tuple[str, int]] = None
    #: The codec name this connection speaks from the next frame on;
    #: set only on the reply that answers a negotiating request.
    codec: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "rid": self.rid, "status": self.status, "result": self.result,
            "error": self.error, "leader": self.leader, "addr": self.addr,
        }
        if self.codec is not None:
            payload["codec"] = self.codec
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "Reply":
        if not isinstance(payload, dict):
            raise ProtocolError(f"reply frame is not a dict: {payload!r}")
        try:
            addr = payload.get("addr")
            codec = payload.get("codec")
            return cls(
                rid=int(payload["rid"]),
                status=str(payload["status"]),
                result=dict(payload.get("result") or {}),
                error=payload.get("error"),
                leader=payload.get("leader"),
                addr=(str(addr[0]), int(addr[1])) if addr else None,
                codec=str(codec) if codec is not None else None,
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ProtocolError(f"malformed reply frame: {exc}") from exc


def _encode_body(codec: Codec, payload: Any) -> bytes:
    try:
        body = codec.encode_payload(payload)
    except CodecError as exc:
        raise ProtocolError(f"unencodable frame payload: {exc}") from exc
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return body


def encode_frame(codec: Codec, payload: Any) -> bytes:
    """Serialize *payload* as one length-prefixed frame buffer."""
    return _frame(_encode_body(codec, payload))


def write_frame(
    writer: asyncio.StreamWriter, codec: Codec, payload: Any
) -> None:
    """Queue *payload* on *writer* as a frame, body bytes uncopied."""
    _write_frame(writer, _encode_body(codec, payload))


async def read_frame(reader: asyncio.StreamReader, codec: Codec) -> Any:
    """Read and decode one frame; ``None`` on clean EOF.

    A length above :data:`MAX_FRAME` or an undecodable body raises
    :class:`ProtocolError` — the caller drops the connection (the stream
    is unrecoverable once out of sync).
    """
    try:
        body = await read_frame_bytes(reader, MAX_FRAME)
    except FrameOversizeError as exc:
        raise ProtocolError(str(exc)) from exc
    except (FrameTruncatedError, ConnectionError):
        return None
    if body is None:
        return None
    try:
        return codec.decode_payload(body)
    except CodecError as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
