"""repro.svc — the replicated key-value/lock service (:mod:`repro.svc`).

The paper's consensus algorithms exist to power replicated services; this
package is that service, end to end:

* :mod:`repro.svc.protocol` — the client wire protocol: length-prefixed
  request/reply frames reusing the tagged-JSON wire codec, with request
  ids and per-client session sequence numbers;
* :mod:`repro.svc.state` — :class:`KVStateMachine`, the deterministic
  get/put/cas/delete + acquire/release state machine applied from the
  :class:`~repro.consensus.multi.ReplicatedStateMachine` log, with the
  session dedup table (exactly-once on client retries) as part of the
  replicated state;
* :mod:`repro.svc.frontend` — :class:`ServiceFrontend`, the asyncio TCP
  acceptor attached to a :class:`~repro.net.host.NodeHost`: it submits
  commands into the local replica, replies on local apply, and returns
  leader redirects derived from the Ω output;
* :mod:`repro.svc.client` — :class:`KVClient`, the smart async client:
  redirect-following, timeout/backoff retry, connection reuse.

See ``docs/service.md`` for the protocol and session/dedup model.
"""

from .client import KVClient, ServiceUnavailable
from .frontend import ServiceFrontend, start_service
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    Reply,
    Request,
    encode_frame,
    read_frame,
)
from .state import KVStateMachine

__all__ = [
    "KVClient",
    "ServiceUnavailable",
    "ServiceFrontend",
    "start_service",
    "KVStateMachine",
    "Request",
    "Reply",
    "ProtocolError",
    "MAX_FRAME",
    "encode_frame",
    "read_frame",
]
