"""The deterministic KV/lock state machine applied from the replicated log.

Every replica owns one :class:`KVStateMachine` and feeds it the commands
its :class:`~repro.consensus.multi.ReplicatedStateMachine` applies, in
slot order.  Determinism is the whole contract: identical logs produce
identical stores, lock tables, *and session tables* on every replica —
the session table is the exactly-once mechanism, so it must be part of
the replicated state, not frontend bookkeeping.

Exactly-once on retries works in two layers:

* the client resubmits a timed-out command under the **same** ``(client,
  seq)`` pair (possibly at a different replica after a leader change), so
  the log may carry the command more than once;
* :meth:`KVStateMachine.apply` executes a command only when ``seq`` is
  greater than the session's last applied sequence; a replayed ``seq``
  returns the *cached* result of the original execution (the
  read-your-retry answer), and an older one — a command its client
  abandoned before issuing newer ones — is rejected as stale.  The
  mutation runs once, everywhere, no matter how often it appears.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["KVStateMachine"]

#: Operations that mutate or read through the replicated log.
OPS = ("get", "put", "delete", "cas", "acquire", "release")


class KVStateMachine:
    """get/put/cas/delete + acquire/release over one replicated dict."""

    def __init__(self) -> None:
        self.store: Dict[str, Any] = {}
        #: lock name -> owning client (session) id.
        self.locks: Dict[str, str] = {}
        #: client id -> (last applied seq, its result) — replicated state.
        self.sessions: Dict[str, Tuple[int, Dict[str, Any]]] = {}
        #: Commands executed (dedup hits excluded).
        self.applied = 0

    # ------------------------------------------------------------- dedup API
    def cached(self, client: str, seq: Any) -> Optional[Dict[str, Any]]:
        """The cached result if ``(client, seq)`` was already applied."""
        if not isinstance(seq, int):
            return None
        session = self.sessions.get(client)
        if session is not None and session[0] == seq:
            return session[1]
        return None

    # ----------------------------------------------------------------- apply
    def apply(self, command: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Execute one decided *command*; returns ``(result, duplicate)``.

        Commands without a session (``client``/``seq`` missing) are
        executed unconditionally — internal traffic like the proposal
        round's plain-string payloads never reaches here (the frontend
        only applies dict commands).
        """
        client = command.get("client")
        seq = command.get("seq")
        if isinstance(client, str) and isinstance(seq, int):
            session = self.sessions.get(client)
            if session is not None and seq <= session[0]:
                if seq == session[0]:
                    return session[1], True
                return {"ok": False, "error": "stale-seq"}, True
            result = self._execute(command)
            self.sessions[client] = (seq, result)
        else:
            result = self._execute(command)
        self.applied += 1
        return result, False

    # ------------------------------------------------------------ operations
    def _execute(self, command: Dict[str, Any]) -> Dict[str, Any]:
        op = command.get("op")
        key = command.get("key")
        if not isinstance(key, str) and op in OPS:
            return {"ok": False, "error": "missing-key"}
        if op == "get":
            return {
                "ok": True, "value": self.store.get(key),
                "found": key in self.store,
            }
        if op == "put":
            self.store[key] = command.get("value")
            return {"ok": True, "value": command.get("value")}
        if op == "delete":
            found = key in self.store
            self.store.pop(key, None)
            return {"ok": True, "found": found}
        if op == "cas":
            current = self.store.get(key)
            if current == command.get("expect"):
                self.store[key] = command.get("value")
                return {"ok": True, "value": command.get("value")}
            return {"ok": False, "error": "cas-mismatch", "value": current}
        if op == "acquire":
            owner = self.locks.get(key)
            client = command.get("client")
            if owner is None or owner == client:
                if isinstance(client, str):
                    self.locks[key] = client
                    return {"ok": True, "owner": client}
                return {"ok": False, "error": "lock-needs-session"}
            return {"ok": False, "error": "lock-held", "owner": owner}
        if op == "release":
            owner = self.locks.get(key)
            if owner is not None and owner == command.get("client"):
                del self.locks[key]
                return {"ok": True}
            return {"ok": False, "error": "not-owner", "owner": owner}
        return {"ok": False, "error": f"unknown-op:{op}"}

    # ------------------------------------------------------------- snapshots
    def dump(self) -> Dict[str, Any]:
        """A codec-safe snapshot (what the ``dump`` frontend op returns)."""
        return {
            "store": dict(self.store),
            "locks": dict(self.locks),
            "sessions": {
                client: [seq, result]
                for client, (seq, result) in self.sessions.items()
            },
            "applied": self.applied,
        }
