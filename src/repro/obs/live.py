"""The live telemetry plane: streamed traces and online QoS.

Everything else in :mod:`repro.obs` is postmortem — nodes buffer JSONL,
the launcher collects files after shutdown, and ``repro trace qos``
replays them offline.  This module makes the same event stream visible
*while the run is still going*:

* :class:`StreamingSink` — a :class:`~repro.obs.sinks.TraceSink` that
  ships registry-validated events over TCP to a collector address with
  bounded buffering (full buffer ⇒ counted drop, never backpressure on
  the node), batch framing reusing :mod:`repro.net.frame`, and
  reconnect-with-backoff on torn streams.  Wire format: one hello frame
  (a JSON object carrying the node id and clock provenance, exactly the
  :class:`~repro.obs.sinks.JsonlSink` header with ``"trace":
  "repro.obs.live"``), then batch frames — each a JSON array of
  ``[time, kind, pid, data]`` rows with payload values passed through
  :func:`~repro.obs.encode.to_jsonable`.
* :class:`LiveCollector` — the receiving TCP server: accepts any number
  of node streams, rebases their clocks onto a common epoch (base = the
  first ``epoch_wall`` seen, mirroring :mod:`repro.obs.merge`), and
  feeds every event into an :class:`IncrementalQoS`.
* :class:`IncrementalQoS` — a streaming re-implementation of
  :func:`repro.analysis.qos.qos_report`: it ingests events one at a
  time, keeps O(n²) state (per-observer suspicion sets, open mistakes,
  leader runs, per-channel send times), and produces a
  :class:`~repro.analysis.qos.QoSReport` at any instant that is
  field-for-field **equal** to what the offline analyzer computes over
  the same events (the parity contract ``tests/obs/test_live.py``
  enforces on the committed example traces).

``repro watch`` is the CLI front end (see :mod:`repro.cli`); ``docs/
live.md`` documents the wire format and the watch UI.
"""

from __future__ import annotations

import asyncio
import json
import time as _time
from bisect import bisect_left, bisect_right
from collections import deque
from typing import (
    Any, Deque, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set,
    Tuple, Union,
)

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .encode import EncodeError, from_jsonable, to_jsonable
from .events import TraceEvent
from .sinks import MemorySink, TraceSink

__all__ = [
    "LIVE_STREAM_MAGIC",
    "LIVE_STREAM_VERSION",
    "IncrementalQoS",
    "LiveCollector",
    "StreamingSink",
    "parse_ship_address",
]

#: ``trace`` field of the hello frame opening every shipped stream.
LIVE_STREAM_MAGIC = "repro.obs.live"
#: Wire-format version stamped into (and accepted from) hello frames.
LIVE_STREAM_VERSION = 1

#: Largest frame the collector will accept (a batch of 256 events with
#: metrics-snapshot payloads stays far below this).
MAX_FRAME = 1024 * 1024


def parse_ship_address(
    spec: Union[str, Tuple[str, int]],
) -> Tuple[str, int]:
    """Parse a ``--ship-to`` / ``--connect`` address into ``(host, port)``.

    Accepts ``HOST:PORT``, ``:PORT``, a bare port, or an already-split
    ``(host, port)`` tuple; the host defaults to ``127.0.0.1``.
    """
    if isinstance(spec, tuple):
        host, port = spec
        return (host or "127.0.0.1", int(port))
    text = str(spec).strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port_text = "127.0.0.1", text
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"bad collector address {spec!r} (want HOST:PORT)"
        ) from None
    return host, port


# ---------------------------------------------------------------------------
# Shipper
# ---------------------------------------------------------------------------

class StreamingSink(TraceSink):
    """Ship trace events to a :class:`LiveCollector` over TCP.

    A :class:`~repro.obs.sinks.TraceSink`, so it tees next to the node's
    JSONL/memory sinks through the existing wiring.  ``record`` is
    synchronous and never blocks: events are JSON-encoded immediately
    (snapshotting mutable payloads) into a bounded buffer; when the
    buffer is full the event is *dropped* and counted — telemetry must
    never backpressure the node it observes.  A background flusher task
    (started with :meth:`start`) drains the buffer in batches and
    reconnects with exponential backoff when the collector goes away;
    events batched at the instant a connection tears are dropped
    (at-most-once delivery) and counted too.

    Counters (sampled into the ``obs_stream_*`` gauges by live nodes):
    ``events_shipped``, ``events_dropped``, ``batches_shipped``,
    ``reconnects``, ``connect_failures``.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        node: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
        max_buffer: int = 4096,
        batch_max: int = 256,
        flush_interval: float = 0.05,
        backoff: float = 0.2,
        max_backoff: float = 2.0,
    ) -> None:
        self._host, self._port = parse_ship_address(address)
        self.node = node
        self._kinds: Optional[Set[str]] = set(kinds) if kinds is not None else None
        self.max_buffer = max_buffer
        self.batch_max = batch_max
        self.flush_interval = flush_interval
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.epoch_wall = _time.time()
        self.epoch_mono = _time.monotonic()
        self._buffer: Deque[Tuple[Time, str, Optional[ProcessId], Dict[str, Any]]] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._hello_sent = False
        self._closed = False
        self.events_shipped = 0
        self.events_dropped = 0
        self.batches_shipped = 0
        self.reconnects = 0
        self.connect_failures = 0

    # ------------------------------------------------------------ lifecycle
    @property
    def address(self) -> str:
        """The collector address this sink ships to, as ``HOST:PORT``."""
        return f"{self._host}:{self._port}"

    @property
    def buffered(self) -> int:
        """Events waiting in the bounded buffer."""
        return len(self._buffer)

    def rebase_epoch(self) -> None:
        """Re-stamp the provenance clocks to *now* (= trace time zero).

        Must happen before the hello frame goes out; afterwards the
        collector has already rebased this stream and the epoch is frozen
        (same contract as :meth:`repro.obs.sinks.JsonlSink.rebase_epoch`).
        """
        if self._hello_sent:
            raise ConfigurationError(
                "cannot rebase a live stream epoch after the hello frame"
            )
        self.epoch_wall = _time.time()
        self.epoch_mono = _time.monotonic()

    async def start(self) -> None:
        """Spawn the background flusher (idempotent; needs a running loop)."""
        if self._task is not None or self._closed:
            return
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        # Keep the reference: a bare create_task could be collected
        # mid-flight and its exception lost.
        self._task = asyncio.get_running_loop().create_task(self._run())

    # ------------------------------------------------------------ recording
    def record(
        self, time: Time, kind: str, pid: Optional[ProcessId], **data: Any
    ) -> None:
        if self._closed:
            return
        kinds = self._kinds
        if kinds is not None and kind not in kinds:
            return
        if len(self._buffer) >= self.max_buffer:
            self.events_dropped += 1
            return
        # Encode now: payloads may hold mutable views (suspect sets) that
        # the protocol mutates after recording; the JSONL sink snapshots
        # the same way by writing immediately.
        encoded = {key: to_jsonable(value) for key, value in data.items()}
        self._buffer.append((time, kind, pid, encoded))
        if self._wakeup is not None:
            self._wakeup.set()

    def wants(self, kind: str) -> bool:
        return not self._closed and (self._kinds is None or kind in self._kinds)

    # ------------------------------------------------------------- flusher
    async def _run(self) -> None:
        from ..net.frame import write_frame  # deferred: repro.net imports repro.obs

        backoff = self.backoff
        while not self._closed:
            try:
                _, writer = await asyncio.open_connection(self._host, self._port)
            except OSError:
                self.connect_failures += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, self.max_backoff)
                continue
            backoff = self.backoff
            self._writer = writer
            try:
                await self._pump(writer, write_frame)
            except (ConnectionError, OSError):
                self.reconnects += 1
            finally:
                self._writer = None
                writer.close()

    async def _pump(self, writer: asyncio.StreamWriter, write_frame) -> None:
        hello = {
            "trace": LIVE_STREAM_MAGIC,
            "version": LIVE_STREAM_VERSION,
            "node": self.node,
            "epoch_wall": self.epoch_wall,
            "epoch_mono": self.epoch_mono,
        }
        write_frame(writer, json.dumps(hello, separators=(",", ":")).encode())
        await writer.drain()
        self._hello_sent = True
        assert self._wakeup is not None
        while not self._closed:
            if not self._buffer:
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(
                        self._wakeup.wait(), self.flush_interval
                    )
                except asyncio.TimeoutError:
                    continue  # periodic poll; nothing arrived
                continue
            pending: List[Any] = []
            while self._buffer and len(pending) < self.batch_max:
                t, kind, pid, data = self._buffer.popleft()
                pending.append([t, kind, pid, data])
            body = json.dumps(pending, separators=(",", ":")).encode()
            try:
                write_frame(writer, body)
                await writer.drain()
            except (ConnectionError, OSError):
                # The batch was already taken off the buffer: at-most-once.
                self.events_dropped += len(pending)
                raise
            self.events_shipped += len(pending)
            self.batches_shipped += 1

    # ------------------------------------------------------------- teardown
    async def aclose(self, timeout: float = 1.0) -> None:
        """Drain (best-effort, up to *timeout*), then stop the flusher."""
        if self._task is not None and not self._closed:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + timeout
            while self._buffer and loop.time() < deadline:
                await asyncio.sleep(0.02)
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass  # the cancellation we just requested
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def close(self) -> None:
        """Synchronous close for the :class:`TraceSink` contract.

        Undelivered buffered events are dropped (and counted); prefer
        :meth:`aclose` from async teardown paths, which drains first.
        """
        if self._closed:
            return
        self._closed = True
        self.events_dropped += len(self._buffer)
        self._buffer.clear()
        if self._wakeup is not None:
            self._wakeup.set()
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None


# ---------------------------------------------------------------------------
# Incremental QoS
# ---------------------------------------------------------------------------

_UNSET = object()


class IncrementalQoS:
    """Streaming equivalent of :func:`repro.analysis.qos.qos_report`.

    Feed events in stream order with :meth:`observe_event`; call
    :meth:`report` at any instant for a full
    :class:`~repro.analysis.qos.QoSReport` over everything seen so far,
    or :meth:`snapshot` for the cheap dict the watch UI renders.

    Parity with the offline analyzer is exact, including the
    crash-truncation rules: a suspicion interval is opened *tentatively*
    (the crash event that makes it correct may arrive later in the
    stream than the ``fd`` event that opened it), and the offline
    analyzer's whole-trace crash knowledge is applied at report time —
    intervals whose suspect had already crashed are discarded, intervals
    whose suspect crashed mid-mistake are truncated at the crash.
    """

    def __init__(self, channel: str = "fd") -> None:
        self.channel = channel
        self._end_time: Time = 0.0
        self._event_count = 0
        self._kind_counts: Dict[str, int] = {}
        self._pids: Set[ProcessId] = set()
        self._crashes: Dict[ProcessId, Time] = {}
        #: channel -> times of non-loopback sends (sorted lazily at report).
        self._sends: Dict[Any, List[Time]] = {}
        # Per-observer detector state for `channel`:
        self._has_records: Set[ProcessId] = set()
        self._previous: Dict[ProcessId, FrozenSet[ProcessId]] = {}
        #: observer -> {suspect: open time} — tentatively open mistakes.
        self._open_since: Dict[ProcessId, Dict[ProcessId, Time]] = {}
        #: observer -> [(suspect, start, retraction time)] — closed ones.
        self._closed: Dict[ProcessId, List[Tuple[ProcessId, Time, Time]]] = {}
        #: observer -> {suspect: start of its current suspicion stretch}.
        self._suspect_since: Dict[ProcessId, Dict[ProcessId, Time]] = {}
        #: observer -> last trusted output / start of that constant run.
        self._trusted: Dict[ProcessId, Optional[ProcessId]] = {}
        self._run_start: Dict[ProcessId, Time] = {}
        self._span_replies = 0

    # ------------------------------------------------------------ ingestion
    def observe_event(self, event: TraceEvent) -> None:
        """Fold one event into the running state (events in stream order)."""
        t = event.time
        if t > self._end_time:
            self._end_time = t
        self._event_count += 1
        kind = event.kind
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if event.pid is not None:
            self._pids.add(event.pid)
        if kind in ("send", "deliver"):
            src = event.get("src")
            dst = event.get("dst")
            if src is not None:
                self._pids.add(src)
            if dst is not None:
                self._pids.add(dst)
            if kind == "send" and not event.get("loopback"):
                self._sends.setdefault(event.get("channel"), []).append(t)
        elif kind == "crash":
            self._crashes[event.pid] = t
        elif kind == "fd" and event.get("channel") == self.channel:
            self._observe_fd(
                event.pid, t, event.get("suspected"), event.get("trusted")
            )
        elif kind == "span.reply":
            self._span_replies += 1

    def observe(
        self, time: Time, kind: str, pid: Optional[ProcessId], **data: Any
    ) -> None:
        """Convenience wrapper building the :class:`TraceEvent` inline."""
        self.observe_event(TraceEvent(time=time, kind=kind, pid=pid, data=data))

    def _observe_fd(
        self,
        observer: Optional[ProcessId],
        t: Time,
        suspected: Optional[Iterable[ProcessId]],
        trusted: Optional[ProcessId],
    ) -> None:
        self._has_records.add(observer)
        # Leader-run tracking (suspected-less records still carry trusted).
        if self._trusted.get(observer, _UNSET) is _UNSET or (
            self._trusted[observer] != trusted
        ):
            self._trusted[observer] = trusted
            self._run_start[observer] = t
        if suspected is None:
            return
        suspected = frozenset(suspected)
        previous = self._previous.get(observer, frozenset())
        open_since = self._open_since.setdefault(observer, {})
        stretch = self._suspect_since.setdefault(observer, {})
        for q in suspected - previous:
            open_since[q] = t  # tentative; crash screening at report time
            stretch[q] = t
        for q in previous - suspected:
            start = open_since.pop(q, None)
            if start is not None:
                self._closed.setdefault(observer, []).append((q, start, t))
            stretch.pop(q, None)
        self._previous[observer] = suspected

    # ------------------------------------------------------------ reporting
    @property
    def end_time(self) -> Time:
        """Timestamp of the latest event seen."""
        return self._end_time

    @property
    def event_count(self) -> int:
        return self._event_count

    def report(
        self,
        correct: Optional[FrozenSet[ProcessId]] = None,
        period: Optional[Time] = None,
        cost_channels: Optional[Sequence[str]] = None,
        bound_channel: str = "fdp",
        n: Optional[int] = None,
        bound_tolerance: Optional[float] = None,
    ):
        """A :class:`~repro.analysis.qos.QoSReport` over everything seen.

        Same signature and semantics as
        :func:`repro.analysis.qos.qos_report` — the parity test asserts
        the two reports are ``==``.
        """
        # Deferred: repro.analysis.qos imports repro.obs.reader.
        from ..analysis.qos import (
            BOUND_TOLERANCE, QoSReport, transformation_bound,
        )

        if bound_tolerance is None:
            bound_tolerance = BOUND_TOLERANCE
        end_time = self._end_time
        if n is None:
            n = max(self._pids) + 1 if self._pids else 0
        crashes = dict(self._crashes)
        if correct is None:
            correct = frozenset(range(n)) - frozenset(crashes)
        correct = frozenset(correct)

        detection = {
            victim: self._detection(victim, at, correct)
            for victim, at in sorted(crashes.items())
        }
        mistakes = self._mistakes(correct, crashes)
        mistake_rate = len(mistakes) / end_time if end_time > 0 else None
        durations = [m.duration for m in mistakes if m.duration is not None]
        mean_duration = sum(durations) / len(durations) if durations else None
        stabilized_at, leader = self._leader(correct)

        report = QoSReport(
            n=n, channel=self.channel, end_time=end_time, correct=correct,
            crashes=dict(sorted(crashes.items())), detection=detection,
            mistakes=mistakes, mistake_rate=mistake_rate,
            mean_mistake_duration=mean_duration,
            leader_stabilized_at=stabilized_at, stable_leader=leader,
        )
        if period is None or period <= 0:
            return report

        report.period = period
        settle_points = [stabilized_at if stabilized_at is not None else 0.0]
        for victim, at in crashes.items():
            latency = detection.get(victim)
            if latency is not None:
                settle_points.append(at + latency)
        window_start = max(settle_points) + period
        if end_time - window_start < 2 * period:
            report.cost_window = None
            return report
        report.cost_window = (window_start, end_time)
        counts = self._channel_counts(window_start, end_time)
        if cost_channels is None:
            cost_channels = sorted(
                ch for ch, count in counts.items() if ch and count > 0
            )
        spans = (end_time - window_start) / period
        report.message_cost = {
            ch: (counts.get(ch, 0) / spans if spans > 0 else 0.0)
            for ch in cost_channels
        }
        report.bound_channel = bound_channel
        report.bound_value = float(transformation_bound(n))
        if bound_channel in report.message_cost:
            cost = report.message_cost[bound_channel]
            if cost > 0:
                report.bound_ok = (
                    cost <= report.bound_value * (1.0 + bound_tolerance)
                )
        return report

    def _detection(
        self,
        victim: ProcessId,
        crash_time: Time,
        correct: FrozenSet[ProcessId],
    ) -> Optional[Time]:
        worst = crash_time
        for pid in correct:
            since = self._suspect_since.get(pid, {}).get(victim)
            if since is None:
                return None
            if since > worst:
                worst = since
        return worst - crash_time

    def _mistakes(
        self,
        correct: FrozenSet[ProcessId],
        crashes: Dict[ProcessId, Time],
    ) -> List:
        from ..analysis.qos import Mistake

        mistakes: List = []
        observers = set(self._closed) | set(self._open_since)
        for observer in sorted(obs for obs in observers if obs in correct):
            for q, start, raw_end in self._closed.get(observer, []):
                crash_at = crashes.get(q)
                if crash_at is not None and crash_at <= start:
                    continue  # the suspicion was already correct at open
                end = raw_end
                if crash_at is not None and crash_at < end:
                    end = max(start, crash_at)
                mistakes.append(Mistake(observer, q, start, end))
            for q, start in self._open_since.get(observer, {}).items():
                crash_at = crashes.get(q)
                if crash_at is not None and crash_at <= start:
                    continue
                if crash_at is not None:
                    # The suspect eventually did crash: the mistake lasted
                    # until the crash made the suspicion true.
                    mistakes.append(Mistake(observer, q, start, crash_at))
                else:
                    mistakes.append(Mistake(observer, q, start, None))
        mistakes.sort(key=lambda m: (m.start, m.observer, m.suspect))
        return mistakes

    def _leader(
        self, correct: FrozenSet[ProcessId]
    ) -> Tuple[Optional[Time], Optional[ProcessId]]:
        observers = frozenset(
            pid for pid in correct if pid in self._has_records
        )
        if not observers or observers != correct:
            return None, None
        finals = {self._trusted[pid] for pid in observers}
        if len(finals) != 1:
            return None, None
        leader = next(iter(finals))
        if leader is None or leader not in correct:
            return None, None
        # Every observer's final trusted equals `leader`, so its trailing
        # clean stretch is exactly its trailing constant-trusted run.
        worst = 0.0
        for pid in observers:
            since = self._run_start[pid]
            if since > worst:
                worst = since
        return worst, leader

    def _channel_counts(self, after: Time, before: Time) -> Dict[Any, int]:
        counts: Dict[Any, int] = {}
        for ch, times in self._sends.items():
            times.sort()  # merged node streams may interleave out of order
            counts[ch] = bisect_right(times, before) - bisect_left(times, after)
        return counts

    # -------------------------------------------------------------- watch UI
    def snapshot(self) -> Dict[str, Any]:
        """Cheap running-state dict for the ``repro watch`` table."""
        return {
            "n": max(self._pids) + 1 if self._pids else 0,
            "end_time": self._end_time,
            "events": self._event_count,
            "crashes": dict(sorted(self._crashes.items())),
            "trusted": {
                pid: self._trusted[pid] for pid in sorted(self._trusted)
            },
            "suspected": {
                pid: sorted(self._previous[pid])
                for pid in sorted(self._previous)
            },
            "open_mistakes": sum(len(v) for v in self._open_since.values()),
            "closed_mistakes": sum(len(v) for v in self._closed.values()),
            "span_replies": self._span_replies,
            "sends": {
                ch: len(self._sends[ch])
                for ch in sorted(k for k in self._sends if k)
            },
            "kinds": dict(sorted(self._kind_counts.items())),
        }


# ---------------------------------------------------------------------------
# Collector
# ---------------------------------------------------------------------------

class LiveCollector:
    """TCP server ingesting :class:`StreamingSink` streams into an
    :class:`IncrementalQoS`.

    Clock rebasing mirrors :mod:`repro.obs.merge`: the first hello's
    ``epoch_wall`` becomes the common base, and every stream's events are
    shifted by its own epoch's offset from that base, so multi-node
    streams land on one comparable time axis.

    ``trace`` records ``live.connect`` / ``live.disconnect`` lifecycle
    events (and, with ``retain=True``, every ingested event — tests use
    this to diff against the shipped originals).
    """

    def __init__(
        self,
        channel: str = "fd",
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = MAX_FRAME,
        retain: bool = False,
    ) -> None:
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._retain = retain
        self.qos = IncrementalQoS(channel=channel)
        self.trace = MemorySink(
            kinds=None if retain else {"live.connect", "live.disconnect"}
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._base_wall: Optional[float] = None
        self.events_ingested = 0
        self.streams_seen = 0
        self.open_streams = 0
        self.torn_streams = 0

    @property
    def address(self) -> str:
        """``HOST:PORT`` to point ``--ship-to`` at (after :meth:`bind`)."""
        return f"{self._host}:{self._port}"

    @property
    def port(self) -> int:
        return self._port

    def now(self) -> Time:
        """Current time on the collector's rebased axis."""
        if self._base_wall is None:
            return 0.0
        return _time.time() - self._base_wall

    async def bind(self) -> str:
        """Start listening; resolves an ephemeral port.  Returns address."""
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from ..net.frame import FrameError, read_frame_bytes

        self.streams_seen += 1
        self.open_streams += 1
        node: Optional[int] = None
        offset = 0.0
        shipped = 0
        try:
            while True:
                try:
                    body = await read_frame_bytes(reader, self._max_frame)
                except FrameError:
                    self.torn_streams += 1  # truncated/oversized frame
                    break
                if body is None:
                    break  # clean EOF
                try:
                    frame = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self.torn_streams += 1  # garbage frame: abandon stream
                    break
                if isinstance(frame, dict):
                    node = frame.get("node")
                    epoch = frame.get("epoch_wall")
                    if isinstance(epoch, (int, float)):
                        if self._base_wall is None:
                            self._base_wall = float(epoch)
                        offset = float(epoch) - self._base_wall
                    self.trace.record(self.now(), "live.connect", None, node=node)
                    continue
                if not isinstance(frame, list):
                    self.torn_streams += 1
                    break
                try:
                    events = [
                        TraceEvent(
                            time=float(t) + offset, kind=kind, pid=pid,
                            data={
                                key: from_jsonable(value)
                                for key, value in data.items()
                            },
                        )
                        for t, kind, pid, data in frame
                    ]
                except (EncodeError, TypeError, ValueError, AttributeError):
                    self.torn_streams += 1  # malformed batch row
                    break
                for event in events:
                    self.qos.observe_event(event)
                    if self._retain:
                        self.trace.record_event(event)
                shipped += len(events)
                self.events_ingested += len(events)
        finally:
            self.open_streams -= 1
            self.trace.record(
                self.now(), "live.disconnect", None, node=node, events=shipped
            )
            writer.close()
