"""repro.obs — the observability layer: trace events, sinks, and merging.

Every measured claim in this reproduction — the ◇C/◇P property checks, the
"phases per round" and message-cost tables, detection latencies — is
computed from a stream of :class:`TraceEvent` records.  This package owns
that stream end to end:

* :mod:`repro.obs.events` — the canonical :class:`TraceEvent` and the
  machine-readable **event-schema registry** (kind → required/optional
  payload keys).  The lint rule ``trace-schema`` and ``repro trace check``
  validate against it, and ``docs/traces.md`` is generated from it.
* :mod:`repro.obs.sinks` — the :class:`TraceSink` protocol with three
  implementations: :class:`MemorySink` (the in-memory, query-friendly log
  that :mod:`repro.analysis` consumes; re-exported as
  :class:`repro.sim.trace.Trace` for compatibility), :class:`JsonlSink`
  (line-buffered streaming JSONL writer with per-node clock provenance),
  and :class:`TeeSink` (fan-out to several sinks).
* :mod:`repro.obs.reader` — the JSONL reader and :func:`as_trace`, the
  coercion every analysis function uses, so verdicts can be computed from
  a live trace, an event list, or a trace file interchangeably.
* :mod:`repro.obs.merge` — the offline merger: rebases per-node clocks
  against a common epoch (headers first, then a max-skew estimate from
  matched send→deliver handshakes) and emits one time-ordered stream.
* :mod:`repro.obs.encode` — the tagged JSON-safe value transform shared
  with the wire codec (tuples, int-keyed dicts, frozensets and the NULL
  sentinel all round-trip exactly).
* :mod:`repro.obs.live` — the live telemetry plane: a
  :class:`StreamingSink` shipping trace events to a TCP collector as the
  run happens, the :class:`LiveCollector` ingesting several node streams
  onto one time base, and :class:`IncrementalQoS`, the online
  event-at-a-time twin of :func:`repro.analysis.qos.qos_report`.
* :mod:`repro.obs.spans` — per-command causal spans: groups the
  ``span.*`` stage events one client command leaves across the service
  path (queue → propose → decide → apply → reply) into per-stage
  latency distributions (``repro trace spans``).

The simulator (:mod:`repro.sim`) and the live runtime (:mod:`repro.net`)
both record through this layer; hosts in separate OS processes each write
their own JSONL file and :func:`merge_traces` reassembles the run
postmortem — the prerequisite for ``kill -9``-style multi-process clusters.
"""

from .encode import EncodeError, from_jsonable, to_jsonable
from .events import (
    EVENT_SCHEMAS,
    EventSchema,
    TraceEvent,
    known_kinds,
    register_event_kind,
    schema_for,
    schema_table,
    validate_event,
)
from .merge import MergeReport, merge_traces
from .reader import TraceFile, as_trace, iter_trace_events, read_trace_file
from .sinks import JsonlSink, MemorySink, TeeSink, Trace, TraceSink

# .metrics subclasses repro.sim.component.Component, and repro.sim imports
# repro.obs.sinks — import it last so both import orders resolve cleanly.
from .metrics import (
    METRIC_SCHEMAS,
    MetricSchema,
    MetricsRegistry,
    MetricsReporter,
    aggregate_trace_kinds,
    known_metrics,
    metric_schema_for,
    register_metric,
    render_prometheus,
)

# .live and .spans are exposed lazily: repro.net.host imports repro.obs,
# and .live needs repro.net.frame — an eager import here would close the
# cycle during `import repro.net`.  Same pattern as repro.net's moved-name
# shims: resolve on first attribute access, when both packages exist.
_LIVE_NAMES = (
    "IncrementalQoS",
    "LiveCollector",
    "StreamingSink",
    "parse_ship_address",
)
_SPAN_NAMES = (
    "Span",
    "SpanCoverage",
    "SpanReport",
    "analyze_spans",
    "collect_spans",
    "span_coverage",
)


def __getattr__(name: str):
    if name in _LIVE_NAMES:
        from . import live

        return getattr(live, name)
    if name in _SPAN_NAMES:
        from . import spans

        return getattr(spans, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EncodeError",
    "from_jsonable",
    "to_jsonable",
    "EVENT_SCHEMAS",
    "EventSchema",
    "TraceEvent",
    "known_kinds",
    "register_event_kind",
    "schema_for",
    "schema_table",
    "validate_event",
    "MergeReport",
    "merge_traces",
    "TraceFile",
    "as_trace",
    "iter_trace_events",
    "read_trace_file",
    "JsonlSink",
    "MemorySink",
    "TeeSink",
    "Trace",
    "TraceSink",
    "METRIC_SCHEMAS",
    "MetricSchema",
    "MetricsRegistry",
    "MetricsReporter",
    "aggregate_trace_kinds",
    "known_metrics",
    "metric_schema_for",
    "register_metric",
    "render_prometheus",
    *_LIVE_NAMES,
    *_SPAN_NAMES,
]
