"""Offline merging of per-node JSONL traces into one time-ordered stream.

Live nodes in separate OS processes each write their own trace file with
their own clock (:class:`~repro.obs.sinks.JsonlSink` stamps trace time
zero's wall/monotonic readings into the header).  Postmortem analysis
needs *one* stream on *one* time base, so the merger:

1. **rebases by header epochs** — the earliest ``epoch_wall`` across the
   input files becomes the common epoch, and every file's events shift by
   ``epoch_wall − epoch₀``;
2. **estimates residual skew from handshake events** — wall clocks lie
   (NTP offsets, container drift), but causality does not: a ``deliver``
   can never precede the ``send`` it answers.  The merger FIFO-matches
   send→deliver pairs per ``(channel, src, dst, tag, round)`` stream
   across files and, for every receiving node whose deliveries would
   precede their sends, shifts that node forward by the largest observed
   violation.  A few passes settle mutual shifts; the applied corrections
   are reported per node as the max-skew estimate;
3. **merges** — events are stably ordered by (rebased time, file, record
   order), so concurrent events keep a deterministic order and each
   node's own sequence is never reordered.

The result is a plain :class:`~repro.obs.sinks.MemorySink`: everything in
:mod:`repro.analysis` — property checkers, QoS metrics, ASCII timelines —
runs on a merged postmortem trace exactly as on a live one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .events import TraceEvent
from .reader import TraceFile, read_trace_file
from .sinks import MemorySink

__all__ = ["MergeReport", "merge_traces"]

#: Ignore sub-microsecond "skew": float noise, not clocks.
_SKEW_EPSILON = 1e-6
#: Mutual shifts settle fast; bound the fixpoint loop regardless.
_MAX_PASSES = 4


@dataclass
class MergeReport:
    """Outcome of one merge: the stream plus per-node rebasing diagnostics."""

    trace: MemorySink
    files: List[TraceFile] = field(default_factory=list)
    #: node label -> total time shift applied (epoch rebase + skew).
    offsets: Dict[str, float] = field(default_factory=dict)
    #: node label -> the causality-derived part of the shift (skew estimate).
    skew: Dict[str, float] = field(default_factory=dict)

    @property
    def max_skew(self) -> float:
        """Largest causality correction applied to any node."""
        return max(self.skew.values(), default=0.0)

    def summary(self) -> str:
        """One line per node: applied offset and skew estimate."""
        lines = []
        for label in sorted(self.offsets):
            lines.append(
                f"node {label}: offset {self.offsets[label]:+.6f}s "
                f"(skew estimate {self.skew[label]:+.6f}s)"
            )
        lines.append(
            f"merged {len(self.trace)} events from {len(self.files)} file(s)"
        )
        return "\n".join(lines)


def _node_label(trace_file: TraceFile, index: int) -> str:
    if trace_file.node is not None:
        return str(trace_file.node)
    if trace_file.path is not None:
        return trace_file.path.name
    return f"file{index}"


_HandshakeKey = Tuple[object, object, object, object, object]


def _causality_shifts(
    files: Sequence[TraceFile], offsets: Sequence[float]
) -> List[float]:
    """Per-file forward shift needed so no deliver precedes its send.

    Handshake streams are FIFO-matched per (channel, src, dst, tag, round);
    dropped messages make the match conservative (a deliver may pair with
    an *earlier* send), which can only under-estimate skew, never invent it.
    """
    sends: Dict[_HandshakeKey, List[float]] = {}
    delivers: Dict[_HandshakeKey, List[Tuple[float, int]]] = {}
    for index, trace_file in enumerate(files):
        offset = offsets[index]
        for ev in trace_file.events:
            if ev.kind == "send" and not ev.get("loopback"):
                key = (ev.get("channel"), ev.get("src"), ev.get("dst"),
                       ev.get("tag"), ev.get("round"))
                sends.setdefault(key, []).append(ev.time + offset)
            elif ev.kind == "deliver":
                key = (ev.get("channel"), ev.get("src"), ev.get("dst"),
                       ev.get("tag"), ev.get("round"))
                delivers.setdefault(key, []).append((ev.time + offset, index))
    shifts = [0.0] * len(files)
    for key, deliver_list in delivers.items():
        send_times = sorted(sends.get(key, []))
        deliver_list.sort()
        for position, (deliver_time, index) in enumerate(deliver_list):
            if position >= len(send_times):
                break
            violation = send_times[position] - deliver_time
            if violation > shifts[index]:
                shifts[index] = violation
    return shifts


def merge_traces(
    sources: Iterable[Union[str, Path, TraceFile]],
    rebase: bool = True,
    estimate_skew: bool = True,
) -> MergeReport:
    """Merge per-node traces into one time-ordered stream (module docstring).

    *sources* are trace file paths or pre-read :class:`TraceFile` objects;
    at least one is required.  ``rebase=False`` keeps every file's own
    time base (only ordering is merged); ``estimate_skew=False`` skips the
    causality pass and trusts the headers.
    """
    files: List[TraceFile] = []
    for source in sources:
        if isinstance(source, TraceFile):
            files.append(source)
        else:
            files.append(read_trace_file(source))
    if not files:
        raise ConfigurationError("merge_traces needs at least one trace file")

    offsets = [0.0] * len(files)
    if rebase:
        epochs = [trace_file.epoch_wall for trace_file in files]
        base = min(epochs)
        offsets = [epoch - base for epoch in epochs]

    skew = [0.0] * len(files)
    if rebase and estimate_skew and len(files) > 1:
        for _ in range(_MAX_PASSES):
            shifts = _causality_shifts(files, offsets)
            if max(shifts) <= _SKEW_EPSILON:
                break
            for index, shift in enumerate(shifts):
                offsets[index] += shift
                skew[index] += shift

    decorated: List[Tuple[float, int, int, TraceEvent]] = []
    for index, trace_file in enumerate(files):
        offset = offsets[index]
        for seq, ev in enumerate(trace_file.events):
            if offset:
                ev = TraceEvent(
                    time=ev.time + offset, kind=ev.kind, pid=ev.pid,
                    data=ev.data,
                )
            decorated.append((ev.time, index, seq, ev))
    decorated.sort(key=lambda item: item[:3])

    merged = MemorySink()
    merged.extend(item[3] for item in decorated)
    report = MergeReport(trace=merged, files=files)
    for index, trace_file in enumerate(files):
        label = _node_label(trace_file, index)
        report.offsets[label] = offsets[index]
        report.skew[label] = skew[index]
    return report
