"""The metrics layer: a registry of counters/gauges/histograms per node.

Trace events answer *what happened*; metrics answer *how much*.  This
module gives every world — simulated :class:`~repro.sim.world.World` and
live :class:`~repro.net.host.RuntimeWorld` alike — one
:class:`MetricsRegistry` that protocol components and the substrate
increment at well-known record sites (messages sent/delivered by channel,
bytes on the wire, timeout adaptations, leader changes, suspicion flips,
consensus rounds and decisions).

The design mirrors the event-schema registry in :mod:`repro.obs.events`:

* every metric *name* must be registered up front via
  :func:`register_metric` (name, kind, exact label set, one-line doc) —
  the ``metrics-registry`` lint rule statically checks record sites
  against :data:`METRIC_SCHEMAS`, exactly as ``trace-schema`` checks
  ``trace.record(...)`` sites;
* recording against an unregistered name or with a wrong label set raises
  :class:`~repro.errors.ConfigurationError` at the call site, so a typo
  cannot silently create a parallel time series;
* :meth:`MetricsRegistry.snapshot` renders the whole registry as a
  JSON-safe payload, which :class:`MetricsReporter` periodically emits as
  an ``obs.metrics_snapshot`` trace event — snapshots ride the normal
  sink/merge machinery, so a merged multi-process trace carries each
  node's counter history on the common time base;
* :func:`render_prometheus` renders the registry in Prometheus text
  exposition format, which the ``repro node --stats-addr`` UDP endpoint
  serves live (see :mod:`repro.net.stats`).

:func:`aggregate_trace_kinds` is the shared per-kind count/byte
aggregation used by ``repro trace stats`` — it feeds an ordinary registry
(``trace_events_total`` / ``trace_bytes_total`` labeled by kind), so the
CLI and the live exposition share one aggregation path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ConfigurationError

__all__ = [
    "MetricSchema",
    "METRIC_SCHEMAS",
    "register_metric",
    "metric_schema_for",
    "known_metrics",
    "MetricsRegistry",
    "MetricsReporter",
    "render_prometheus",
    "aggregate_trace_kinds",
    "TraceKindStats",
]

_KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class MetricSchema:
    """Contract of one metric name: kind, exact label set, documentation."""

    name: str
    kind: str = "counter"
    #: The *exact* label keys every record site must supply.
    labels: Tuple[str, ...] = ()
    #: One-line description for the generated documentation / exposition.
    doc: str = ""


#: name -> schema, in registration order (the docs table preserves it).
METRIC_SCHEMAS: Dict[str, MetricSchema] = {}


def register_metric(
    name: str,
    kind: str = "counter",
    labels: Tuple[str, ...] = (),
    doc: str = "",
) -> MetricSchema:
    """Register (or look up an identical) schema for metric *name*.

    Re-registering with a different kind or label set is a configuration
    error — two record sites silently disagreeing on a metric's shape is
    the bug class the registry exists to prevent.
    """
    if kind not in _KINDS:
        raise ConfigurationError(
            f"metric kind must be one of {_KINDS}, got {kind!r}"
        )
    schema = MetricSchema(name, kind, tuple(labels), doc)
    existing = METRIC_SCHEMAS.get(name)
    if existing is not None:
        if (existing.kind, existing.labels) != (schema.kind, schema.labels):
            raise ConfigurationError(
                f"metric {name!r} already registered with a different "
                f"schema: {existing.kind}/{existing.labels} vs "
                f"{schema.kind}/{schema.labels}"
            )
        return existing
    METRIC_SCHEMAS[name] = schema
    return schema


def metric_schema_for(name: str) -> Optional[MetricSchema]:
    """The registered schema of *name*, or ``None`` if unknown."""
    return METRIC_SCHEMAS.get(name)


def known_metrics() -> Tuple[str, ...]:
    """Every registered metric name, sorted."""
    return tuple(sorted(METRIC_SCHEMAS))


#: Log-spaced (factor 2) histogram bucket upper bounds, 1e-6 .. ~8.8e6 —
#: wide enough for latencies in seconds and batch sizes alike at a fixed
#: ~50% resolution per bucket.  Values beyond the last bound land in one
#: overflow bucket; quantile estimates there are clamped to the observed
#: maximum.
_BUCKET_BOUNDS: Tuple[float, ...] = tuple(1e-6 * 2.0 ** i for i in range(44))


class _Histogram:
    """Streaming summary (count/sum/min/max) plus bounded log-spaced
    buckets — enough for QoS tables and p50/p95 estimates without storing
    samples."""

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: sparse bucket-index -> count; index i counts values in
        #: (_BUCKET_BOUNDS[i-1], _BUCKET_BOUNDS[i]], index len(bounds) is
        #: the overflow bucket.
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        from bisect import bisect_left

        index = bisect_left(_BUCKET_BOUNDS, value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile from the log-spaced buckets.

        Linear interpolation within the containing bucket, clamped to the
        observed [min, max]; ``None`` for an empty histogram.
        """
        if self.count == 0 or self.min is None or self.max is None:
            return None
        target = q * self.count
        cumulative = 0.0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket < target:
                cumulative += in_bucket
                continue
            if index >= len(_BUCKET_BOUNDS):
                return self.max
            upper = _BUCKET_BOUNDS[index]
            lower = _BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
            fraction = (target - cumulative) / in_bucket
            estimate = lower + (upper - lower) * fraction
            return min(self.max, max(self.min, estimate))
        return self.max

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count, "sum": self.sum,
            "min": self.min, "max": self.max,
        }


LabelValues = Tuple[Any, ...]


class MetricsRegistry:
    """Per-node metric store, validated against :data:`METRIC_SCHEMAS`.

    One registry lives on every world (``world.metrics``); components
    reach it through :attr:`repro.sim.component.Component.metrics`.  All
    operations validate the metric name and the exact label-key set, then
    index by the label *values* in schema order — so ``inc`` on a hot
    path costs two dict lookups and a tuple build.
    """

    def __init__(self) -> None:
        self._scalars: Dict[str, Dict[LabelValues, float]] = {}
        self._histograms: Dict[str, Dict[LabelValues, _Histogram]] = {}

    # ------------------------------------------------------------- recording
    def _key(
        self, name: str, labels: Dict[str, Any], want_histogram: bool
    ) -> LabelValues:
        schema = METRIC_SCHEMAS.get(name)
        if schema is None:
            raise ConfigurationError(
                f"unregistered metric {name!r}; register_metric() it first "
                f"(known: {', '.join(known_metrics())})"
            )
        if (schema.kind == "histogram") != want_histogram:
            verb = "observe" if schema.kind == "histogram" else "inc/set"
            raise ConfigurationError(
                f"metric {name!r} is a {schema.kind}; use {verb}()"
            )
        if tuple(sorted(labels)) != tuple(sorted(schema.labels)):
            raise ConfigurationError(
                f"metric {name!r} takes labels {schema.labels}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(labels[key] for key in schema.labels)

    def inc(self, name: str, amount: Union[int, float] = 1, **labels: Any) -> None:
        """Add *amount* to counter (or gauge) *name* for this label set."""
        key = self._key(name, labels, want_histogram=False)
        series = self._scalars.setdefault(name, {})
        series[key] = series.get(key, 0) + amount

    def set(self, name: str, value: Union[int, float], **labels: Any) -> None:
        """Set gauge (or counter) *name* to *value* for this label set."""
        key = self._key(name, labels, want_histogram=False)
        self._scalars.setdefault(name, {})[key] = value

    def observe(self, name: str, value: Union[int, float], **labels: Any) -> None:
        """Record one sample into histogram *name* for this label set."""
        key = self._key(name, labels, want_histogram=True)
        series = self._histograms.setdefault(name, {})
        hist = series.get(key)
        if hist is None:
            hist = series[key] = _Histogram()
        hist.observe(float(value))

    # --------------------------------------------------------------- reading
    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge series (0 if never recorded)."""
        key = self._key(name, labels, want_histogram=False)
        return self._scalars.get(name, {}).get(key, 0)

    def histogram(self, name: str, **labels: Any) -> Dict[str, Any]:
        """Summary dict of a histogram series (zero summary if empty)."""
        key = self._key(name, labels, want_histogram=True)
        hist = self._histograms.get(name, {}).get(key)
        return hist.as_dict() if hist is not None else _Histogram().as_dict()

    def series(self, name: str) -> List[Tuple[Dict[str, Any], Any]]:
        """All ``(labels_dict, value)`` pairs of *name*, label-sorted.

        Histogram values are summary dicts (count/sum/min/max).
        """
        schema = METRIC_SCHEMAS.get(name)
        if schema is None:
            raise ConfigurationError(f"unregistered metric {name!r}")
        store: Dict[LabelValues, Any]
        if schema.kind == "histogram":
            store = {k: h.as_dict() for k, h in
                     self._histograms.get(name, {}).items()}
        else:
            store = dict(self._scalars.get(name, {}))
        return [
            (dict(zip(schema.labels, key)), store[key])
            for key in sorted(store, key=lambda k: tuple(map(str, k)))
        ]

    def names(self) -> List[str]:
        """Registered names with at least one recorded series, in
        registration order."""
        return [
            name for name in METRIC_SCHEMAS
            if self._scalars.get(name) or self._histograms.get(name)
        ]

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-safe dump: ``{name: [{"labels": {...}, "value": v}, ...]}``.

        This is the payload of the ``obs.metrics_snapshot`` trace event;
        it round-trips through the JSONL sinks and the offline merger.
        """
        return {
            name: [
                {"labels": labels, "value": value}
                for labels, value in self.series(name)
            ]
            for name in self.names()
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition (what `repro node --stats-addr` serves).
# ---------------------------------------------------------------------------

def _expo_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(value)}"' for key, value in labels.items()
    )
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render *registry* in Prometheus text exposition format.

    Histograms are exposed as proper summaries: ``<name>{quantile="0.5"}``
    / ``{quantile="0.95"}`` estimates from the log-spaced buckets plus the
    ``<name>_count`` / ``<name>_sum`` / ``<name>_min`` / ``<name>_max``
    streaming aggregates.
    """
    lines: List[str] = []
    for name in registry.names():
        schema = METRIC_SCHEMAS[name]
        if schema.doc:
            lines.append(f"# HELP {name} {schema.doc}")
        if schema.kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            histograms = registry._histograms.get(name, {})
            for labels, summary in registry.series(name):
                tail = _expo_labels(labels)
                key = tuple(labels[k] for k in schema.labels)
                hist = histograms.get(key)
                for q in (0.5, 0.95):
                    estimate = hist.quantile(q) if hist is not None else None
                    if estimate is None:
                        continue
                    qlabels = dict(labels)
                    qlabels["quantile"] = str(q)
                    lines.append(f"{name}{_expo_labels(qlabels)} {estimate}")
                for part in ("count", "sum", "min", "max"):
                    value = summary[part]
                    if value is None:
                        continue
                    lines.append(f"{name}_{part}{tail} {value}")
        else:
            lines.append(f"# TYPE {name} {schema.kind}")
            for labels, value in registry.series(name):
                lines.append(f"{name}{_expo_labels(labels)} {value}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The periodic snapshot reporter — an ordinary Component, so the same class
# runs on the simulated World and on a live NodeHost.  The import sits here,
# not at the top: repro.sim.world imports MetricsRegistry (defined above)
# while this module is mid-import in the obs-first import order.
# ---------------------------------------------------------------------------

from ..sim.component import Component  # noqa: E402


class MetricsReporter(Component):
    """Periodically emits ``obs.metrics_snapshot`` trace events.

    Before each snapshot it runs every sampler in
    ``world.metrics_samplers`` (live hosts register one that copies the
    transport's frame/byte counters into gauges); then it dumps
    ``world.metrics`` through the normal :meth:`Component.trace` path, so
    snapshots are timestamped, filtered, shipped, and merged exactly like
    any other event.
    """

    channel = "obs.metrics"

    def __init__(self, interval: float, channel: Optional[str] = None) -> None:
        super().__init__(channel)
        if interval <= 0:
            raise ConfigurationError(
                f"metrics interval must be positive, got {interval}"
            )
        self.interval = interval
        self._seq = 0

    def on_start(self) -> None:
        self.periodically(self.interval, self._emit)

    def _emit(self) -> None:
        registry = self.world.metrics
        for sampler in getattr(self.world, "metrics_samplers", ()):
            sampler(registry)
        registry.inc("metrics_snapshots_total")
        self.trace(
            "obs.metrics_snapshot",
            metrics=registry.snapshot(), seq=self._seq,
        )
        self._seq += 1


# ---------------------------------------------------------------------------
# Shared per-kind aggregation for `repro trace stats`.
# ---------------------------------------------------------------------------

@dataclass
class TraceKindStats:
    """Per-file aggregation: header + a registry of per-kind series."""

    path: str
    header: Dict[str, Any]
    registry: MetricsRegistry
    first: Optional[float] = None
    last: Optional[float] = None

    @property
    def total_events(self) -> int:
        return int(sum(v for _, v in self.registry.series("trace_events_total")))

    def kinds(self) -> List[Tuple[str, int, int]]:
        """Sorted ``(kind, events, bytes)`` rows."""
        counts = {
            labels["kind"]: int(value)
            for labels, value in self.registry.series("trace_events_total")
        }
        sizes = {
            labels["kind"]: int(value)
            for labels, value in self.registry.series("trace_bytes_total")
        }
        return [
            (kind, counts[kind], sizes.get(kind, 0))
            for kind in sorted(counts)
        ]


def aggregate_trace_kinds(path: Union[str, Path]) -> TraceKindStats:
    """Stream one JSONL trace file into per-kind count/byte series.

    Byte sizes are the on-disk JSONL line lengths (including the newline)
    — the quantity that matters for trace-shipping cost.  Undecodable
    lines raise, matching the strict reader; use ``repro trace check``
    for diagnosis.
    """
    registry = MetricsRegistry()
    stats = TraceKindStats(path=str(path), header={}, registry=registry)
    with open(path, "r", encoding="utf-8") as stream:
        for index, line in enumerate(stream):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{index + 1}: undecodable JSONL line: {exc}"
                ) from None
            if index == 0 and "trace" in obj:
                stats.header = obj
                continue
            kind = obj.get("k", "?")
            registry.inc("trace_events_total", kind=kind)
            registry.inc("trace_bytes_total", amount=len(line.encode("utf-8")),
                         kind=kind)
            time = obj.get("t")
            if time is not None:
                if stats.first is None:
                    stats.first = float(time)
                stats.last = float(time)
    return stats


# ---------------------------------------------------------------------------
# Built-in metric names — every record site in the substrate and the
# shipped protocol stacks.  Downstream protocols register their own.
# ---------------------------------------------------------------------------

register_metric(
    "messages_sent_total", "counter", ("channel",),
    doc="protocol messages handed to the network fabric (self-sends excluded)",
)
register_metric(
    "messages_delivered_total", "counter", ("channel",),
    doc="protocol messages delivered to a local component",
)
register_metric(
    "messages_dropped_total", "counter", ("reason",),
    doc="messages lost: link loss, crashed receiver, undecodable frame",
)
register_metric(
    "bytes_sent_total", "counter", ("channel",),
    doc="encoded wire bytes handed to the transport, by protocol channel",
)
register_metric(
    "bytes_received_total", "counter", ("channel",),
    doc="decoded wire bytes delivered to components, by protocol channel",
)
register_metric(
    "frames_undecodable_total", "counter", (),
    doc="received frames the codec could not decode (bit rot, port scans)",
)
register_metric(
    "transport_frames_sent", "gauge", (),
    doc="transport-level frames sent (sampled from the transport counters)",
)
register_metric(
    "transport_frames_received", "gauge", (),
    doc="transport-level frames received (sampled)",
)
register_metric(
    "transport_bytes_sent", "gauge", (),
    doc="transport-level bytes sent (sampled)",
)
register_metric(
    "transport_bytes_received", "gauge", (),
    doc="transport-level bytes received (sampled)",
)
register_metric(
    "transport_send_errors", "gauge", (),
    doc="transport-level send errors (sampled)",
)
register_metric(
    "transport_incidents_total", "counter", ("event",),
    doc="transport incident events (e.g. net.peer_unreachable)",
)
register_metric(
    "fd_suspicion_flips_total", "counter", ("channel",),
    doc="failure-detector output changes that altered the suspected set",
)
register_metric(
    "fd_leader_changes_total", "counter", ("channel",),
    doc="failure-detector output changes that altered the trusted leader",
)
register_metric(
    "fd_timeout_adaptations_total", "counter", ("channel",),
    doc="timeout widenings after a premature suspicion (the paper's "
        "fixed-increment adaptation)",
)
register_metric(
    "fd_suspected_size", "gauge", ("channel",),
    doc="current size of a detector's suspected set",
)
register_metric(
    "consensus_proposals_total", "counter", ("algo",),
    doc="proposals received by consensus instances",
)
register_metric(
    "consensus_rounds_total", "counter", ("algo",),
    doc="consensus round entries",
)
register_metric(
    "consensus_decisions_total", "counter", ("algo",),
    doc="consensus decisions",
)
register_metric(
    "metrics_snapshots_total", "counter", (),
    doc="obs.metrics_snapshot events emitted by the reporter",
)
register_metric(
    "svc_requests_total", "counter", ("op",),
    doc="client request frames accepted by the service frontend, by op",
)
register_metric(
    "svc_redirects_total", "counter", (),
    doc="client requests answered with a leader redirect",
)
register_metric(
    "svc_applies_total", "counter", ("op",),
    doc="commands the KV state machine executed from the replicated log",
)
register_metric(
    "svc_duplicates_total", "counter", (),
    doc="client retries deduplicated by the session table (exactly-once)",
)
register_metric(
    "svc_connections", "gauge", (),
    doc="currently open client connections on the service frontend",
)
register_metric(
    "svc_sessions", "gauge", (),
    doc="client sessions tracked in the replicated dedup table",
)
register_metric(
    "svc_request_latency_seconds", "histogram", ("op",),
    doc="end-to-end client request latency observed by the load generator",
)
register_metric(
    "rsm_batch_size", "histogram", (),
    doc="commands per proposed batch at the replicated state machine "
        "(recorded only when batching is enabled, max_batch > 1)",
)
register_metric(
    "svc_submit_queue_depth", "gauge", (),
    doc="commands pending in the state machine's batch accumulator, "
        "sampled by the frontend on every submit",
)
register_metric(
    "trace_events_total", "counter", ("kind",),
    doc="trace events aggregated per kind (repro trace stats)",
)
register_metric(
    "trace_bytes_total", "counter", ("kind",),
    doc="JSONL bytes aggregated per event kind (repro trace stats)",
)
register_metric(
    "obs_stream_events_shipped", "gauge", (),
    doc="trace events the streaming shipper delivered to the collector "
        "(sampled from the StreamingSink counters)",
)
register_metric(
    "obs_stream_events_dropped", "gauge", (),
    doc="trace events the streaming shipper dropped: buffer overflow or "
        "batches lost to a torn connection (sampled)",
)
register_metric(
    "obs_stream_batches_shipped", "gauge", (),
    doc="batch frames the streaming shipper wrote to the collector "
        "(sampled)",
)
register_metric(
    "obs_stream_reconnects", "gauge", (),
    doc="times the streaming shipper re-established its collector "
        "connection (sampled)",
)

Sampler = Callable[[MetricsRegistry], None]
