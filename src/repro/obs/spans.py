"""Per-command causal spans: stage-latency attribution from ``span.*`` events.

Every KV client request carries a correlation id (``"<client>.<seq>"``,
minted by :class:`repro.svc.client.KVClient` next to its sequence number,
so retries reuse it).  The serving path emits one event per stage
transition, all tagged with that id:

====================  ======================================================
mark                  emitted when
====================  ======================================================
``svc.request``       the frontend accepted the client frame (``span`` key)
``span.queue``        the command entered the frontend's submit path
``span.propose``      the staged command was proposed into a consensus slot
``span.decide``       that slot decided
``span.apply``        the replicated state machine applied the command
``span.reply``        the frontend completed the client reply
====================  ======================================================

The analyzer reads the *serving* replica's marks (the pid that emitted
``span.reply``) and reports the five named stage latencies —

* **queue**   — request accepted → submit path entered
* **propose** — staged → proposed into a slot
* **decide**  — proposed → slot decided (the consensus cost)
* **apply**   — decided → state machine applied
* **reply**   — applied → client reply completed

— whose sum telescopes to the client-observed request→reply latency
exactly, which is how ``repro trace spans`` attributes ≥95 % (in fact
100 % for complete spans) of observed latency to named stages.

:func:`span_coverage` is the postmortem instrumentation check surfaced
by ``repro trace stats``: the fraction of ``svc.request`` events whose
span eventually closed with a ``span.reply``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..types import ProcessId, Time
from .reader import TraceSource, as_trace

__all__ = [
    "STAGE_NAMES",
    "Span",
    "SpanCoverage",
    "SpanReport",
    "analyze_spans",
    "collect_spans",
    "span_coverage",
]

#: The five named stages, in pipeline order.
STAGE_NAMES = ("queue", "propose", "decide", "apply", "reply")

#: Timeline marks bounding the stages: stage i runs _MARKS[i] → _MARKS[i+1].
_MARKS = ("request", "queue", "propose", "decide", "apply", "reply")

#: event kind -> mark name (``svc.request`` is handled separately: only
#: occurrences carrying a ``span`` key participate).
_KIND_TO_MARK = {
    "span.queue": "queue",
    "span.propose": "propose",
    "span.decide": "decide",
    "span.apply": "apply",
    "span.reply": "reply",
}


def _percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (``None`` for an empty sample)."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass
class Span:
    """One command's timeline at its serving replica."""

    span: str
    #: pid of the replica that emitted ``span.reply`` (``None`` = never
    #: replied within the trace — an open span).
    pid: Optional[ProcessId]
    #: mark name -> first time observed at the serving replica.
    marks: Dict[str, Time] = field(default_factory=dict)
    status: Optional[str] = None

    @property
    def complete(self) -> bool:
        """All six marks present — every stage is measurable."""
        return all(mark in self.marks for mark in _MARKS)

    def stage(self, name: str) -> Optional[Time]:
        """Latency of one named stage (``None`` if either mark is missing)."""
        index = STAGE_NAMES.index(name)
        start = self.marks.get(_MARKS[index])
        end = self.marks.get(_MARKS[index + 1])
        if start is None or end is None:
            return None
        return end - start

    @property
    def total(self) -> Optional[Time]:
        """Client-observed latency: request accepted → reply completed."""
        start = self.marks.get("request")
        end = self.marks.get("reply")
        if start is None or end is None:
            return None
        return end - start


@dataclass(frozen=True)
class SpanCoverage:
    """How much of the request stream is span-instrumented and closed."""

    #: ``svc.request`` events in the trace.
    requests: int
    #: …of which carried a ``span`` correlation id.
    with_span: int
    #: …of which belong to a span that closed with ``span.reply``.
    closed: int

    @property
    def ratio(self) -> Optional[float]:
        """closed / with_span (``None`` when nothing was instrumented)."""
        return self.closed / self.with_span if self.with_span else None


@dataclass
class SpanReport:
    """Everything :func:`analyze_spans` measured about one trace."""

    #: Spans that closed (reply seen), in reply order.
    spans: List[Span]
    #: Correlation ids seen on some mark but never replied.
    open_spans: int
    #: Closed spans with every stage measurable.
    complete: int
    #: stage name -> latencies over complete spans.
    stage_durations: Dict[str, List[float]]
    #: request→reply latencies over complete spans.
    totals: List[float]
    #: Σ stage latencies / Σ total latencies over complete spans (the
    #: acceptance metric; 1.0 when the stages telescope, ``None`` when no
    #: span completed).
    attributed: Optional[float]
    coverage: SpanCoverage

    @property
    def spans_per_second(self) -> Optional[float]:
        """Closed-span throughput over the first-request→last-reply window."""
        starts = [s.marks["request"] for s in self.spans if "request" in s.marks]
        ends = [s.marks["reply"] for s in self.spans if "reply" in s.marks]
        if not starts or not ends:
            return None
        window = max(ends) - min(starts)
        return len(self.spans) / window if window > 0 else None

    def format(self) -> str:
        """Human-readable rendering (what ``repro trace spans`` prints)."""
        lines = [
            f"span report — {len(self.spans)} closed "
            f"({self.complete} complete), {self.open_spans} open"
        ]
        ratio = self.coverage.ratio
        shown = "n/a (no spans recorded)" if ratio is None else f"{ratio:.1%}"
        lines.append(
            f"  span coverage        : {shown} "
            f"({self.coverage.closed}/{self.coverage.with_span} instrumented "
            f"requests closed; {self.coverage.requests} svc.request total)"
        )
        rate = self.spans_per_second
        if rate is not None:
            lines.append(f"  throughput           : {rate:.1f} spans/s")
        if self.attributed is not None:
            lines.append(
                f"  latency attributed   : {self.attributed:.1%} of "
                "client-observed latency falls in named stages"
            )
        if self.totals:
            lines.append(
                "  stage                :    p50        p95        max"
            )
            rows = list(STAGE_NAMES) + ["total"]
            for name in rows:
                values = (
                    self.totals if name == "total"
                    else self.stage_durations.get(name, [])
                )
                if not values:
                    continue
                p50 = _percentile(values, 0.50)
                p95 = _percentile(values, 0.95)
                lines.append(
                    f"    {name:<18s}: {p50 * 1e3:8.2f}ms {p95 * 1e3:8.2f}ms "
                    f"{max(values) * 1e3:8.2f}ms"
                )
        else:
            lines.append(
                "  stages               : no complete span (is the run "
                "span-instrumented end to end?)"
            )
        return "\n".join(lines)


def collect_spans(trace: TraceSource) -> List[Span]:
    """Extract per-command spans from *trace* (closed spans only, in the
    order their replies appeared; see :func:`analyze_spans` for totals
    including open spans)."""
    spans, _ = _collect(trace)
    return spans


def _collect(trace: TraceSource) -> Tuple[List[Span], Dict[str, Any]]:
    trace = as_trace(trace)
    #: (span, pid) -> {mark: first time}.
    marks: Dict[Tuple[str, Optional[ProcessId]], Dict[str, Time]] = {}
    #: span -> (serving pid, status) from its first reply.
    replies: Dict[str, Tuple[Optional[ProcessId], Optional[str]]] = {}
    seen: Dict[str, bool] = {}  # span id -> True (insertion ordered)
    reply_order: List[str] = []
    requests = 0
    request_spans: List[str] = []  # span id per instrumented svc.request

    def mark(span: str, pid: Optional[ProcessId], name: str, time: Time) -> None:
        timeline = marks.setdefault((span, pid), {})
        if name not in timeline:
            timeline[name] = time
        seen.setdefault(span, True)

    for ev in trace.events:
        kind = ev.kind
        if kind == "svc.request":
            requests += 1
            span = ev.get("span")
            if span is not None:
                request_spans.append(span)
                mark(span, ev.pid, "request", ev.time)
            continue
        name = _KIND_TO_MARK.get(kind)
        if name is None:
            continue
        span = ev.get("span")
        if span is None:
            continue
        mark(span, ev.pid, name, ev.time)
        if kind == "span.reply" and span not in replies:
            replies[span] = (ev.pid, ev.get("status"))
            reply_order.append(span)

    closed = [
        Span(
            span=span,
            pid=replies[span][0],
            marks=dict(marks.get((span, replies[span][0]), {})),
            status=replies[span][1],
        )
        for span in reply_order
    ]
    closed_ids = set(replies)
    meta = {
        "open": sum(1 for span in seen if span not in closed_ids),
        "requests": requests,
        "with_span": len(request_spans),
        "closed_requests": sum(
            1 for span in request_spans if span in closed_ids
        ),
    }
    return closed, meta


def analyze_spans(trace: TraceSource) -> SpanReport:
    """Full stage-latency breakdown of *trace* (see module docstring)."""
    closed, meta = _collect(trace)
    stage_durations: Dict[str, List[float]] = {name: [] for name in STAGE_NAMES}
    totals: List[float] = []
    complete = 0
    attributed_num = 0.0
    attributed_den = 0.0
    for span in closed:
        if not span.complete:
            continue
        complete += 1
        total = span.total
        assert total is not None
        totals.append(total)
        for name in STAGE_NAMES:
            duration = span.stage(name)
            assert duration is not None
            stage_durations[name].append(duration)
            attributed_num += duration
        attributed_den += total
    attributed = (
        attributed_num / attributed_den if attributed_den > 0 else None
    )
    coverage = SpanCoverage(
        requests=meta["requests"],
        with_span=meta["with_span"],
        closed=meta["closed_requests"],
    )
    return SpanReport(
        spans=closed,
        open_spans=meta["open"],
        complete=complete,
        stage_durations=stage_durations,
        totals=totals,
        attributed=attributed,
        coverage=coverage,
    )


def span_coverage(trace: TraceSource) -> SpanCoverage:
    """Span instrumentation coverage of *trace* (``repro trace stats``)."""
    trace = as_trace(trace)
    closed_ids = {
        ev.get("span") for ev in trace.events
        if ev.kind == "span.reply" and ev.get("span") is not None
    }
    requests = 0
    with_span = 0
    closed = 0
    for ev in trace.events:
        if ev.kind != "svc.request":
            continue
        requests += 1
        span = ev.get("span")
        if span is None:
            continue
        with_span += 1
        if span in closed_ids:
            closed += 1
    return SpanCoverage(requests=requests, with_span=with_span, closed=closed)
