"""The canonical trace event and the machine-readable event-schema registry.

A :class:`TraceEvent` is one timestamped observation of the system — a
message send, a delivery, a crash, a failure-detector output change, a
protocol phase transition, a decision.  The property checkers in
:mod:`repro.analysis` and the benchmark harnesses work exclusively from
these events, so "phases per round" or "messages per round" are
*measured*, never hard-coded.

Each well-known event kind has an :class:`EventSchema` describing the
payload keys its emitters must (and may) supply.  The registry is the
single source of truth for three consumers:

* the ``trace-schema`` lint rule statically checks every
  ``trace.record(...)`` / ``self.trace(...)`` call site against it;
* ``repro trace check`` validates recorded JSONL streams against it;
* ``docs/traces.md`` renders its table (via :func:`schema_table`), so the
  documentation can never drift from the code.

Downstream protocols adding new event kinds register them with
:func:`register_event_kind` at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..types import ProcessId, Time

__all__ = [
    "TraceEvent",
    "EventSchema",
    "EVENT_SCHEMAS",
    "register_event_kind",
    "schema_for",
    "known_kinds",
    "validate_event",
    "schema_table",
]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """A single timestamped observation of the (simulated or live) system."""

    time: Time
    kind: str
    pid: Optional[ProcessId]
    data: Dict[str, Any]

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``event.data.get(key, default)``."""
        return self.data.get(key, default)


@dataclass(frozen=True)
class EventSchema:
    """Payload contract of one event kind."""

    kind: str
    #: Keys every emitter must supply.
    required: Tuple[str, ...] = ()
    #: Keys an emitter may additionally supply.
    optional: Tuple[str, ...] = ()
    #: One-line description for the generated documentation.
    doc: str = ""

    def problems(self, data: Dict[str, Any]) -> List[str]:
        """Human-readable schema violations of *data* (empty = conforming).

        Only missing required keys are violations; unknown extra keys are
        tolerated (protocols may annotate events), matching the lint rule.
        """
        missing = [key for key in self.required if key not in data]
        if not missing:
            return []
        return [
            f"event kind {self.kind!r} missing required payload key(s): "
            + ", ".join(missing)
        ]


#: kind -> schema, in registration order (which the docs table preserves).
EVENT_SCHEMAS: Dict[str, EventSchema] = {}


def register_event_kind(
    kind: str,
    required: Tuple[str, ...] = (),
    optional: Tuple[str, ...] = (),
    doc: str = "",
) -> EventSchema:
    """Register (or look up an identical) schema for *kind*.

    Re-registering with a different contract is a configuration error —
    two protocols silently disagreeing on a payload shape is exactly the
    bug class the registry exists to prevent.
    """
    schema = EventSchema(kind, tuple(required), tuple(optional), doc)
    existing = EVENT_SCHEMAS.get(kind)
    if existing is not None:
        if (existing.required, existing.optional) != (
            schema.required, schema.optional
        ):
            raise ConfigurationError(
                f"event kind {kind!r} already registered with a different "
                f"schema: {existing.required}/{existing.optional} vs "
                f"{schema.required}/{schema.optional}"
            )
        return existing
    EVENT_SCHEMAS[kind] = schema
    return schema


def schema_for(kind: str) -> Optional[EventSchema]:
    """The registered schema of *kind*, or ``None`` if unknown."""
    return EVENT_SCHEMAS.get(kind)


def known_kinds() -> Tuple[str, ...]:
    """Every registered kind, sorted."""
    return tuple(sorted(EVENT_SCHEMAS))


def validate_event(event: TraceEvent) -> List[str]:
    """Schema violations of one event (empty list = conforming)."""
    schema = EVENT_SCHEMAS.get(event.kind)
    if schema is None:
        return [
            f"unknown trace event kind {event.kind!r} "
            f"(known: {', '.join(known_kinds())})"
        ]
    return schema.problems(event.data)


def schema_table(fmt: str = "markdown") -> str:
    """Render the registry as a table (``markdown`` or ``rst``).

    ``docs/traces.md`` embeds the markdown rendering verbatim; a tier-1
    test regenerates it and diffs, so the docs cannot drift.
    """
    rows = [
        (
            f"`{s.kind}`",
            ", ".join(f"`{k}`" for k in s.required) or "—",
            ", ".join(f"`{k}`" for k in s.optional) or "—",
            s.doc,
        )
        for s in EVENT_SCHEMAS.values()
    ]
    headers = ("kind", "required payload", "optional payload", "meaning")
    if fmt == "markdown":
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = [
            "| " + " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for row in rows:
            lines.append(
                "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(row)) + " |"
            )
        return "\n".join(lines)
    if fmt == "rst":
        lines = []
        for s in EVENT_SCHEMAS.values():
            req = ", ".join(s.required) or "(none)"
            opt = (" (optional: " + ", ".join(s.optional) + ")") if s.optional else ""
            lines.append(f"``{s.kind}``: {req}{opt}")
        return "\n".join(lines)
    raise ConfigurationError(f"unknown schema table format {fmt!r}")


# ---------------------------------------------------------------------------
# Built-in kinds — every event the substrate and the shipped protocols emit.
# ---------------------------------------------------------------------------

register_event_kind(
    "send", required=("channel", "src", "dst"),
    optional=("tag", "round", "loopback"),
    doc="a message was handed to the network fabric",
)
register_event_kind(
    "deliver", required=("channel", "src", "dst"), optional=("tag", "round"),
    doc="a message reached its destination process",
)
register_event_kind(
    "drop", required=("reason",), optional=("channel", "src", "dst"),
    doc="a message was lost (link loss, crashed receiver, undecodable frame)",
)
register_event_kind(
    "parked", required=("channel", "src"),
    doc="a message arrived on a channel with no component attached yet",
)
register_event_kind(
    "crash", doc="the process crashed (crash-stop; event pid is the victim)",
)
register_event_kind(
    "partition", required=("groups",),
    doc="the network was partitioned into the given process groups",
)
register_event_kind(
    "heal", doc="an active network partition was removed",
)
register_event_kind(
    "fd", required=("channel", "suspected", "trusted"),
    doc="a failure-detector module's output changed (or its initial output)",
)
register_event_kind(
    "leader", required=("leader",),
    doc="reserved: an explicit leader announcement (none of the shipped "
        "detectors emit it; Ω output is read from `fd` events)",
)
register_event_kind(
    "propose", required=("algo", "value"),
    doc="a consensus protocol instance received a proposal",
)
register_event_kind(
    "decide", required=("algo", "value", "round"),
    doc="a process decided (round is None for round-less algorithms)",
)
register_event_kind(
    "round", required=("algo", "round"),
    doc="a process entered a consensus round",
)
register_event_kind(
    "phase", required=("algo", "round", "phase"),
    doc="a process entered a phase within a consensus round",
)
register_event_kind(
    "apply", required=("slot", "command"), optional=("index",),
    doc="the replicated state machine applied a decided command (index is "
        "the command's position within its slot's batch, 0 when unbatched)",
)
register_event_kind(
    "rsm.batch_proposed", required=("slot", "size"),
    doc="a replica proposed a batch of pending commands into a slot "
        "(emitted only when batching is enabled, max_batch > 1)",
)
register_event_kind(
    "rsm.batch_applied", required=("slot", "size", "duplicates"),
    doc="a decided batch finished applying; duplicates counts commands "
        "skipped because an overlapping earlier batch already applied them",
)
register_event_kind(
    "todeliver", required=("origin",),
    doc="total-order broadcast delivered a message",
)
register_event_kind(
    "rdeliver", required=("origin",),
    doc="reliable broadcast delivered a message",
)
register_event_kind(
    "urbdeliver", required=("origin",),
    doc="uniform reliable broadcast delivered a message",
)
register_event_kind(
    "hb-counter", required=("peer", "value"),
    doc="a heartbeat-counter detector bumped its counter for a peer",
)
register_event_kind(
    "net.peer_unreachable", required=("peer",), optional=("attempts", "dropped"),
    doc="a transport exhausted its bounded reconnect attempts to a peer and "
        "dropped that peer's queued frames (retries resume on new traffic)",
)
register_event_kind(
    "obs.metrics_snapshot", required=("metrics",), optional=("seq",),
    doc="a periodic dump of the node's metrics registry "
        "(see repro.obs.metrics; payload is MetricsRegistry.snapshot())",
)
register_event_kind(
    "svc.request", required=("op", "client"),
    optional=("seq", "rid", "key", "span"),
    doc="the service frontend accepted one client request frame",
)
register_event_kind(
    "svc.redirect", required=("leader",), optional=("client", "op"),
    doc="a non-leader frontend redirected a client (leader is the pid the "
        "local Omega output trusts, or None while it has no leader)",
)
register_event_kind(
    "svc.apply", required=("slot", "op", "duplicate"),
    optional=("client", "seq", "ok"),
    doc="the KV state machine executed (or deduplicated) one decided "
        "command from the replicated log",
)
register_event_kind(
    "scenario.run", required=("name", "events"), optional=("seed",),
    doc="a scenario schedule was armed against the cluster (events is the "
        "schedule length; seed present for generated scenarios)",
)
register_event_kind(
    "scenario.partition", required=("groups",),
    doc="the scenario layer partitioned the network into the given groups "
        "(isolate records the victim as a singleton group)",
)
register_event_kind(
    "scenario.heal",
    doc="the scenario layer removed the active network partition",
)
register_event_kind(
    "scenario.stall", required=("target",), optional=("signal",),
    doc="the scenario layer froze a node (SIGSTOP on a process cluster, "
        "full send/receive silence on a local one)",
)
register_event_kind(
    "scenario.resume", required=("target",), optional=("signal",),
    doc="the scenario layer unfroze a previously stalled node",
)
register_event_kind(
    "scenario.degrade", required=("src", "dst"), optional=("loss", "delay"),
    doc="the scenario layer degraded one directed link (loss probability "
        "and/or fixed extra delay in seconds)",
)
register_event_kind(
    "scenario.restore", required=("src", "dst"),
    doc="the scenario layer restored a degraded directed link",
)
register_event_kind(
    "scenario.storm", required=("loss",),
    doc="the scenario layer started a cluster-wide message-loss storm",
)
register_event_kind(
    "scenario.calm",
    doc="the scenario layer ended the active message-loss storm",
)
register_event_kind(
    "scenario.skew", required=("target", "offset"),
    doc="the scenario layer stepped one node's clock by offset seconds",
)
register_event_kind(
    "span.queue", required=("span",), optional=("op",),
    doc="a client command entered the serving frontend's submit path "
        "(span is the request's correlation id: '<client>.<seq>')",
)
register_event_kind(
    "span.propose", required=("span", "slot"),
    doc="a staged client command was proposed into a consensus slot",
)
register_event_kind(
    "span.decide", required=("span", "slot"),
    doc="the consensus slot carrying this command decided (every replica "
        "emits one; the span analyzer reads the serving replica's)",
)
register_event_kind(
    "span.apply", required=("span", "slot"),
    doc="the replicated state machine applied this command from its slot",
)
register_event_kind(
    "span.reply", required=("span",), optional=("status",),
    doc="the serving frontend completed the client reply for this command",
)
register_event_kind(
    "live.connect", required=("node",),
    doc="the live collector accepted a node's trace stream (node is the "
        "shipper's node id from its hello header, None for combined "
        "in-process streams)",
)
register_event_kind(
    "live.disconnect", required=("node",), optional=("events",),
    doc="a node's trace stream to the live collector ended (events is how "
        "many events that stream shipped in total)",
)
