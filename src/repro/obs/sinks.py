"""Trace sinks: where :class:`~repro.obs.events.TraceEvent` streams land.

A sink is anything implementing the tiny :class:`TraceSink` surface —
``record`` / ``record_event`` / ``wants`` / ``close``.  Both substrates
(the simulator's :class:`~repro.sim.world.World` and the live runtime's
:class:`~repro.net.host.NodeHost`) record through a sink and never care
which one:

* :class:`MemorySink` — the append-only in-memory log with the query
  helpers (:meth:`~MemorySink.select`, :meth:`~MemorySink.count`,
  :meth:`~MemorySink.last`) that :mod:`repro.analysis` consumes.  This is
  the class historically known as ``repro.sim.trace.Trace`` and is still
  re-exported there (and here, as :data:`Trace`) under that name.
* :class:`JsonlSink` — a line-buffered streaming writer: one JSON object
  per event, preceded by a header carrying the node id and wall/monotonic
  clock provenance, which the offline merger uses to rebase per-node
  clocks.  This is how live nodes in separate OS processes ship traces.
* :class:`TeeSink` — fan-out to several sinks, e.g. an analysis-facing
  :class:`MemorySink` plus a per-node :class:`JsonlSink`.

Recording can be restricted to a subset of kinds for very long runs; the
kind check is the first thing ``record`` does, so filtered-out kinds cost
one set lookup and nothing else.  Callers building expensive payloads
should guard with :meth:`~TraceSink.wants` and skip even the call.
"""

from __future__ import annotations

import json
import time as _time
from pathlib import Path
from typing import (
    Any, Callable, Dict, IO, Iterable, Iterator, List, Optional, Set, Union,
)

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .encode import to_jsonable
from .events import TraceEvent

__all__ = ["TraceSink", "MemorySink", "Trace", "JsonlSink", "TeeSink"]

#: Trace-file format version written to (and accepted from) JSONL headers.
JSONL_VERSION = 1


class TraceSink:
    """Structural base class of every trace sink (see module docstring)."""

    def record(
        self, time: Time, kind: str, pid: Optional[ProcessId], **data: Any
    ) -> None:
        """Record one observation (subject to this sink's filters)."""
        raise NotImplementedError

    def record_event(self, event: TraceEvent) -> None:
        """Record a pre-built event (readers and mergers use this)."""
        self.record(event.time, event.kind, event.pid, **event.data)

    def wants(self, kind: str) -> bool:
        """``True`` if an event of *kind* would actually be kept.

        Callers building expensive payloads (e.g. copying a suspect set)
        can skip the work when the sink would discard the event anyway.
        """
        return True

    def close(self) -> None:
        """Flush and release resources.  Idempotent; memory sinks no-op."""


class MemorySink(TraceSink):
    """An append-only in-memory log of :class:`TraceEvent` records.

    Parameters:
        kinds: if given, only events whose kind is in this set are kept;
            everything else is silently discarded (cheap — one set lookup,
            checked before anything is allocated).
        enabled: master switch; a disabled sink records nothing.
    """

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        enabled: bool = True,
    ) -> None:
        self._events: List[TraceEvent] = []
        self._kinds: Optional[Set[str]] = set(kinds) if kinds is not None else None
        self.enabled = enabled
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------- recording
    def record(
        self, time: Time, kind: str, pid: Optional[ProcessId], **data: Any
    ) -> None:
        """Append one event (subject to the kind filter and master switch)."""
        kinds = self._kinds
        if kinds is not None and kind not in kinds:
            return  # fast path: filtered kinds never touch counters/events
        if not self.enabled:
            return
        self._events.append(TraceEvent(time=time, kind=kind, pid=pid, data=data))
        self._counters[kind] = self._counters.get(kind, 0) + 1

    def record_event(self, event: TraceEvent) -> None:
        """Append a pre-built event without re-packing its payload."""
        kinds = self._kinds
        if kinds is not None and event.kind not in kinds:
            return
        if not self.enabled:
            return
        self._events.append(event)
        self._counters[event.kind] = self._counters.get(event.kind, 0) + 1

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append many pre-built events (filters apply to each)."""
        for event in events:
            self.record_event(event)

    def wants(self, kind: str) -> bool:
        return self.enabled and (self._kinds is None or kind in self._kinds)

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The raw event list (do not mutate)."""
        return self._events

    def count(self, kind: str) -> int:
        """Number of recorded events of *kind* (O(1))."""
        return self._counters.get(kind, 0)

    def select(
        self,
        kind: Optional[str] = None,
        pid: Optional[ProcessId] = None,
        where: Optional[Callable[[TraceEvent], bool]] = None,
        after: Optional[Time] = None,
        before: Optional[Time] = None,
    ) -> List[TraceEvent]:
        """Return events matching all the given filters, in time order."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if pid is not None and ev.pid != pid:
                continue
            if after is not None and ev.time < after:
                continue
            if before is not None and ev.time > before:
                continue
            if where is not None and not where(ev):
                continue
            out.append(ev)
        return out

    def last(self, kind: str, pid: Optional[ProcessId] = None) -> Optional[TraceEvent]:
        """The most recent event of *kind* (for *pid*, if given), or ``None``."""
        for ev in reversed(self._events):
            if ev.kind == kind and (pid is None or ev.pid == pid):
                return ev
        return None

    @property
    def end_time(self) -> Time:
        """Timestamp of the last recorded event (0.0 if empty)."""
        return self._events[-1].time if self._events else 0.0


#: Historical name — ``repro.sim.trace.Trace`` re-exports this alias.
Trace = MemorySink


class JsonlSink(TraceSink):
    """Streaming JSONL trace writer with per-node clock provenance.

    The first line of the file is a header object::

        {"trace": "repro.obs", "version": 1, "node": 2,
         "epoch_wall": 1722470000.123, "epoch_mono": 5123.456}

    ``epoch_wall`` / ``epoch_mono`` are the node's wall (Unix) and
    monotonic clocks **at trace time zero**; the offline merger rebases
    per-node event times onto a common epoch from these.  Each following
    line is one event: ``{"t": <time>, "k": <kind>, "p": <pid>,
    "d": {<key>: <tagged value>, ...}}`` with payload values passed
    through :func:`~repro.obs.encode.to_jsonable`.

    The file is opened line-buffered, so every event is flushed as soon as
    it is written — a ``kill -9``'d node loses at most the event being
    formatted, which is the whole point of postmortem trace shipping.

    Parameters:
        target: a path (opened line-buffered) or an open text file.
        node: this writer's node id, stamped into the header (``None`` for
            a combined multi-node stream, e.g. a whole in-process cluster).
        kinds: optional kind filter, same semantics as :class:`MemorySink`.
        epoch_wall / epoch_mono: override the captured clock provenance
            (tests use this to fabricate skewed nodes); default is the
            wall/monotonic clock at construction — call
            :meth:`rebase_epoch` when trace time zero is established later.
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        node: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
        epoch_wall: Optional[float] = None,
        epoch_mono: Optional[float] = None,
    ) -> None:
        if isinstance(target, (str, Path)):
            self._file: IO[str] = open(target, "w", buffering=1, encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.node = node
        self._kinds: Optional[Set[str]] = set(kinds) if kinds is not None else None
        self.epoch_wall = epoch_wall if epoch_wall is not None else _time.time()
        self.epoch_mono = epoch_mono if epoch_mono is not None else _time.monotonic()
        self._header_written = False
        self._closed = False
        self.events_written = 0

    # ------------------------------------------------------------ lifecycle
    def rebase_epoch(self) -> None:
        """Re-stamp the provenance clocks to *now* (= trace time zero).

        Must happen before the first event; afterwards the header is
        already on disk and the epoch is frozen.
        """
        if self._header_written:
            raise ConfigurationError(
                "cannot rebase a JSONL trace epoch after events were written"
            )
        self.epoch_wall = _time.time()
        self.epoch_mono = _time.monotonic()

    def _write_header(self) -> None:
        header = {
            "trace": "repro.obs",
            "version": JSONL_VERSION,
            "node": self.node,
            "epoch_wall": self.epoch_wall,
            "epoch_mono": self.epoch_mono,
        }
        self._file.write(json.dumps(header, separators=(",", ":")) + "\n")
        self._header_written = True

    # ------------------------------------------------------------ recording
    def record(
        self, time: Time, kind: str, pid: Optional[ProcessId], **data: Any
    ) -> None:
        kinds = self._kinds
        if kinds is not None and kind not in kinds:
            return
        if self._closed:
            return
        if not self._header_written:
            self._write_header()
        line = {
            "t": time,
            "k": kind,
            "p": pid,
            "d": {key: to_jsonable(value) for key, value in data.items()},
        }
        self._file.write(json.dumps(line, separators=(",", ":")) + "\n")
        self.events_written += 1

    def record_event(self, event: TraceEvent) -> None:
        self.record(event.time, event.kind, event.pid, **event.data)

    def wants(self, kind: str) -> bool:
        return not self._closed and (self._kinds is None or kind in self._kinds)

    def close(self) -> None:
        """Flush and close (header is written even for an empty trace)."""
        if self._closed:
            return
        if not self._header_written:
            self._write_header()
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()


class TeeSink(TraceSink):
    """Fan one event stream out to several sinks.

    Each child keeps its own filters; ``wants`` is the union, so a caller
    guard (``if trace.wants(kind): ...``) stays correct for any mix.
    """

    def __init__(self, *sinks: TraceSink) -> None:
        if not sinks:
            raise ConfigurationError("TeeSink needs at least one sink")
        self.sinks = tuple(sinks)

    def record(
        self, time: Time, kind: str, pid: Optional[ProcessId], **data: Any
    ) -> None:
        for sink in self.sinks:
            sink.record(time, kind, pid, **data)

    def record_event(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.record_event(event)

    def wants(self, kind: str) -> bool:
        return any(sink.wants(kind) for sink in self.sinks)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
