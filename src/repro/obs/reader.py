"""Reading JSONL trace files back into event streams.

The inverse of :class:`~repro.obs.sinks.JsonlSink`: parse the provenance
header, decode each line back into a :class:`~repro.obs.events.TraceEvent`
(tagged payload values — frozensets, tuples, int-keyed dicts, ``NULL`` —
come back as the exact Python values that were recorded), and expose the
result either streamed (:func:`iter_trace_events`) or loaded
(:func:`read_trace_file`).

:func:`as_trace` is the universal coercion the analysis layer runs on its
input: a live :class:`~repro.obs.sinks.MemorySink`, a plain list of
events, a :class:`TraceFile`, or a path to a ``.jsonl`` file all become
the queryable in-memory form, so every checker and metric works on live
and postmortem traces alike.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from .encode import EncodeError, from_jsonable
from .events import TraceEvent
from .sinks import JSONL_VERSION, MemorySink, TraceSink

__all__ = ["TraceFile", "read_trace_file", "iter_trace_events", "as_trace"]


@dataclass
class TraceFile:
    """One parsed JSONL trace: provenance header plus its events."""

    events: List[TraceEvent]
    node: Optional[int] = None
    epoch_wall: float = 0.0
    epoch_mono: float = 0.0
    version: int = JSONL_VERSION
    path: Optional[Path] = None
    header: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


def _parse_header(line: str, where: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise ConfigurationError(f"{where}: header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("trace") != "repro.obs":
        raise ConfigurationError(
            f"{where}: not a repro.obs trace file (first line must be the "
            "provenance header)"
        )
    version = header.get("version")
    if version != JSONL_VERSION:
        raise ConfigurationError(
            f"{where}: unsupported trace version {version!r} "
            f"(this reader speaks version {JSONL_VERSION})"
        )
    return header


def _parse_event(line: str, where: str, lineno: int) -> TraceEvent:
    try:
        obj = json.loads(line)
        data = {
            key: from_jsonable(value) for key, value in obj.get("d", {}).items()
        }
        return TraceEvent(
            time=float(obj["t"]),
            kind=str(obj["k"]),
            pid=obj.get("p"),
            data=data,
        )
    except (ValueError, KeyError, TypeError, EncodeError) as exc:
        raise ConfigurationError(
            f"{where}:{lineno}: undecodable trace event: {exc}"
        ) from exc


def iter_trace_events(
    path: Union[str, Path],
) -> Iterator[Union[Dict[str, Any], TraceEvent]]:
    """Stream one trace file: yields the header dict first, then events.

    Line-by-line, so arbitrarily long traces can be scanned in constant
    memory (``repro trace stats`` uses this).
    """
    path = Path(path)
    where = str(path)
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ConfigurationError(f"{where}: empty trace file (no header)")
        yield _parse_header(first, where)
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            yield _parse_event(line, where, lineno)


def read_trace_file(path: Union[str, Path]) -> TraceFile:
    """Load one JSONL trace file entirely (header + decoded events)."""
    path = Path(path)
    stream = iter_trace_events(path)
    header = next(stream)
    events = list(stream)  # type: ignore[arg-type]
    return TraceFile(
        events=events,  # type: ignore[arg-type]
        node=header.get("node"),
        epoch_wall=float(header.get("epoch_wall", 0.0)),
        epoch_mono=float(header.get("epoch_mono", 0.0)),
        version=int(header.get("version", JSONL_VERSION)),
        path=path,
        header=header,
    )


#: Anything the analysis layer accepts as "a trace".
TraceSource = Union[
    MemorySink, TraceFile, str, Path, Iterable[TraceEvent],
]


def as_trace(source: TraceSource) -> MemorySink:
    """Coerce any trace source into the queryable in-memory form.

    * a :class:`MemorySink` (the live ``world.trace`` / ``cluster.trace``)
      is returned as-is — zero cost on the hot analysis paths;
    * a :class:`TraceFile` or a path to a ``.jsonl`` file is loaded;
    * any iterable of :class:`TraceEvent` is materialized.

    Write-only sinks (:class:`~repro.obs.sinks.JsonlSink`) are rejected
    with a pointer at the reader: analysis needs the events back.
    """
    if isinstance(source, MemorySink):
        return source
    if isinstance(source, TraceFile):
        sink = MemorySink()
        sink.extend(source.events)
        return sink
    if isinstance(source, (str, Path)):
        return as_trace(read_trace_file(source))
    if isinstance(source, TraceSink):
        raise ConfigurationError(
            f"cannot analyze a write-only {type(source).__name__}; read its "
            "output back with repro.obs.read_trace_file / merge_traces"
        )
    try:
        events: Tuple[TraceEvent, ...] = tuple(source)
    except TypeError:
        raise ConfigurationError(
            f"cannot interpret {type(source).__name__} as a trace source"
        ) from None
    sink = MemorySink()
    sink.extend(events)
    return sink
