"""``python -m repro trace`` — operate on shipped JSONL trace files.

Subcommands:

``merge``
    Merge per-node trace files into one time-ordered stream (epoch
    rebasing + causality skew estimation, see :mod:`repro.obs.merge`);
    print the per-node offsets and optionally write the merged stream
    back out as one combined ``.jsonl`` file.
``stats``
    Per-file provenance plus per-kind event counts *and* JSONL byte
    sizes, computed streaming (via
    :func:`repro.obs.metrics.aggregate_trace_kinds`, the same registry
    aggregation the live metrics endpoint uses) so arbitrarily long
    traces are fine.
``qos``
    Merge the given trace files (single files are used as-is) and print
    the Chen-style QoS report — detection time T_D, mistake count/rate/
    duration, leader-stabilization time and, with ``--period``, the
    per-channel message cost checked against the paper's 2(n−1) bound
    (see :mod:`repro.analysis.qos`).
``check``
    Validate every event against the schema registry
    (:data:`repro.obs.events.EVENT_SCHEMAS`): unknown kinds and missing
    required payload keys fail the command — the runtime counterpart of
    the ``trace-schema`` lint rule, and what CI runs on the committed
    example traces.
``spans``
    Group the ``span.*`` stage events per-command causal spans leave
    across the service path (queue → propose → decide → apply → reply)
    and print per-stage latency percentiles plus the fraction of
    client-observed latency the stages attribute (see
    :mod:`repro.obs.spans`).
``schema``
    Print the generated event-schema table (the same rendering embedded
    in ``docs/traces.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..analysis.qos import qos_report
from ..errors import ConfigurationError
from .events import TraceEvent, schema_table, validate_event
from .merge import merge_traces
from .metrics import aggregate_trace_kinds
from .reader import as_trace, iter_trace_events
from .sinks import JsonlSink
from .spans import analyze_spans, span_coverage

__all__ = ["add_trace_arguments", "run_from_args"]


def _cmd_merge(args: argparse.Namespace) -> int:
    report = merge_traces(
        args.files,
        rebase=not args.no_rebase,
        estimate_skew=not args.no_skew,
    )
    print(report.summary())
    if args.output:
        earliest = min(f.epoch_wall for f in report.files)
        out = JsonlSink(
            args.output, node=None,
            epoch_wall=earliest,
            epoch_mono=min(f.epoch_mono for f in report.files),
        )
        for event in report.trace:
            out.record_event(event)
        out.close()
        print(f"wrote {out.events_written} events to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    for path in args.files:
        stats = aggregate_trace_kinds(path)
        node = stats.header.get("node")
        node_label = "combined" if node is None else f"node {node}"
        span = (
            f"t in [{stats.first:.3f}, {stats.last:.3f}]"
            if stats.first is not None else "empty"
        )
        print(f"{path}: {node_label}, {stats.total_events} events, {span}, "
              f"epoch_wall={stats.header.get('epoch_wall', 0.0):.3f}")
        for kind, count, size in stats.kinds():
            print(f"  {kind:20s} {count:>8d} events {size:>10d} bytes")
        coverage = span_coverage(path)
        if coverage.with_span:
            ratio = coverage.ratio
            pct = f"{ratio * 100.0:.1f}%" if ratio is not None else "n/a"
            print(f"  span coverage: {coverage.closed}/{coverage.with_span} "
                  f"instrumented requests closed ({pct}); "
                  f"{coverage.requests} svc.request events total")
    return 0


def _cmd_qos(args: argparse.Namespace) -> int:
    if len(args.files) == 1:
        trace = as_trace(args.files[0])
    else:
        trace = merge_traces(args.files).trace
    report = qos_report(
        trace,
        channel=args.channel,
        period=args.period,
        bound_channel=args.bound_channel,
        n=args.n,
    )
    print(report.format())
    if report.bound_ok is False:
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.files:
        problems: List[str] = []
        checked = 0
        header = None
        for item in iter_trace_events(path):
            if header is None:
                header = item
                continue
            assert isinstance(item, TraceEvent)
            checked += 1
            for problem in validate_event(item):
                problems.append(f"{path}: t={item.time:.3f}: {problem}")
        if problems:
            failures += len(problems)
            for line in problems[: args.max_problems]:
                print(line, file=sys.stderr)
            hidden = len(problems) - args.max_problems
            if hidden > 0:
                print(f"{path}: ... and {hidden} more", file=sys.stderr)
            print(f"{path}: FAILED ({len(problems)} schema violations "
                  f"in {checked} events)")
        else:
            print(f"{path}: OK ({checked} events conform to the schema)")
    return 1 if failures else 0


def _cmd_spans(args: argparse.Namespace) -> int:
    if len(args.files) == 1:
        trace = as_trace(args.files[0])
    else:
        trace = merge_traces(args.files).trace
    report = analyze_spans(trace)
    print(report.format())
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    print(schema_table(fmt=args.format))
    return 0


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``trace`` subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="trace_command", required=True)

    merge = sub.add_parser(
        "merge", help="merge per-node JSONL traces into one ordered stream"
    )
    merge.add_argument("files", nargs="+", metavar="FILE")
    merge.add_argument("--output", "-o", metavar="OUT.jsonl",
                       help="write the merged stream to this file")
    merge.add_argument("--no-rebase", action="store_true",
                       help="keep each file's own time base")
    merge.add_argument("--no-skew", action="store_true",
                       help="trust headers; skip causality skew estimation")
    merge.set_defaults(trace_func=_cmd_merge)

    stats = sub.add_parser(
        "stats", help="per-file provenance, per-kind event counts and bytes"
    )
    stats.add_argument("files", nargs="+", metavar="FILE")
    stats.set_defaults(trace_func=_cmd_stats)

    qos = sub.add_parser(
        "qos",
        help="Chen-style QoS report (detection time, mistakes, leader "
             "stabilization, message cost vs the 2(n-1) bound)",
    )
    qos.add_argument("files", nargs="+", metavar="FILE",
                     help="per-node traces (merged first) or one merged file")
    qos.add_argument("--channel", default="fd",
                     help="failure-detector channel to analyze (default: fd)")
    qos.add_argument("--period", type=float, default=None,
                     help="heartbeat period; enables the message-cost section")
    qos.add_argument("--bound-channel", default="fdp",
                     help="channel checked against 2(n-1) (default: fdp)")
    qos.add_argument("--n", type=int, default=None,
                     help="system size (default: inferred from the trace)")
    qos.set_defaults(trace_func=_cmd_qos)

    check = sub.add_parser(
        "check", help="validate events against the schema registry"
    )
    check.add_argument("files", nargs="+", metavar="FILE")
    check.add_argument("--max-problems", type=int, default=20,
                       help="cap the violations printed per file")
    check.set_defaults(trace_func=_cmd_check)

    spans = sub.add_parser(
        "spans",
        help="per-command causal spans: stage latencies (queue/propose/"
             "decide/apply/reply) and latency attribution",
    )
    spans.add_argument("files", nargs="+", metavar="FILE",
                       help="per-node traces (merged first) or one merged "
                            "file from a span-instrumented service run")
    spans.set_defaults(trace_func=_cmd_spans)

    schema = sub.add_parser("schema", help="print the event-schema table")
    schema.add_argument("--format", choices=["markdown", "rst"],
                        default="markdown")
    schema.set_defaults(trace_func=_cmd_schema)


def run_from_args(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``trace`` invocation; returns the exit code."""
    try:
        return args.trace_func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
