"""``python -m repro trace`` — operate on shipped JSONL trace files.

Subcommands:

``merge``
    Merge per-node trace files into one time-ordered stream (epoch
    rebasing + causality skew estimation, see :mod:`repro.obs.merge`);
    print the per-node offsets and optionally write the merged stream
    back out as one combined ``.jsonl`` file.
``stats``
    Per-file provenance and event-kind counts, computed streaming so
    arbitrarily long traces are fine.
``check``
    Validate every event against the schema registry
    (:data:`repro.obs.events.EVENT_SCHEMAS`): unknown kinds and missing
    required payload keys fail the command — the runtime counterpart of
    the ``trace-schema`` lint rule, and what CI runs on the committed
    example traces.
``schema``
    Print the generated event-schema table (the same rendering embedded
    in ``docs/traces.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from ..errors import ConfigurationError
from .events import TraceEvent, schema_table, validate_event
from .merge import merge_traces
from .reader import iter_trace_events
from .sinks import JsonlSink

__all__ = ["add_trace_arguments", "run_from_args"]


def _cmd_merge(args: argparse.Namespace) -> int:
    report = merge_traces(
        args.files,
        rebase=not args.no_rebase,
        estimate_skew=not args.no_skew,
    )
    print(report.summary())
    if args.output:
        earliest = min(f.epoch_wall for f in report.files)
        out = JsonlSink(
            args.output, node=None,
            epoch_wall=earliest,
            epoch_mono=min(f.epoch_mono for f in report.files),
        )
        for event in report.trace:
            out.record_event(event)
        out.close()
        print(f"wrote {out.events_written} events to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    for path in args.files:
        counts: Dict[str, int] = {}
        first = last = None
        header = None
        for item in iter_trace_events(path):
            if header is None:
                header = item
                continue
            assert isinstance(item, TraceEvent)
            counts[item.kind] = counts.get(item.kind, 0) + 1
            if first is None:
                first = item.time
            last = item.time
        node = header.get("node") if header else None
        node_label = "combined" if node is None else f"node {node}"
        total = sum(counts.values())
        span = (
            f"t in [{first:.3f}, {last:.3f}]" if first is not None else "empty"
        )
        print(f"{path}: {node_label}, {total} events, {span}, "
              f"epoch_wall={header.get('epoch_wall', 0.0):.3f}")
        for kind in sorted(counts):
            print(f"  {kind:12s} {counts[kind]:>8d}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.files:
        problems: List[str] = []
        checked = 0
        header = None
        for item in iter_trace_events(path):
            if header is None:
                header = item
                continue
            assert isinstance(item, TraceEvent)
            checked += 1
            for problem in validate_event(item):
                problems.append(f"{path}: t={item.time:.3f}: {problem}")
        if problems:
            failures += len(problems)
            for line in problems[: args.max_problems]:
                print(line, file=sys.stderr)
            hidden = len(problems) - args.max_problems
            if hidden > 0:
                print(f"{path}: ... and {hidden} more", file=sys.stderr)
            print(f"{path}: FAILED ({len(problems)} schema violations "
                  f"in {checked} events)")
        else:
            print(f"{path}: OK ({checked} events conform to the schema)")
    return 1 if failures else 0


def _cmd_schema(args: argparse.Namespace) -> int:
    print(schema_table(fmt=args.format))
    return 0


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``trace`` subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="trace_command", required=True)

    merge = sub.add_parser(
        "merge", help="merge per-node JSONL traces into one ordered stream"
    )
    merge.add_argument("files", nargs="+", metavar="FILE")
    merge.add_argument("--output", "-o", metavar="OUT.jsonl",
                       help="write the merged stream to this file")
    merge.add_argument("--no-rebase", action="store_true",
                       help="keep each file's own time base")
    merge.add_argument("--no-skew", action="store_true",
                       help="trust headers; skip causality skew estimation")
    merge.set_defaults(trace_func=_cmd_merge)

    stats = sub.add_parser("stats", help="per-file provenance and kind counts")
    stats.add_argument("files", nargs="+", metavar="FILE")
    stats.set_defaults(trace_func=_cmd_stats)

    check = sub.add_parser(
        "check", help="validate events against the schema registry"
    )
    check.add_argument("files", nargs="+", metavar="FILE")
    check.add_argument("--max-problems", type=int, default=20,
                       help="cap the violations printed per file")
    check.set_defaults(trace_func=_cmd_check)

    schema = sub.add_parser("schema", help="print the event-schema table")
    schema.add_argument("--format", choices=["markdown", "rst"],
                        default="markdown")
    schema.set_defaults(trace_func=_cmd_schema)


def run_from_args(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``trace`` invocation; returns the exit code."""
    try:
        return args.trace_func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
