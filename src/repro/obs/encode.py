"""Tagged JSON-safe value transform, shared by trace files and the codec.

The protocol layer produces rich Python values — nested tuples, dicts with
integer keys (ring knowledge maps), frozensets (suspect lists), and the
``NULL`` estimate sentinel of :mod:`repro.consensus.ec_consensus`.  Both
persistence surfaces — the wire codec in :mod:`repro.net.codec` and the
JSONL trace files in :mod:`repro.obs.sinks` — need those values as plain
JSON structure and need them back **exactly** (tuples stay tuples, int
keys stay ints, ``NULL`` stays the singleton), so one transform serves
both.

Encoding is recursive: scalars pass through, lists map elementwise, and
every other shape becomes a single-key dict ``{"!<tag>": ...}``.  User
dicts are encoded as pair lists under ``"!d"``, so payloads that *happen*
to look like a tag dict can never be misread.  Set-like values are sorted
by ``repr`` so the encoding is deterministic regardless of hash seeds.
"""

from __future__ import annotations

from typing import Any

__all__ = ["EncodeError", "to_jsonable", "from_jsonable"]

_TUPLE = "!t"
_DICT = "!d"
_FROZENSET = "!f"
_SET = "!s"
_NULL = "!0"


class EncodeError(ValueError):
    """A value cannot be represented as tagged JSON, or tags are malformed."""


def to_jsonable(obj: Any) -> Any:
    """Transform *obj* into JSON-native structure (see module docstring)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    # Late import: consensus imports sim/obs, not the reverse.
    from ..consensus.ec_consensus import NULL

    if obj is NULL:
        return {_NULL: 1}
    if isinstance(obj, list):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, tuple):
        return {_TUPLE: [to_jsonable(x) for x in obj]}
    if isinstance(obj, dict):
        return {_DICT: [[to_jsonable(k), to_jsonable(v)] for k, v in obj.items()]}
    if isinstance(obj, frozenset):
        return {_FROZENSET: sorted((to_jsonable(x) for x in obj), key=repr)}
    if isinstance(obj, set):
        return {_SET: sorted((to_jsonable(x) for x in obj), key=repr)}
    raise EncodeError(
        f"value of type {type(obj).__name__} is not wire-safe: {obj!r}"
    )


def from_jsonable(obj: Any) -> Any:
    """Exact inverse of :func:`to_jsonable`."""
    if isinstance(obj, list):
        return [from_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        if len(obj) == 1:
            (tag, value), = obj.items()
            if tag == _TUPLE:
                return tuple(from_jsonable(x) for x in value)
            if tag == _DICT:
                return {from_jsonable(k): from_jsonable(v) for k, v in value}
            if tag == _FROZENSET:
                return frozenset(from_jsonable(x) for x in value)
            if tag == _SET:
                return {from_jsonable(x) for x in value}
            if tag == _NULL:
                from ..consensus.ec_consensus import NULL

                return NULL
        raise EncodeError(f"malformed wire structure: {obj!r}")
    return obj
