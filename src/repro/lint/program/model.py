"""The project model: every parsed file, cross-referenced.

Built once per lint run from the engine's :class:`FileContext` list, the
model answers the questions per-file rules cannot: *which function does
this call resolve to, possibly through an import alias or a ``self``
method lookup?  What string does this name ultimately denote?  Who, in the
whole program, references this exported symbol?*

Three layers:

* **modules** — one :class:`ModuleInfo` per file: the import-alias map,
  module-level string constants, the ``__all__`` export list, and the
  outgoing symbol references used by the ``unreachable-public`` rule;
* **symbols** — every function/method/class indexed by its canonical
  dotted path, with re-export chains (``from .engine import lint_paths``)
  resolved to the defining module;
* **call graph** — built on top by :mod:`repro.lint.program.callgraph`.

Module naming here is *structural*: a file's dotted name is derived by
walking up through ``__init__.py``-bearing directories, so fixture
mini-packages resolve exactly like the installed ``repro`` package does.
(The engine's ``FileContext.module`` — used for rule scoping — keeps its
own convention: "" for files outside a ``repro`` tree.)

Determinism: ``modules`` is a dict built in sorted-path order and every
accessor iterates sorted keys, upholding the byte-identical-output
contract of the engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..astutil import ImportMap, dotted_name
from ..engine import FileContext

__all__ = [
    "model_module_name",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project_model",
]


def model_module_name(path: Path) -> str:
    """Structural dotted name of *path*: walk up while ``__init__.py``
    marks a package.  ``src/repro/net/tcp.py`` -> ``repro.net.tcp`` (the
    ``src`` directory has no ``__init__.py``); a standalone file maps to
    its stem."""
    path = path.resolve()
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function, method, or nested function."""

    key: str  #: canonical dotted path: ``module.Class.method``
    module: str
    qualname: str
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    is_async: bool
    class_name: Optional[str] = None  #: qualname of the owning class
    #: resolved project-internal callees: (callee key, call-site node, how)
    #: where ``how`` is "call" (direct invocation) or "ref" (the function
    #: is passed/stored as a value — schedulers, callbacks, task spawns).
    calls: List[Tuple[str, ast.AST, str]] = field(default_factory=list)
    #: resolved external callees: (canonical dotted name, call-site node).
    external_calls: List[Tuple[str, ast.AST]] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One locally defined class."""

    key: str  #: ``module.QualName``
    module: str
    qualname: str
    node: ast.ClassDef
    #: base classes as canonical dotted names (import aliases resolved).
    bases: List[str] = field(default_factory=list)
    #: direct method name -> FunctionInfo key.
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed file inside the model."""

    name: str  #: structural dotted name (see :func:`model_module_name`)
    ctx: FileContext
    #: True for reference-corpus files (tests etc.): their symbols count
    #: as uses and producers, but rules never report findings in them.
    reference: bool = False
    imports: ImportMap = None  # type: ignore[assignment]
    #: module-level NAME = "string" constants.
    constants: Dict[str, str] = field(default_factory=dict)
    #: names bound at module level (defs, classes, assignments).
    defined_names: Set[str] = field(default_factory=set)
    #: ``__all__`` entries with the AST node of each string element.
    exports: List[Tuple[str, ast.AST]] = field(default_factory=list)
    functions: Dict[str, str] = field(default_factory=dict)  #: qualname -> key
    classes: Dict[str, str] = field(default_factory=dict)  #: qualname -> key
    #: outgoing (module, name) symbol references (imports + attributes).
    references: Set[Tuple[str, str]] = field(default_factory=set)
    #: modules star-imported by this module.
    star_imports: List[str] = field(default_factory=list)


class ProjectModel:
    """The cross-referenced whole-program view (see module docstring)."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # ------------------------------------------------------------ accessors
    def sorted_modules(self) -> List[ModuleInfo]:
        """Every module, in sorted-name order (deterministic iteration)."""
        return [self.modules[name] for name in sorted(self.modules)]

    def target_modules(self) -> List[ModuleInfo]:
        """Modules findings may be reported in (non-reference), sorted."""
        return [m for m in self.sorted_modules() if not m.reference]

    # ----------------------------------------------------------- resolution
    def split_module(self, dotted: str) -> Tuple[str, str]:
        """Split *dotted* at the longest known module prefix.

        ``repro.sim.world.World`` -> ("repro.sim.world", "World");
        a path naming no known module -> ("", dotted).
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, ".".join(parts[cut:])
        return "", dotted

    def canonical_symbol(self, module: str, name: str) -> str:
        """Follow re-export chains to the defining module.

        ``canonical_symbol("repro.lint", "lint_paths")`` ->
        ``repro.lint.engine.lint_paths`` when the package ``__init__``
        re-exports it.  Cycles and unknown names terminate at the last
        resolvable point.
        """
        seen: Set[Tuple[str, str]] = set()
        while (module, name) not in seen:
            seen.add((module, name))
            info = self.modules.get(module)
            if info is None:
                break
            target = info.imports.aliases.get(name)
            if target is None:
                break  # defined (or undefined) here: terminal
            mod, rest = self.split_module(target)
            if not mod:
                return target  # external symbol: its dotted path is canonical
            if not rest:
                return mod  # the name aliases a module itself
            if "." in rest:
                return f"{mod}.{rest}"
            module, name = mod, rest
        return f"{module}.{name}"

    def resolve_string(
        self, module: ModuleInfo, node: ast.AST
    ) -> Optional[str]:
        """The string value *node* statically denotes, or ``None``.

        Handles string literals, module-level constants, and constants
        imported from other modules in the model (``from .kinds import
        ACK`` — the aliased-constant case the per-file rules cannot see).
        """
        if isinstance(node, ast.Constant):
            return node.value if isinstance(node.value, str) else None
        dotted = dotted_name(node)
        if dotted is None:
            return None
        return self._lookup_constant(module.name, dotted, depth=0)

    def _lookup_constant(
        self, module_name: str, dotted: str, depth: int
    ) -> Optional[str]:
        if depth > 8:  # defensive: alias cycles
            return None
        info = self.modules.get(module_name)
        if info is None:
            return None
        if "." not in dotted and dotted in info.constants:
            return info.constants[dotted]
        resolved = info.imports.resolve(dotted)
        if resolved is None or resolved == dotted and "." not in dotted:
            return None
        mod, rest = self.split_module(resolved)
        if not mod or not rest or "." in rest:
            return None
        target = self.modules.get(mod)
        if target is None:
            return None
        if rest in target.constants:
            return target.constants[rest]
        if mod != module_name:
            return self._lookup_constant(mod, rest, depth + 1)
        return None

    # ------------------------------------------------- export-use matching
    def canonical_references(self) -> Set[str]:
        """Every referenced symbol, canonicalized, across the program."""
        out: Set[str] = set()
        star_exports: Set[str] = set()
        for info in self.sorted_modules():
            for mod, name in sorted(info.references):
                out.add(self.canonical_symbol(mod, name))
            for starred in info.star_imports:
                target = self.modules.get(starred)
                if target is None:
                    continue
                for name, _node in target.exports:
                    star_exports.add(self.canonical_symbol(starred, name))
        return out | star_exports


# --------------------------------------------------------------------- build


def build_project_model(
    targets: Sequence[FileContext],
    references: Sequence[FileContext] = (),
) -> ProjectModel:
    """Construct the model from parsed *targets* plus an optional
    *references* corpus (tests/benchmarks/examples: their symbol uses and
    message sends count, but no findings are ever attributed to them)."""
    model = ProjectModel()
    ordered: List[Tuple[FileContext, bool]] = sorted(
        [(ctx, False) for ctx in targets]
        + [(ctx, True) for ctx in references],
        key=lambda pair: str(pair[0].path.resolve()),
    )
    for ctx, is_reference in ordered:
        name = model_module_name(ctx.path)
        if name in model.modules:
            continue  # first (sorted) file wins; duplicates are degenerate
        model.modules[name] = _build_module(model, name, ctx, is_reference)
    # Second pass: reference extraction needs split_module over the full
    # module table, so it runs after every module is registered.
    for info in model.sorted_modules():
        _collect_references(model, info)
    from .callgraph import build_call_graph  # local: avoid import cycle

    build_call_graph(model)
    return model


def _build_module(
    model: ProjectModel, name: str, ctx: FileContext, reference: bool
) -> ModuleInfo:
    package = name if ctx.path.stem == "__init__" else name.rpartition(".")[0]
    info = ModuleInfo(
        name=name,
        ctx=ctx,
        reference=reference,
        imports=ImportMap(ctx.tree, package=package),
    )
    info.star_imports = list(info.imports.star_imports)
    _collect_toplevel(info)
    _collect_definitions(model, info)
    return info


def _collect_toplevel(info: ModuleInfo) -> None:
    """Module-level constants, bound names, and the ``__all__`` list."""
    for stmt in info.ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            info.defined_names.add(stmt.name)
            continue
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            info.defined_names.add(target.id)
            if target.id == "__all__" and isinstance(
                value, (ast.List, ast.Tuple)
            ):
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        info.exports.append((elt.value, elt))
            elif isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                info.constants[target.id] = value.value


def _collect_definitions(model: ProjectModel, info: ModuleInfo) -> None:
    """Index every function, method, and class under its qualname."""

    def visit(body: List[ast.stmt], prefix: str, owner: Optional[ClassInfo]):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                key = f"{info.name}.{qual}"
                func = FunctionInfo(
                    key=key,
                    module=info.name,
                    qualname=qual,
                    node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    class_name=owner.qualname if owner is not None else None,
                )
                model.functions[key] = func
                info.functions[qual] = key
                if owner is not None and "." not in stmt.name:
                    owner.methods.setdefault(stmt.name, key)
                # Nested defs are indexed too (they become "ref" callees
                # of the enclosing function in the call graph).
                visit(stmt.body, f"{qual}.", None)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}{stmt.name}"
                key = f"{info.name}.{qual}"
                cls = ClassInfo(
                    key=key, module=info.name, qualname=qual, node=stmt
                )
                for base in stmt.bases:
                    resolved = info.imports.resolve(dotted_name(base))
                    if resolved is not None:
                        cls.bases.append(resolved)
                model.classes[key] = cls
                info.classes[qual] = key
                visit(stmt.body, f"{qual}.", cls)


    visit(info.ctx.tree.body, "", None)


def _collect_references(model: ProjectModel, info: ModuleInfo) -> None:
    """Outgoing (module, name) references: imports + attribute chains."""
    for node in ast.walk(info.ctx.tree):
        if isinstance(node, ast.ImportFrom):
            base = info.imports._resolve_base(node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name != "*":
                    info.references.add((base, alias.name))
        elif isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None:
                continue
            resolved = info.imports.resolve(dotted)
            if resolved is None:
                continue
            parts = resolved.split(".")
            for cut in range(1, len(parts)):
                prefix = ".".join(parts[:cut])
                if prefix in model.modules:
                    info.references.add((prefix, parts[cut]))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            target = info.imports.aliases.get(node.id)
            if target is None:
                continue
            mod, rest = model.split_module(target)
            if mod and rest and "." not in rest:
                info.references.add((mod, rest))
