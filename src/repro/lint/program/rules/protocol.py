"""``protocol-flow``: every kind sent has a handler, every arm a producer.

Three protocol "spaces" are tracked across the whole program:

* **component message kinds** — the first element of a tuple payload (or a
  whole-string payload) handed to ``send``/``send_self``/``broadcast``/
  ``rbroadcast``/``urbroadcast``, versus dispatch arms that compare a
  received kind (``payload[0]``, ``kind, x = payload``, a parameter named
  ``kind``) against a string;
* **service ops** — ``client.request("get", ...)`` / ``Request(op=...)`` /
  a ``{"op": "partition", ...}`` wire-command literal (the fault-control
  protocol and hand-written scenario documents both spell ops this way)
  versus handler arms comparing ``request.op``, ``event.op``,
  ``command["op"]``, a parameter named ``op``, or a name bound from
  ``command.get("op")``;
* **service reply statuses** — ``Reply(status=...)`` versus client-side
  status compares.  This space is *dead-arm only*: a produced status no
  client inspects is normal (clients handle "error" in an else-branch),
  but comparing against a status the service never produces is dead code.

String values resolve through module-level constants and cross-module
constant imports (``from .kinds import EST``), so the conventional
``_EST = "EST"`` style is followed to the literal.

Both directions are gated on the other side being *in view* (at least one
producer / one handler arm in the model, reference corpus included):
linting a lone client file must not claim every op is unhandled.
Missing handlers are errors; dead arms are warnings, reported only for
*strong* kind expressions (a bare ``payload == "X"`` compare is accepted
as a handler but never flagged as dead — too weak a signal).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...astutil import call_func_name
from ...findings import Finding
from ...registry import ProgramRule, program_rule
from ...rules.payload import _PAYLOAD_ARG, payload_expr
from ..callgraph import own_nodes

__all__ = ["ProtocolFlowRule"]

#: Parameter names conventionally holding an incoming message payload.
_PAYLOAD_PARAMS = frozenset({"payload", "message", "msg", "command"})

#: Dispatch-field name -> the space it selects on.  Deliberately does NOT
#: include "kind": ``x.kind`` in this codebase is overwhelmingly
#: ``TraceEvent.kind`` / ``MetricSchema.kind`` (trace analysis, not message
#: dispatch) — component kinds are matched through payload conventions
#: (``payload[0]``, tuple unpack, a parameter named ``kind``) instead.
_FIELD_SPACE = {"op": "op", "status": "status"}


class _Flow:
    """Produced and handled values of one protocol space."""

    def __init__(self) -> None:
        #: value -> [(ModuleInfo, site node)], in collection order.
        self.produced: Dict[str, List[Tuple[object, ast.AST]]] = {}
        #: value -> [(ModuleInfo, site node, strong)], in collection order.
        self.handled: Dict[str, List[Tuple[object, ast.AST, bool]]] = {}

    def produce(self, value: str, module, node: ast.AST) -> None:
        self.produced.setdefault(value, []).append((module, node))

    def handle(
        self, value: str, module, node: ast.AST, strong: bool
    ) -> None:
        self.handled.setdefault(value, []).append((module, node, strong))


def _unwrap_str(node: ast.AST) -> ast.AST:
    """Peel a ``str(...)`` coercion (``op = str(command.get("op"))``)."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "str"
        and len(node.args) == 1
        and not isinstance(node.args[0], ast.Starred)
    ):
        return node.args[0]
    return node


def _get_field(node: ast.AST) -> Optional[str]:
    """The literal field of ``x.get("op")`` or ``x["op"]``, or ``None``."""
    node = _unwrap_str(node)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    return None


class _FunctionScan:
    """Per-function name bindings feeding the dispatch-arm classifier."""

    def __init__(self, func_node: ast.AST, nodes: List[ast.AST]) -> None:
        args = func_node.args
        params = [
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        self.payload_names: Set[str] = {
            p for p in params if p in _PAYLOAD_PARAMS
        }
        self.field_names: Dict[str, Set[str]] = {
            "kind": set(), "op": set(), "status": set(),
        }
        if "kind" in params:
            self.field_names["kind"].add("kind")
        for field, space in _FIELD_SPACE.items():
            # A parameter literally named after a dispatch field — the
            # ``def _dispatch(self, op, command)`` convention.
            if field in params:
                self.field_names[space].add(field)
        for node in nodes:
            if not isinstance(node, ast.Assign):
                continue
            value = _unwrap_str(node.value)
            space = self._value_space(value)
            if space is None:
                continue
            for target in node.targets:
                if space == "kind*unpack":
                    if isinstance(target, ast.Tuple) and target.elts:
                        first = target.elts[0]
                        if isinstance(first, ast.Name):
                            self.field_names["kind"].add(first.id)
                elif isinstance(target, ast.Name):
                    self.field_names[space].add(target.id)

    def _value_space(self, value: ast.AST) -> Optional[str]:
        """Which space an assigned value selects on, if any."""
        if self._is_payload_head(value):
            return "kind"
        if isinstance(value, ast.Name) and value.id in self.payload_names:
            return "kind*unpack"  # ``kind, x = payload``
        field = _get_field(value)
        if field is None and isinstance(value, ast.Attribute):
            field = value.attr
        if field in _FIELD_SPACE:
            return _FIELD_SPACE[field]
        return None

    def _is_payload_head(self, node: ast.AST) -> bool:
        """``payload[0]`` on a payload-named parameter."""
        if not isinstance(node, ast.Subscript):
            return False
        if not (
            isinstance(node.value, ast.Name)
            and node.value.id in self.payload_names
        ):
            return False
        index = node.slice
        return isinstance(index, ast.Constant) and index.value == 0

    def classify(self, node: ast.AST) -> Optional[Tuple[str, bool]]:
        """(space, strong) when *node* is a dispatch selector, else None."""
        node = _unwrap_str(node)
        if self._is_payload_head(node):
            return ("kind", True)
        if isinstance(node, ast.Name):
            for space, names in sorted(self.field_names.items()):
                if node.id in names:
                    return (space, True)
            if node.id in self.payload_names:
                return ("kind", False)  # whole-payload compare: weak
            return None
        if isinstance(node, ast.Attribute) and node.attr in _FIELD_SPACE:
            return (_FIELD_SPACE[node.attr], True)
        field = _get_field(node)
        if field in _FIELD_SPACE:
            return (_FIELD_SPACE[field], True)
        return None


@program_rule
class ProtocolFlowRule(ProgramRule):
    """Match produced message kinds / ops / statuses against dispatch arms."""

    id = "protocol-flow"
    summary = (
        "every message kind and service op sent must have a dispatch arm, "
        "and every dispatch arm a producer (dead arms flagged)"
    )
    scope = ()  # the send/handle conventions are name-based, not package-based

    def check(self, model) -> Iterator[Finding]:
        kinds, ops, statuses = self._collect(model)
        yield from self._missing_handlers(
            kinds, "message kind",
            "no dispatch arm anywhere compares a received kind against it; "
            "the message is sent and silently ignored",
        )
        yield from self._missing_handlers(
            ops, "service op",
            "no handler compares a request op against it; the command "
            "would be rejected or dropped by every replica",
        )
        yield from self._dead_arms(
            kinds, "message kind",
            "no component ever sends it — a dead dispatch arm (or a typo "
            "for a kind that is sent)",
        )
        yield from self._dead_arms(
            ops, "service op",
            "no client or test ever issues it — a dead handler arm (or a "
            "typo for an op that is issued)",
        )
        yield from self._dead_arms(
            statuses, "reply status",
            "the service never produces it — a dead client branch (or a "
            "typo for a status the service does produce)",
        )

    # ------------------------------------------------------------ collection
    def _collect(self, model) -> Tuple[_Flow, _Flow, _Flow]:
        kinds, ops, statuses = _Flow(), _Flow(), _Flow()
        for module in model.sorted_modules():
            self._collect_producers(model, module, kinds, ops, statuses)
            self._collect_handlers(model, module, kinds, ops, statuses)
        return kinds, ops, statuses

    def _collect_producers(
        self, model, module, kinds: _Flow, ops: _Flow, statuses: _Flow
    ) -> None:
        # The analyzer itself talks *about* op-keyed dicts (_FIELD_SPACE);
        # only protocol code builds them as commands.
        in_lint = module.ctx.module.startswith("repro.lint")
        for node in ast.walk(module.ctx.tree):
            if isinstance(node, ast.Dict) and not in_lint:
                # A wire command being built: {"op": "partition", ...}.
                for key, value in zip(node.keys, node.values):
                    if isinstance(key, ast.Constant) and key.value == "op":
                        resolved = model.resolve_string(module, value)
                        if resolved is not None:
                            ops.produce(resolved, module, node)
                continue
            if not isinstance(node, ast.Call):
                continue
            name = call_func_name(node)
            if name in _PAYLOAD_ARG:
                payload = payload_expr(node, name)
                if payload is None:
                    continue
                expr = payload
                if isinstance(payload, ast.Tuple) and payload.elts:
                    expr = payload.elts[0]
                value = model.resolve_string(module, expr)
                if value is not None:
                    kinds.produce(value, module, node)
            elif name == "request" and isinstance(node.func, ast.Attribute):
                if node.args and not isinstance(node.args[0], ast.Starred):
                    value = model.resolve_string(module, node.args[0])
                    if value is not None:
                        ops.produce(value, module, node)
            elif name == "Request":
                for kw in node.keywords:
                    if kw.arg == "op":
                        value = model.resolve_string(module, kw.value)
                        if value is not None:
                            ops.produce(value, module, node)
            elif name == "Reply":
                for kw in node.keywords:
                    if kw.arg == "status":
                        value = model.resolve_string(module, kw.value)
                        if value is not None:
                            statuses.produce(value, module, node)

    def _collect_handlers(
        self, model, module, kinds: _Flow, ops: _Flow, statuses: _Flow
    ) -> None:
        flows = {"kind": kinds, "op": ops, "status": statuses}
        for qual in sorted(module.functions):
            func = model.functions[module.functions[qual]]
            nodes = own_nodes(func)
            scan = _FunctionScan(func.node, nodes)
            for node in nodes:
                if not isinstance(node, ast.Compare):
                    continue
                sides = [node.left] + list(node.comparators)
                for i, side in enumerate(sides):
                    kind = scan.classify(side)
                    if kind is None:
                        continue
                    space, strong = kind
                    for j, other in enumerate(sides):
                        if j == i:
                            continue
                        for value in self._string_values(
                            model, module, other
                        ):
                            flows[space].handle(
                                value, module, node, strong
                            )

    @staticmethod
    def _string_values(model, module, node: ast.AST) -> List[str]:
        """Strings *node* compares against (tuple membership unpacked)."""
        elts = (
            node.elts
            if isinstance(node, (ast.Tuple, ast.List, ast.Set))
            else [node]
        )
        out: List[str] = []
        for elt in elts:
            value = model.resolve_string(module, elt)
            if value is not None:
                out.append(value)
        return out

    # -------------------------------------------------------------- checking
    def _missing_handlers(
        self, flow: _Flow, label: str, consequence: str
    ) -> Iterator[Finding]:
        if not flow.handled:
            return  # no dispatch machinery in view: cannot judge
        for value in sorted(flow.produced):
            if value in flow.handled:
                continue
            sites = [
                (module, node)
                for module, node in flow.produced[value]
                if not module.reference
            ]
            if not sites:
                continue
            module, node = min(
                sites,
                key=lambda site: (
                    site[0].ctx.display_path,
                    getattr(site[1], "lineno", 1),
                    getattr(site[1], "col_offset", 0),
                ),
            )
            yield self.finding(
                module, node,
                f"{label} {value!r} is produced here but {consequence}",
            )

    def _dead_arms(
        self, flow: _Flow, label: str, consequence: str
    ) -> Iterator[Finding]:
        if not flow.produced:
            return  # no producers in view: cannot judge
        for value in sorted(flow.handled):
            if value in flow.produced:
                continue
            seen: Set[int] = set()
            sites = []
            for module, node, strong in flow.handled[value]:
                if not strong or module.reference or id(node) in seen:
                    continue
                seen.add(id(node))
                sites.append((module, node))
            sites.sort(
                key=lambda site: (
                    site[0].ctx.display_path,
                    getattr(site[1], "lineno", 1),
                    getattr(site[1], "col_offset", 0),
                ),
            )
            for module, node in sites:
                yield self.finding(
                    module, node,
                    f"{label} {value!r} is compared against here but "
                    f"{consequence}",
                    severity="warning",
                )
