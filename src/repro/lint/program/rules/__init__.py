"""Whole-program rule modules; importing this package registers them.

Each module registers its rules with the
:func:`~repro.lint.registry.program_rule` decorator at import time, the
same pattern :mod:`repro.lint.rules` uses for the per-file rules.
"""

from . import exports, protocol, reach, registries  # noqa: F401

__all__ = ["exports", "protocol", "reach", "registries"]
