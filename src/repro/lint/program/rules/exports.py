"""``unreachable-public``: ``__all__`` names nobody imports.

A name in ``__all__`` is a promise: the package, CLI, tests, or
benchmarks reach for it.  This rule checks the promise against the whole
program (reference corpus included): every export is canonicalized
through re-export chains (``repro.__init__``'s ``World`` *is*
``repro.sim.world.World``), every reference in every module is
canonicalized the same way, and an export no canonical reference matches
is flagged.  The import statement that *realizes* a re-export is not a
use — otherwise ``from .sim.world import World`` in ``repro/__init__``
would mark ``World`` used forever.

Two findings:

* **error** — an exported name bound nowhere in its module (a star-import
  consumer would crash on it; usually a rename leftover) — checked in
  every module;
* **warning** — an export never referenced anywhere (dead public surface,
  or a symbol the tests should be covering and are not) — checked only in
  package ``__init__`` modules: a submodule's ``__all__`` is internal
  organization and star-import control, while the package surface is the
  promise consumers rely on.

Exempt: ``main`` (console-script entry points reference it from
``pyproject.toml``, outside the AST's view) and exports that name a
*module* (``from . import rules``-style namespace listings).

Modules defining a top-level ``__getattr__`` (PEP 562 lazy re-export,
e.g. ``repro.net`` delegating moved names to ``repro.cluster``) get two
concessions: the undefined-export error is skipped (the name may be
provided dynamically), and an import *through* such a module counts as a
bare-name use of every same-named export elsewhere (the delegation target
cannot be resolved statically, so the rule stays conservative).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ...findings import Finding
from ...registry import ProgramRule, program_rule

__all__ = ["UnreachablePublicRule"]

#: Exported names referenced from outside the AST's view.
_ENTRY_POINTS = frozenset({"main"})


def _has_dynamic_getattr(tree: ast.Module) -> bool:
    """Whether the module defines a top-level ``__getattr__`` (PEP 562)."""
    return any(
        isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
        for node in tree.body
    )


def _bound_names(tree: ast.AST) -> Set[str]:
    """Every name bound anywhere in *tree* (assignments, defs, classes) —
    deliberately lenient, so conditional module-level bindings
    (``try: ... except ImportError: HAVE = False``) are not flagged."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            out.add(node.name)
    return out


@program_rule
class UnreachablePublicRule(ProgramRule):
    """Flag ``__all__`` entries that are undefined or never referenced."""

    id = "unreachable-public"
    summary = (
        "every name in __all__ must exist and be referenced somewhere in "
        "the program (package, CLI, tests, benchmarks)"
    )
    scope = ()  # the export contract holds for every package

    def check(self, model) -> Iterator[Finding]:
        used, dynamic = self._used_symbols(model)
        for module in model.target_modules():
            if not module.exports:
                continue
            is_package = module.ctx.path.stem == "__init__"
            bound = _bound_names(module.ctx.tree)
            lazy = _has_dynamic_getattr(module.ctx.tree)
            for name, node in module.exports:
                if name in _ENTRY_POINTS:
                    continue
                if name not in bound and name not in module.imports.aliases:
                    if lazy:
                        continue  # __getattr__ may provide it dynamically
                    yield self.finding(
                        module, node,
                        f"__all__ exports {name!r} but the module never "
                        "binds that name; star-import consumers would "
                        "crash on it",
                    )
                    continue
                if not is_package:
                    continue  # submodule __all__: organization, not API
                canonical = model.canonical_symbol(module.name, name)
                if canonical in model.modules:
                    continue  # exporting a submodule: namespace listing
                if canonical not in used and name not in dynamic:
                    yield self.finding(
                        module, node,
                        f"exported name {name!r} is never referenced from "
                        "the package, CLI, tests, or benchmarks; drop it "
                        "from __all__ or add the missing consumer",
                        severity="warning",
                    )

    @staticmethod
    def _used_symbols(model) -> Tuple[Set[str], Set[str]]:
        """``(canonical uses, dynamic bare-name uses)`` across the program.

        Canonical uses follow re-export chains; re-export-realizing imports
        are excluded (see module docstring).  A reference landing on a
        ``__getattr__``-bearing module that does not statically bind the
        name is a *dynamic* use: the delegation target is unknowable, so
        the bare name marks every same-named export as reached."""
        used: Set[str] = set()
        dynamic: Set[str] = set()
        lazy_modules = {
            name: _bound_names(info.ctx.tree) | set(info.imports.aliases)
            for name, info in model.modules.items()
            if _has_dynamic_getattr(info.ctx.tree)
        }
        for info in model.sorted_modules():
            reexported = {
                name for name, _node in info.exports
                if name in info.imports.aliases
            }
            for mod, name in sorted(info.references):
                canonical = model.canonical_symbol(mod, name)
                if (
                    name in reexported
                    and model.canonical_symbol(info.name, name) == canonical
                ):
                    continue  # the import realizing a re-export: not a use
                used.add(canonical)
                if mod in lazy_modules and name not in lazy_modules[mod]:
                    dynamic.add(name)
            for starred in info.star_imports:
                target = model.modules.get(starred)
                if target is None:
                    continue
                for name, _node in target.exports:
                    used.add(model.canonical_symbol(starred, name))
        return used, dynamic
