"""``registry-flow``: alias/constant-resolved record sites vs the registries.

The per-file ``trace-schema`` / ``metrics-registry`` rules judge only
**literal string** kinds and names; a site writing ``self.trace(_KIND,
...)`` with ``_KIND = "fd.suspect"`` at module level — or with the
constant imported from another module — slips through.  This rule closes
that loophole: the same recognizers run over every call site, but the
kind/name argument is resolved through the project model's constant and
import-alias tables first.  Literal arguments are deliberately skipped
here — the per-file rules own them, so no site is reported twice.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ....obs.events import EVENT_SCHEMAS
from ....obs.metrics import METRIC_SCHEMAS
from ...findings import Finding
from ...registry import ProgramRule, program_rule
from ...rules.metrics_registry import _RESERVED, _name_argument
from ...rules.trace_schema import _kind_argument

__all__ = ["RegistryFlowRule"]


def _is_literal_str(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


@program_rule
class RegistryFlowRule(ProgramRule):
    """Check constant-resolved trace/metric record sites against the
    obs registries."""

    id = "registry-flow"
    summary = (
        "trace/metric record sites whose kind or name is a resolvable "
        "constant (module-level or imported) must match the obs registries"
    )
    scope = ()  # the registry contract holds everywhere, like its per-file kin

    def check(self, model) -> Iterator[Finding]:
        for module in model.target_modules():
            for node in ast.walk(module.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                kind_node = _kind_argument(node, module.imports)
                if kind_node is not None:
                    yield from self._check_trace(
                        model, module, node, kind_node
                    )
                    continue
                name_node = _name_argument(node, module.imports)
                if name_node is not None:
                    yield from self._check_metric(
                        model, module, node, name_node
                    )

    def _check_trace(
        self, model, module, call: ast.Call, kind_node: ast.AST
    ) -> Iterator[Finding]:
        if _is_literal_str(kind_node):
            return  # per-file trace-schema owns literal kinds
        kind = model.resolve_string(module, kind_node)
        if kind is None:
            return  # genuinely dynamic: checked at run time
        schema = EVENT_SCHEMAS.get(kind)
        if schema is None:
            yield self.finding(
                module, kind_node,
                f"trace event kind constant resolves to {kind!r}, which "
                "is not registered; register it with "
                "repro.obs.register_event_kind or fix the constant "
                "(known kinds: " + ", ".join(sorted(EVENT_SCHEMAS)) + ")",
            )
            return
        if any(kw.arg is None for kw in call.keywords):
            return  # **splat payload: keys unknowable statically
        supplied = {kw.arg for kw in call.keywords}
        missing: List[str] = [
            key for key in schema.required if key not in supplied
        ]
        if missing:
            yield self.finding(
                module, call,
                f"trace event {kind!r} (via constant) is missing required "
                "payload key(s): " + ", ".join(missing),
            )

    def _check_metric(
        self, model, module, call: ast.Call, name_node: ast.AST
    ) -> Iterator[Finding]:
        if _is_literal_str(name_node):
            return  # per-file metrics-registry owns literal names
        name = model.resolve_string(module, name_node)
        if name is None:
            return
        schema = METRIC_SCHEMAS.get(name)
        if schema is None:
            yield self.finding(
                module, name_node,
                f"metric name constant resolves to {name!r}, which is not "
                "registered; register it with repro.obs.register_metric "
                "or fix the constant (known metrics: "
                + ", ".join(sorted(METRIC_SCHEMAS)) + ")",
            )
            return
        if any(kw.arg is None for kw in call.keywords):
            return  # **splat labels
        supplied = sorted(
            kw.arg for kw in call.keywords
            if kw.arg is not None and kw.arg not in _RESERVED
        )
        declared = sorted(schema.labels)
        if supplied != declared:
            expected = (
                "{" + ", ".join(declared) + "}" if declared else "none"
            )
            got = "{" + ", ".join(supplied) + "}" if supplied else "none"
            yield self.finding(
                module, call,
                f"metric {name!r} (via constant) declares labels "
                f"{expected} but this update supplies {got}",
            )
