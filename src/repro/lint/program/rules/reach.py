"""Interprocedural reachability rules: the whole-program versions of
``blocking-call`` and ``wall-clock``/``global-random``.

The per-file rules see a blocking or ambient call only when it sits
lexically inside the guarded function.  These rules follow the call graph
instead: a sync helper that calls ``time.sleep`` is flagged at the point
where an ``async def`` (or sim-scoped code) enters the path that reaches
it.  To avoid double-reporting, each rule flags exactly the *edges* its
per-file sibling cannot see:

* ``async-blocking-reach`` skips blocking calls written directly inside
  the ``async def`` (per-file ``blocking-call`` owns those) and reports
  the call/ref edge into the sync helper that reaches one;
* ``ambient-state-reach`` reports only *boundary* edges — a sim-scoped
  caller invoking a function outside the sim scope that transitively
  reads ambient state.  Reads inside sim-scoped modules are per-file
  ``wall-clock``/``global-random`` findings already.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ...findings import Finding
from ...registry import ProgramRule, program_rule
from ...rules.asyncio_hazards import NET_SCOPE, _BLOCKING_CALLS
from ...rules.determinism import (
    SIM_SCOPE,
    _ENTROPY_CALLS,
    _GLOBAL_RANDOM_CALLS,
    _WALL_CLOCK_CALLS,
)
from ..callgraph import reach_external

__all__ = ["AsyncBlockingReachRule", "AmbientStateReachRule"]


def _in_scope(module: str, scope: Tuple[str, ...]) -> bool:
    """Whether *module* (engine dotted name) is strictly inside *scope*.

    Unlike ``applies_to``, "" (a file outside the repro tree) is *not*
    inside: for boundary detection an unknown module offers none of the
    guarantees scope membership implies.
    """
    return bool(module) and any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in scope
    )


def _chain(keys: Tuple[str, ...], terminal: str) -> str:
    return " -> ".join(keys + (f"{terminal}()",))


@program_rule
class AsyncBlockingReachRule(ProgramRule):
    """Blocking calls reachable from ``async def`` through sync helpers."""

    id = "async-blocking-reach"
    summary = (
        "no blocking call (time.sleep, sync subprocess/socket) reachable "
        "from an async def through sync helpers, callbacks, or timers"
    )
    scope = NET_SCOPE

    def check(self, model) -> Iterator[Finding]:
        reach = reach_external(
            model, _BLOCKING_CALLS, traverse=lambda f: not f.is_async
        )
        for module in model.target_modules():
            if not self.applies_to(module.ctx.module):
                continue
            for qual in sorted(module.functions):
                func = model.functions[module.functions[qual]]
                if not func.is_async:
                    continue
                for callee, node, how in func.calls:
                    target = model.functions.get(callee)
                    if target is None or target.is_async:
                        continue
                    result = reach.get(callee)
                    if result is None:
                        continue
                    blocked, chain = result
                    verb = (
                        "calls" if how == "call"
                        else "schedules/references"
                    )
                    yield self.finding(
                        module, node,
                        f"async def {func.qualname!r} {verb} a sync path "
                        f"that reaches blocking {blocked}() "
                        f"({_chain(chain, blocked)}); this stalls every "
                        "node sharing the event loop — use the asyncio "
                        "equivalent or move the work off-loop",
                    )


@program_rule
class AmbientStateReachRule(ProgramRule):
    """Ambient clock/RNG reads reachable from sim-scoped code."""

    id = "ambient-state-reach"
    summary = (
        "no wall-clock or global-RNG read reachable from sim-path code "
        "through helpers outside the sim scope"
    )
    scope = SIM_SCOPE

    _AMBIENT = _WALL_CLOCK_CALLS | _GLOBAL_RANDOM_CALLS | _ENTROPY_CALLS

    def check(self, model) -> Iterator[Finding]:
        reach = reach_external(
            model, self._AMBIENT, traverse=lambda f: True
        )
        for module in model.target_modules():
            if not self.applies_to(module.ctx.module):
                continue
            for qual in sorted(module.functions):
                func = model.functions[module.functions[qual]]
                for callee, node, _how in func.calls:
                    target = model.functions.get(callee)
                    if target is None:
                        continue
                    callee_module = model.modules[target.module]
                    if _in_scope(callee_module.ctx.module, self.scope):
                        continue  # sim-internal edge: per-file rules own it
                    result = reach.get(callee)
                    if result is None:
                        continue
                    ambient, chain = result
                    yield self.finding(
                        module, node,
                        f"{func.qualname!r} calls outside the sim scope "
                        f"into a path that reads ambient {ambient}() "
                        f"({_chain(chain, ambient)}); this breaks "
                        "deterministic replay — thread self.now / the "
                        "injected rng through instead",
                    )
