"""Conservative call-graph construction and reachability over the model.

Edges are *may-call* over-approximations, which is the right polarity for
the reach rules (a blocking call that might run under an ``async def`` is
worth a finding).  Two edge kinds:

* ``"call"`` — a direct invocation whose target resolves statically: a
  module-level function (through import aliases), a method reached via
  ``self.``/``cls.`` on a locally defined class (following base classes
  that resolve inside the model), a class constructor (edges to
  ``__init__``), or a nested function;
* ``"ref"`` — the function is passed or stored as a value: scheduler and
  callback registrations (``loop.call_later(d, self._kill, pid)``,
  ``periodically(p, self._beat)``, ``asyncio.create_task`` with a bare
  function reference), assignments, decorators.  A referenced function is
  assumed to eventually run — that is exactly how timers and task spawns
  smuggle blocking calls into the event loop.

Calls that do not resolve to a project function are recorded as
*external* callees under their canonical dotted name (``time.sleep``,
``subprocess.run`` — aliased imports resolved), which is what the
blocking/ambient tables match against.

Determinism: functions are processed and edges appended in sorted order;
:func:`reach_external` explores sorted adjacency, so reported chains are
stable across runs.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..astutil import dotted_name
from .model import FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["build_call_graph", "own_nodes", "reach_external", "ReachResult"]

#: (external name that was reached, chain of function keys walked).
ReachResult = Tuple[str, Tuple[str, ...]]


def build_call_graph(model: ProjectModel) -> None:
    """Populate ``calls`` / ``external_calls`` on every FunctionInfo."""
    for key in sorted(model.functions):
        func = model.functions[key]
        module = model.modules[func.module]
        _resolve_function_body(model, module, func)


# ------------------------------------------------------------------ builders


def own_nodes(func: FunctionInfo) -> List[ast.AST]:
    """*func*'s body without nested function/class bodies (those are their
    own graph nodes), in source order."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(reversed(func.node.body))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue  # separate scope
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
    return out


def _resolve_function_body(
    model: ProjectModel, module: ModuleInfo, func: FunctionInfo
) -> None:
    nodes = own_nodes(func)
    call_funcs: Set[int] = {
        id(n.func) for n in nodes if isinstance(n, ast.Call)
    }
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def: assume the enclosing function runs it.
            nested = f"{func.key}.{node.name}"
            if nested in model.functions:
                func.calls.append((nested, node, "ref"))
            continue
        if isinstance(node, ast.Call):
            resolved = _resolve_target(model, module, func, node.func)
            if resolved is None:
                continue
            kind, target = resolved
            if kind == "project":
                func.calls.append((target, node, "call"))
            elif kind == "class":
                init = _lookup_method(model, target, "__init__")
                if init is not None:
                    func.calls.append((init, node, "call"))
            else:
                func.external_calls.append((target, node))
            continue
        if isinstance(node, (ast.Name, ast.Attribute)):
            if id(node) in call_funcs:
                continue  # already handled as a call target
            if isinstance(node, ast.Attribute) and not isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                continue
            if isinstance(node, ast.Name) and not isinstance(
                node.ctx, ast.Load
            ):
                continue
            resolved = _resolve_target(model, module, func, node)
            if resolved is not None and resolved[0] == "project":
                func.calls.append((resolved[1], node, "ref"))


def _resolve_target(
    model: ProjectModel,
    module: ModuleInfo,
    func: FunctionInfo,
    node: ast.AST,
) -> Optional[Tuple[str, str]]:
    """Resolve a call/reference target.

    Returns ``("project", function key)``, ``("class", class key)``,
    ``("external", canonical dotted name)``, or ``None`` (unresolvable:
    locals, computed attributes, foreign objects).
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in ("self", "cls") and func.class_name is not None:
        if not rest or "." in rest:
            return None  # bare self / chained attribute object: unknown
        cls_key = f"{module.name}.{func.class_name}"
        method = _lookup_method(model, cls_key, rest)
        return ("project", method) if method is not None else None
    # Same-module resolution first: nested siblings, then module level.
    if "." not in dotted:
        sibling = f"{func.key}.{dotted}"
        if sibling in model.functions:
            return ("project", sibling)
        if dotted in module.functions:
            return ("project", module.functions[dotted])
        if dotted in module.classes:
            return ("class", module.classes[dotted])
    resolved = module.imports.resolve(dotted)
    if resolved is None:
        return None
    mod_name, symbol = model.split_module(resolved)
    if mod_name and symbol:
        target = model.modules[mod_name]
        if symbol in target.functions:
            return ("project", target.functions[symbol])
        if symbol in target.classes:
            return ("class", target.classes[symbol])
        # Re-exported through that module's own imports?
        canonical = model.canonical_symbol(mod_name, symbol.split(".")[0])
        if canonical != f"{mod_name}.{symbol.split('.')[0]}":
            tail = symbol.split(".", 1)
            redirected = (
                canonical if len(tail) == 1 else f"{canonical}.{tail[1]}"
            )
            mod2, sym2 = model.split_module(redirected)
            if mod2 and sym2:
                target2 = model.modules[mod2]
                if sym2 in target2.functions:
                    return ("project", target2.functions[sym2])
                if sym2 in target2.classes:
                    return ("class", target2.classes[sym2])
        return None  # inside the project but not a static callable
    if "." in resolved:
        return ("external", resolved)
    return ("external", resolved) if resolved != dotted else (
        ("external", dotted) if rest == "" else None
    )


def _lookup_method(
    model: ProjectModel, cls_key: str, name: str
) -> Optional[str]:
    """Find *name* on the class or its resolvable bases (breadth-first,
    declaration order — a deterministic MRO approximation)."""
    queue: List[str] = [cls_key]
    seen: Set[str] = set()
    while queue:
        current = queue.pop(0)
        if current in seen:
            continue
        seen.add(current)
        cls = model.classes.get(current)
        if cls is None:
            continue
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            mod_name, symbol = model.split_module(base)
            if not mod_name or not symbol:
                continue
            base_key = f"{mod_name}.{symbol}"
            if base_key in model.classes:
                queue.append(base_key)
            else:
                canonical = model.canonical_symbol(mod_name, symbol)
                if canonical in model.classes:
                    queue.append(canonical)
    return None


# -------------------------------------------------------------- reachability


def reach_external(
    model: ProjectModel,
    external_names: Set[str],
    traverse: Callable[[FunctionInfo], bool],
) -> Dict[str, Optional[ReachResult]]:
    """For every function: the first *external* call in *external_names*
    reachable from it, with the (deterministic) chain of function keys
    walked — or ``None``.

    *traverse* gates which project callees the walk may descend into
    (e.g. sync-only for the event-loop blocking analysis).  Cycles are
    handled by treating in-progress functions as unreachable, which is
    sound for may-reach (the cycle's answer is found on the acyclic part).
    """
    memo: Dict[str, Optional[ReachResult]] = {}
    in_progress: Set[str] = set()

    def visit(key: str) -> Optional[ReachResult]:
        if key in memo:
            return memo[key]
        if key in in_progress:
            return None
        in_progress.add(key)
        func = model.functions[key]
        result: Optional[ReachResult] = None
        for name, _node in sorted(
            func.external_calls, key=lambda pair: pair[0]
        ):
            if name in external_names:
                result = (name, (key,))
                break
        if result is None:
            for callee, _node, _how in sorted(
                func.calls, key=lambda edge: edge[0]
            ):
                target = model.functions.get(callee)
                if target is None or not traverse(target):
                    continue
                sub = visit(callee)
                if sub is not None:
                    result = (sub[0], (key,) + sub[1])
                    break
        in_progress.discard(key)
        memo[key] = result
        return result

    for key in sorted(model.functions):
        visit(key)
    return memo
