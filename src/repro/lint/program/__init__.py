"""The whole-program analysis layer of :mod:`repro.lint`.

The per-file rules see one parsed file at a time; this package sees all of
them at once.  :func:`~repro.lint.program.model.build_project_model` turns
the engine's parsed :class:`~repro.lint.engine.FileContext`\\ s into a
:class:`~repro.lint.program.model.ProjectModel` — module/import
resolution, symbol tables, message-kind flows, a conservative call graph
with an async-context map — and the program rules in
:mod:`repro.lint.program.rules` run over that model.

Determinism contract: the model builder iterates modules, functions, and
graph edges in sorted order, so the program pass (like the per-file pass)
produces byte-identical output across runs over the same tree.
"""

from .model import ProjectModel, build_project_model

__all__ = ["ProjectModel", "build_project_model"]
