"""The :class:`Finding` record every rule emits.

A finding pins one defect to one source location.  Findings are plain data:
the engine collects them, the suppression layer filters them, and the
reporters (:mod:`repro.lint.reporting`) render them as text, JSON, or
SARIF.  Rules never print — they only yield findings — so the same rule
code serves the CLI, the CI job, and the test suite identically.

Two classification fields ride along with the location:

* ``severity`` — ``"error"`` (a contract violation; fails the build) or
  ``"warning"`` (suspicious but survivable, e.g. a dead protocol arm);
  both count toward the exit code, but reporters and the SARIF mapping
  distinguish them;
* ``origin`` — rule provenance: ``"per-file"`` for the single-file
  visitors, ``"program"`` for the whole-program pass, so a reader of any
  report can tell which analysis produced a finding (interprocedural
  findings need different suppression judgement, see docs/lint.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Finding", "SEVERITIES"]

#: The allowed ``severity`` values, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports read top-to-bottom per
    file regardless of which rule found what first; the trailing fields
    participate only as deterministic tie-breakers.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = field(default="error")
    origin: str = field(default="per-file")

    def render(self) -> str:
        """The canonical one-line textual form (compiler-style)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}: {self.severity}: {self.message}"
        )

    def to_json(self) -> Dict[str, Any]:
        """A JSON-safe dict (used by the ``--format json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "origin": self.origin,
        }

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline mechanism.

        Deliberately excludes ``line``/``col`` so an accepted finding
        survives unrelated edits above it; path + rule + message is stable
        because messages are deterministic functions of the code they
        describe.
        """
        path = self.path.replace("\\", "/")
        return f"{path}::{self.rule}::{self.message}"
