"""The :class:`Finding` record every rule emits.

A finding pins one defect to one source location.  Findings are plain data:
the engine collects them, the suppression layer filters them, and the
reporters (:mod:`repro.lint.reporting`) render them as text or JSON.  Rules
never print — they only yield findings — so the same rule code serves the
CLI, the CI job, and the test suite identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports read top-to-bottom per
    file regardless of which rule found what first.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical one-line textual form (compiler-style)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> Dict[str, Any]:
        """A JSON-safe dict (used by the ``--format json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
