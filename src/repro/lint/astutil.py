"""Small AST helpers shared by the rule visitors."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["dotted_name", "call_func_name", "is_call_to"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain as ``a.b.c``, or ``None``.

    ``time.time`` -> "time.time"; ``self.world.network.send`` ->
    "self.world.network.send"; anything with a non-name base (a call, a
    subscript) keeps the resolvable tail: ``foo().bar`` -> None-based, so
    returns ``None`` — rules that care about tails use
    :func:`call_func_name` instead.
    """
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_func_name(call: ast.Call) -> Optional[str]:
    """The final name of a call target: ``x.y.send(...)`` -> "send",
    ``sorted(...)`` -> "sorted", ``foo()()`` -> ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def is_call_to(node: ast.AST, *names: str) -> bool:
    """Whether *node* is a call whose target's final name is in *names*."""
    return isinstance(node, ast.Call) and call_func_name(node) in names
