"""Small AST helpers shared by the rule visitors.

Besides the name-rendering helpers, this module owns the one piece of
resolution machinery both the per-file rules and the whole-program pass
need: :class:`ImportMap`, which maps every locally bound import alias back
to the canonical dotted path it names.  ``from repro.obs import events as
ev`` binds ``ev`` -> ``repro.obs.events``, so a rule matching on receiver
names can judge ``ev.record(...)`` exactly as it judges
``repro.obs.events.record(...)`` — closing the aliased-import loophole the
purely syntactic matchers had.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = [
    "dotted_name",
    "call_func_name",
    "is_call_to",
    "ImportMap",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain as ``a.b.c``, or ``None``.

    ``time.time`` -> "time.time"; ``self.world.network.send`` ->
    "self.world.network.send"; anything with a non-name base (a call, a
    subscript) keeps the resolvable tail: ``foo().bar`` -> None-based, so
    returns ``None`` — rules that care about tails use
    :func:`call_func_name` instead.
    """
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_func_name(call: ast.Call) -> Optional[str]:
    """The final name of a call target: ``x.y.send(...)`` -> "send",
    ``sorted(...)`` -> "sorted", ``foo()()`` -> ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def is_call_to(node: ast.AST, *names: str) -> bool:
    """Whether *node* is a call whose target's final name is in *names*."""
    return isinstance(node, ast.Call) and call_func_name(node) in names


class ImportMap:
    """Alias -> canonical dotted path for every import bound in one module.

    The map is built from *every* ``import`` / ``from ... import``
    statement in the tree (function-local imports included — this codebase
    uses them to break cycles), so resolution sees the same bindings the
    interpreter would.  Relative imports are anchored on *package*, the
    dotted package the module lives in ("" when unknown, in which case
    relative targets stay unresolved rather than guessing).
    """

    def __init__(self, tree: ast.AST, package: str = "") -> None:
        self.package = package
        #: locally bound name -> canonical dotted path.
        self.aliases: Dict[str, str] = {}
        #: modules star-imported (``from m import *``), resolved.
        self.star_imports: List[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; attribute chains
                        # starting at ``a`` already spell the real path.
                        root = alias.name.split(".", 1)[0]
                        self.aliases.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        self.star_imports.append(base)
                        continue
                    bound = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.aliases[bound] = target

    def _resolve_base(self, node: ast.ImportFrom) -> Optional[str]:
        """The absolute dotted module a ``from``-import pulls from."""
        if node.level == 0:
            return node.module
        if not self.package:
            return None  # relative import with no package anchor
        parts = self.package.split(".")
        # level 1 = the module's own package; each extra level climbs one.
        climb = node.level - 1
        if climb > len(parts):
            return None
        base_parts = parts[: len(parts) - climb]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Rewrite the leading alias of *dotted* to its canonical path.

        ``ev.record`` -> ``repro.obs.events.record`` under ``from
        repro.obs import events as ev``; names with no import binding come
        back unchanged (they may be locals or builtins — the caller
        decides).
        """
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted path of a call's target, or ``None``."""
        return self.resolve(dotted_name(call.func))
