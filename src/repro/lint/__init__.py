"""repro.lint — AST-based determinism & protocol-safety analyzer.

The paper's guarantees are only *checkable* in this repro because runs are
bit-for-bit deterministic; this package enforces the coding contracts that
keep them so, statically, on every PR:

* **determinism rules** for the simulator-path packages (no wall-clock
  reads, no global randomness, no hash-order iteration into sends, no
  id()-based ordering) — :mod:`repro.lint.rules.determinism`;
* **asyncio-hazard rules** for :mod:`repro.net` (no blocking calls in
  coroutines, no unawaited coroutines, no dropped task references, no
  swallowed exceptions) — :mod:`repro.lint.rules.asyncio_hazards`;
* a **payload-encodability rule** type-checking ``send(...)`` payloads
  against the wire codec — :mod:`repro.lint.rules.payload`;
* a **trace-schema rule** checking every ``trace.record(...)`` /
  ``self.trace(...)`` call site against the :mod:`repro.obs` event-schema
  registry — :mod:`repro.lint.rules.trace_schema`;
* the **whole-program pass** — :mod:`repro.lint.program` builds a project
  model (import resolution, call graph, protocol flows) from all parsed
  files and runs the interprocedural rules over it: async-blocking-reach,
  ambient-state-reach, protocol-flow, registry-flow, unreachable-public.

Run it as ``python -m repro lint`` or ``repro-lint``; suppress a single
finding with ``# lint: ignore[rule-id]``.  See ``docs/lint.md``.
"""

from .engine import FileContext, LintResult, lint_paths
from .findings import Finding
from .registry import (
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
    program_rule,
    resolve_rules,
    rule,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "ProgramRule",
    "Rule",
    "all_program_rules",
    "all_rules",
    "lint_paths",
    "program_rule",
    "resolve_rules",
    "rule",
]
