"""Rule base class and the rule registry.

A rule is a small object with an ``id``, a one-line ``summary``, a package
``scope``, and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.  Rules register themselves
with the :func:`rule` class decorator at import time;
:mod:`repro.lint.rules` imports every rule module, so importing that package
populates the registry.

Scoping: each rule names the ``repro`` sub-packages it guards (e.g. the
determinism rules guard the simulation-path packages but not
:mod:`repro.net`, whose whole point is wall-clock time).  Files that are
*not* part of the ``repro`` package — the fixture corpus, user code — get
every rule: outside the library we cannot know which contract a file is
under, and over-reporting beats silence.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from ..errors import ConfigurationError
from .findings import Finding

__all__ = ["Rule", "rule", "all_rules", "resolve_rules"]


class Rule:
    """Base class for every lint rule (see module docstring)."""

    #: Stable kebab-case identifier, used in reports and suppressions.
    id: str = ""
    #: One-line description shown by ``repro lint --rules``.
    summary: str = ""
    #: ``repro`` package prefixes this rule guards; empty = every file.
    scope: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        """Whether this rule guards *module* (dotted name, "" if unknown)."""
        if not self.scope or not module:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, ctx: "FileContext") -> Iterator[Finding]:  # noqa: F821
        """Yield findings for one parsed file."""
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def finding(self, ctx, node: ast.AST, message: str) -> Finding:
        """Build a finding for *node* attributed to this rule."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


#: id -> rule class, in registration order.
_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: register *cls* under its ``id``."""
    if not cls.id:
        raise ConfigurationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    from . import rules  # noqa: F401 - importing registers the rules

    return [cls() for cls in _REGISTRY.values()]


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Unknown rule ids are configuration errors (exit code 2), not silent
    no-ops — a typo in a CI invocation must fail loudly.
    """
    rules = all_rules()
    known = {r.id for r in rules}
    for name in list(select or []) + list(ignore or []):
        if name not in known:
            raise ConfigurationError(
                f"unknown lint rule {name!r}; known rules: "
                + ", ".join(sorted(known))
            )
    if select:
        rules = [r for r in rules if r.id in set(select)]
    if ignore:
        rules = [r for r in rules if r.id not in set(ignore)]
    return rules


def iter_rule_docs() -> Iterable[Tuple[str, str, Tuple[str, ...]]]:
    """(id, summary, scope) triples for ``--rules`` listings."""
    for r in all_rules():
        yield r.id, r.summary, r.scope
