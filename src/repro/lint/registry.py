"""Rule base classes and the two rule registries.

A **per-file rule** is a small object with an ``id``, a one-line
``summary``, a package ``scope``, and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects for one parsed file.  A
**program rule** has the same surface but its ``check(model)`` runs once
over the whole-program :class:`~repro.lint.program.model.ProjectModel` —
call graph, symbol tables, protocol flows — after every file is parsed.

Rules register themselves with the :func:`rule` / :func:`program_rule`
class decorators at import time; :mod:`repro.lint.rules` and
:mod:`repro.lint.program.rules` import every rule module, so importing
those packages populates the registries.

Scoping: each rule names the ``repro`` sub-packages it guards (e.g. the
determinism rules guard the simulation-path packages but not
:mod:`repro.net`, whose whole point is wall-clock time).  Files that are
*not* part of the ``repro`` package — the fixture corpus, user code — get
every rule: outside the library we cannot know which contract a file is
under, and over-reporting beats silence.
"""

from __future__ import annotations

import ast
from typing import (
    Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type,
)

from ..errors import ConfigurationError
from .findings import Finding

__all__ = [
    "Rule",
    "ProgramRule",
    "rule",
    "program_rule",
    "all_rules",
    "all_program_rules",
    "resolve_rules",
    "resolve_program_rules",
]


class _RuleBase:
    """Shared identity/scoping surface of both rule kinds."""

    #: Stable kebab-case identifier, used in reports and suppressions.
    id: str = ""
    #: One-line description shown by ``repro lint --rules``.
    summary: str = ""
    #: ``repro`` package prefixes this rule guards; empty = every file.
    scope: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        """Whether this rule guards *module* (dotted name, "" if unknown)."""
        if not self.scope or not module:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )


class Rule(_RuleBase):
    """Base class for every per-file lint rule (see module docstring)."""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:  # noqa: F821
        """Yield findings for one parsed file."""
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def finding(
        self, ctx, node: ast.AST, message: str, severity: str = "error"
    ) -> Finding:
        """Build a finding for *node* attributed to this rule."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=severity,
            origin="per-file",
        )


class ProgramRule(_RuleBase):
    """Base class for whole-program rules.

    ``check(model)`` receives the fully built
    :class:`~repro.lint.program.model.ProjectModel` and yields findings
    anchored in the model's *target* modules (reference-corpus modules —
    tests pulled in only so cross-references resolve — must never receive
    findings; use :meth:`finding` with a target module's info and the
    invariant holds by construction).
    """

    def check(self, model) -> Iterator[Finding]:  # noqa: ANN001
        """Yield findings for the whole program."""
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def finding(
        self, module, node: ast.AST, message: str, severity: str = "error"
    ) -> Finding:
        """Build a finding for *node* inside *module* (a ModuleInfo)."""
        return Finding(
            path=module.ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=severity,
            origin="program",
        )


#: id -> rule class, in registration order.
_REGISTRY: Dict[str, Type[Rule]] = {}
_PROGRAM_REGISTRY: Dict[str, Type[ProgramRule]] = {}


def _register(registry: Dict[str, type], cls: type) -> type:
    if not cls.id:
        raise ConfigurationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY or cls.id in _PROGRAM_REGISTRY:
        raise ConfigurationError(f"duplicate rule id {cls.id!r}")
    registry[cls.id] = cls
    return cls


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: register a per-file rule under its ``id``."""
    return _register(_REGISTRY, cls)


def program_rule(cls: Type[ProgramRule]) -> Type[ProgramRule]:
    """Class decorator: register a program rule under its ``id``."""
    return _register(_PROGRAM_REGISTRY, cls)


def _import_rule_modules() -> None:
    from . import rules  # noqa: F401 - importing registers per-file rules
    from .program import rules as program_rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Fresh instances of every per-file rule, in registration order."""
    _import_rule_modules()
    return [cls() for cls in _REGISTRY.values()]


def all_program_rules() -> List[ProgramRule]:
    """Fresh instances of every program rule, in registration order."""
    _import_rule_modules()
    return [cls() for cls in _PROGRAM_REGISTRY.values()]


def _validate_names(
    names: Iterable[str], known: Iterable[str]
) -> None:
    known = set(known)
    for name in names:
        if name not in known:
            raise ConfigurationError(
                f"unknown lint rule {name!r}; known rules: "
                + ", ".join(sorted(known))
            )


def _known_ids() -> List[str]:
    _import_rule_modules()
    return list(_REGISTRY) + list(_PROGRAM_REGISTRY)


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The active per-file rule set after ``--select``/``--ignore``.

    Unknown rule ids are configuration errors (exit code 2), not silent
    no-ops — a typo in a CI invocation must fail loudly.  Program-rule ids
    are valid in both options (they filter the program pass, see
    :func:`resolve_program_rules`).
    """
    rules = all_rules()
    _validate_names(list(select or []) + list(ignore or []), _known_ids())
    if select:
        rules = [r for r in rules if r.id in set(select)]
    if ignore:
        rules = [r for r in rules if r.id not in set(ignore)]
    return rules


def resolve_program_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[ProgramRule]:
    """The active program rule set after ``--select``/``--ignore``."""
    rules = all_program_rules()
    _validate_names(list(select or []) + list(ignore or []), _known_ids())
    if select:
        rules = [r for r in rules if r.id in set(select)]
    if ignore:
        rules = [r for r in rules if r.id not in set(ignore)]
    return rules


def iter_rule_docs() -> Iterable[Tuple[str, str, Tuple[str, ...], str]]:
    """(id, summary, scope, pass) tuples for ``--rules`` listings."""
    for r in all_rules():
        yield r.id, r.summary, r.scope, "per-file"
    for r in all_program_rules():
        yield r.id, r.summary, r.scope, "program"
