"""The committed-findings baseline: accepted debt that must not grow.

A baseline is a JSON file of finding fingerprints
(:meth:`~repro.lint.findings.Finding.fingerprint` — path + rule +
message, deliberately line-independent).  Running the linter with
``--baseline lint-baseline.json`` filters out exactly those findings, so
pre-existing accepted ones (benchmarks *measure* wall time; examples block
on purpose) don't fail the build while anything new still does.
``--write-baseline`` regenerates the file from the current findings —
the diff of the committed baseline is then reviewable debt, one line per
accepted finding.

The format is versioned and sorted so the file is diff-stable: two runs
over the same tree write byte-identical baselines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from ..errors import ConfigurationError
from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Set[str]:
    """The fingerprint set stored at *path*.

    An unreadable or malformed file is a configuration error (exit 2):
    silently linting without the baseline would fail CI on every accepted
    finding, which is noisier than failing fast.
    """
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read baseline {path}: {exc}") from exc
    if (
        not isinstance(raw, dict)
        or raw.get("version") != BASELINE_VERSION
        or not isinstance(raw.get("fingerprints"), list)
    ):
        raise ConfigurationError(
            f"baseline {path} is not a version-{BASELINE_VERSION} "
            "lint baseline (expected {version, fingerprints})"
        )
    return {str(fp) for fp in raw["fingerprints"]}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Serialize *findings* as a baseline at *path* (sorted, stable)."""
    record = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({f.fingerprint() for f in findings}),
    }
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], fingerprints: Set[str]
) -> Tuple[List[Finding], int]:
    """Split *findings* into (kept, number suppressed by the baseline)."""
    kept = [f for f in findings if f.fingerprint() not in fingerprints]
    return kept, len(findings) - len(kept)
