"""Metrics-registry rule: metric updates must match the metric registry.

The metric-schema registry (:data:`repro.obs.metrics.METRIC_SCHEMAS`) is
the single source of truth for what each metric is called and which
labels it carries.  :class:`~repro.obs.metrics.MetricsRegistry` enforces
that contract at run time — an unknown name or a wrong label set raises —
but a record site on a rarely taken branch (a drop path, an error
handler) only blows up when that branch finally executes, which in a
failure-detector codebase is exactly the moment you need the counter.
This rule moves the failure to the lint step: every statically
resolvable ``<...>metrics.inc/set/observe(...)`` call site is checked
against the registry.

The check is one-sided and best-effort, like the trace-schema rule: only
**literal string** metric names are judged (helpers forwarding a name
variable are unknowable statically and covered at run time); a
``**splat`` in the labels suppresses the label-set check but not the
unknown-name check.  The ``amount``/``value`` keywords are the update
arguments, not labels, and are excluded before comparing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ...obs.metrics import METRIC_SCHEMAS
from ..astutil import ImportMap, dotted_name
from ..findings import Finding
from ..registry import Rule, rule

__all__ = ["MetricsRegistryRule"]

#: The update methods whose first positional argument is a metric name.
_METHODS = ("inc", "set", "observe")

#: Keyword arguments that configure the update itself, never labels.
_RESERVED = frozenset({"amount", "value"})


def _name_argument(
    call: ast.Call, imports: Optional[ImportMap] = None
) -> Optional[ast.expr]:
    """The metric-name argument of a recognized update, or ``None``.

    Recognized shapes: ``<...>metrics.inc/set/observe(name, ...)`` — any
    attribute chain whose receiver's final name mentions "metrics"
    (``self.metrics``, ``host.metrics``, ``registry.metrics``, bare
    ``metrics``) or whose *resolved* import alias lives under
    ``repro.obs`` (``from repro.obs import metrics as mt; mt...`` — pass
    *imports* to enable this); the name is the first positional argument.
    """
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _METHODS:
        return None
    receiver = dotted_name(func.value)
    if receiver is None:
        return None
    recognized = "metrics" in receiver.rsplit(".", 1)[-1]
    if not recognized and imports is not None:
        canonical = imports.resolve(receiver) or ""
        recognized = canonical == "repro.obs" or canonical.startswith(
            "repro.obs."
        )
    if not recognized:
        return None
    if not call.args or isinstance(call.args[0], ast.Starred):
        return None
    return call.args[0]


@rule
class MetricsRegistryRule(Rule):
    """Statically check metric updates against the metric-schema registry."""

    id = "metrics-registry"
    summary = (
        "metrics.inc/set/observe(...) calls must use registered metric "
        "names and supply exactly each metric's declared labels"
    )
    scope = ()  # the registry contract holds everywhere metrics are updated

    def check(self, ctx) -> Iterator[Finding]:
        imports = ImportMap(
            ctx.tree, package=ctx.module.rpartition(".")[0]
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name_node = _name_argument(node, imports)
            if name_node is None:
                continue
            if not (
                isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
            ):
                continue  # dynamic name: checked at run time, not here
            name = name_node.value
            schema = METRIC_SCHEMAS.get(name)
            if schema is None:
                yield self.finding(
                    ctx, name_node,
                    f"unknown metric {name!r}; register it with "
                    "repro.obs.register_metric or fix the typo (known "
                    "metrics: " + ", ".join(sorted(METRIC_SCHEMAS)) + ")",
                )
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue  # **splat labels: keys unknowable statically
            supplied = sorted(
                kw.arg for kw in node.keywords
                if kw.arg is not None and kw.arg not in _RESERVED
            )
            declared = sorted(schema.labels)
            if supplied != declared:
                expected = (
                    "{" + ", ".join(declared) + "}" if declared else "none"
                )
                got = "{" + ", ".join(supplied) + "}" if supplied else "none"
                yield self.finding(
                    ctx, node,
                    f"metric {name!r} declares labels {expected} but this "
                    f"update supplies {got}",
                )
