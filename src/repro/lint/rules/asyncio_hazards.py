"""Asyncio-hazard rules for the live runtime (:mod:`repro.net`).

The runtime hosts the same protocol stacks as the simulator on a real event
loop, so the classic asyncio footguns translate directly into protocol
failures: a blocking call in a coroutine stalls every node sharing the
loop (heartbeats stop, detectors false-suspect the whole cluster); an
unawaited coroutine silently does nothing; a task created without keeping a
reference can be garbage-collected mid-flight and its exception vanishes;
a broad ``except Exception: pass`` swallows transport errors that the
fault-injection tests rely on surfacing as counters.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..astutil import call_func_name, dotted_name
from ..findings import Finding
from ..registry import Rule, rule

__all__ = [
    "BlockingCallRule",
    "UnawaitedCoroutineRule",
    "DroppedTaskRule",
    "SwallowedExceptionRule",
]

# Every package hosting event-loop code: the transports, the in-process
# cluster runtime, the multi-process node/launcher pair, the KV
# service (frontend + client) with its load generator, the scenario
# runner (async fault-schedule driver), and the live telemetry plane
# (streaming shipper + collector).  The trace-schema and
# metrics-registry rules are already global (scope = ()), so the new
# obs modules fall under them automatically.
NET_SCOPE = (
    "repro.net", "repro.cluster", "repro.proc", "repro.svc", "repro.load",
    "repro.scenario", "repro.obs.live", "repro.obs.spans",
)

_BLOCKING_CALLS = {
    "time.sleep",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "socket.gethostbyaddr",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "os.system",
    "os.waitpid",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.request",
}
_BLOCKING_NAMES = {"input"}

#: asyncio coroutine functions that are no-ops unless awaited.
_KNOWN_COROUTINES = {
    "asyncio.sleep",
    "asyncio.wait_for",
    "asyncio.gather",
    "asyncio.wait",
    "asyncio.open_connection",
    "asyncio.start_server",
}

_TASK_SPAWNERS = ("create_task", "ensure_future")


def _async_contexts(tree: ast.Module):
    """Yield every ``async def`` in *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _walk_async_body(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk *func*'s body without descending into nested (sync) defs,
    whose bodies run outside the coroutine."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@rule
class BlockingCallRule(Rule):
    """Ban synchronous blocking calls inside ``async def``."""

    id = "blocking-call"
    summary = (
        "no time.sleep / sync socket / subprocess calls inside async def; "
        "they stall every node sharing the event loop"
    )
    scope = NET_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        for func in _async_contexts(ctx.tree):
            for node in _walk_async_body(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name in _BLOCKING_CALLS or (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _BLOCKING_NAMES
                ):
                    label = name or call_func_name(node)
                    yield self.finding(
                        ctx, node,
                        f"blocking call {label}() inside async def "
                        f"{func.name!r} stalls the whole event loop; use "
                        "the asyncio equivalent (e.g. await asyncio.sleep)",
                    )


@rule
class UnawaitedCoroutineRule(Rule):
    """Flag coroutine calls whose result is discarded without await."""

    id = "unawaited-coroutine"
    summary = (
        "a coroutine call used as a bare statement never runs; await it "
        "or hand it to create_task"
    )
    scope = NET_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        # Receiver-aware matching: a bare `close()` name collides with sync
        # methods of other objects (StreamWriter.close, Server.close), so
        # only `self.X()` inside X's own class, module-level `X()`, and the
        # known asyncio coroutines are confident matches.
        module_async: Set[str] = {
            f.name for f in ctx.tree.body if isinstance(f, ast.AsyncFunctionDef)
        }
        class_async = {
            cls: {
                f.name for f in cls.body if isinstance(f, ast.AsyncFunctionDef)
            }
            for cls in ast.walk(ctx.tree)
            if isinstance(cls, ast.ClassDef)
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = dotted_name(call.func)
            tail = call_func_name(call)
            if name in _KNOWN_COROUTINES:
                matched = True
            elif isinstance(call.func, ast.Name):
                matched = tail in module_async
            elif name is not None and name.startswith("self."):
                cls = self._enclosing_class(ctx, node)
                matched = (
                    name.count(".") == 1
                    and cls is not None
                    and tail in class_async.get(cls, set())
                )
            else:
                matched = False
            if matched:
                yield self.finding(
                    ctx, call,
                    f"coroutine {tail}(...) is neither awaited nor "
                    "scheduled; the call builds a coroutine object and "
                    "drops it — nothing runs",
                )

    @staticmethod
    def _enclosing_class(ctx, node: ast.AST):
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None


@rule
class DroppedTaskRule(Rule):
    """Flag fire-and-forget tasks created without keeping a reference."""

    id = "dropped-task"
    summary = (
        "create_task/ensure_future without storing the returned task; the "
        "event loop holds only a weak reference, so the task can be "
        "garbage-collected mid-flight and its exception lost"
    )
    scope = NET_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if isinstance(call, ast.Await):
                continue
            if not isinstance(call, ast.Call):
                continue
            if call_func_name(call) in _TASK_SPAWNERS:
                yield self.finding(
                    ctx, call,
                    f"{call_func_name(call)}(...) result is dropped; keep "
                    "the task reference (and reap its exception) or the "
                    "task may be collected mid-flight",
                )


@rule
class SwallowedExceptionRule(Rule):
    """Ban bare/broad exception handlers that silently discard errors."""

    id = "swallowed-exception"
    summary = (
        "no bare except / except Exception with a pass-only body; name "
        "the exceptions or record the failure (counter, trace, log)"
    )
    scope = NET_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._body_discards(node.body):
                caught = "bare except" if node.type is None else (
                    "except " + (dotted_name(node.type) or "Exception")
                )
                yield self.finding(
                    ctx, node,
                    f"{caught} with a pass-only body swallows transport "
                    "errors; catch the specific exceptions or record the "
                    "failure before continuing",
                )

    @staticmethod
    def _is_broad(handler_type) -> bool:
        if handler_type is None:
            return True  # bare except:
        names = (
            handler_type.elts
            if isinstance(handler_type, ast.Tuple)
            else [handler_type]
        )
        for name in names:
            if dotted_name(name) in ("Exception", "BaseException"):
                return True
        return False

    @staticmethod
    def _body_discards(body) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or ellipsis
            return False
        return True
