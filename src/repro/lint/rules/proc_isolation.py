"""Process-management isolation: spawning and killing stays in
:mod:`repro.proc`.

The multi-process runtime owns the crash model: :class:`ProcessCluster`
spawns ``repro node`` subprocesses and delivers ``SIGKILL`` on schedule,
and the postmortem pipeline depends on the launcher being the *only*
place that does — it records every kill's wall time so the merged trace
gets its synthetic ``crash`` events.  A ``subprocess`` call or an
``os.kill`` anywhere else is either an untracked side channel into the
failure pattern (the checkers would judge the run against a wrong
correct-set) or accidental process management that belongs behind the
launcher API.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, rule

__all__ = ["ProcIsolationRule"]

#: The one package allowed to manage OS processes.
_ALLOWED_PREFIX = "repro.proc"

_KILL_CALLS = {"os.kill", "os.killpg"}


@rule
class ProcIsolationRule(Rule):
    """Flag direct ``subprocess`` / ``os.kill`` use outside ``repro.proc``."""

    id = "proc-isolation"
    summary = (
        "no direct subprocess spawning or os.kill outside repro.proc; the "
        "launcher must stay the single source of truth for the failure "
        "pattern"
    )
    scope = ()  # everywhere — the exemption below is the rule's point

    def check(self, ctx) -> Iterator[Finding]:
        module = ctx.module
        if module == _ALLOWED_PREFIX or module.startswith(
            _ALLOWED_PREFIX + "."
        ):
            return
        # Names imported from subprocess (`from subprocess import Popen`)
        # so bare `Popen(...)` calls are caught too.
        imported: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "subprocess":
                imported.update(
                    alias.asname or alias.name for alias in node.names
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _KILL_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{name}() outside repro.proc bypasses the launcher's "
                    "kill bookkeeping (the postmortem trace would miss the "
                    "crash); use ProcessCluster.crash instead",
                )
            elif (
                name is not None and name.startswith("subprocess.")
            ) or (
                isinstance(node.func, ast.Name) and node.func.id in imported
            ):
                label = name or node.func.id  # type: ignore[union-attr]
                yield self.finding(
                    ctx, node,
                    f"{label}() spawns processes outside repro.proc; "
                    "process management belongs behind the ProcessCluster "
                    "launcher API",
                )
