"""Trace-schema rule: event emissions must match the obs registry.

The event-schema registry (:data:`repro.obs.events.EVENT_SCHEMAS`) is the
single source of truth for what each trace event kind carries.  The
analysis layer navigates payloads by key (``ev.get("suspected")``), so an
emitter recording a typo'd kind or forgetting a required key produces a
trace that *looks* fine but silently falls out of every property check.
This rule moves that failure to the lint step: every statically resolvable
``trace.record(...)`` / ``self.trace(...)`` call site is checked against
the registry, the same contract ``repro trace check`` enforces on recorded
JSONL streams at run time.

The check is one-sided and best-effort, like the payload rule: only
**literal string** kinds are judged (the ``Component.trace`` helper and
the sinks themselves forward a kind variable — unknowable statically, and
covered at run time); a ``**splat`` in the payload suppresses the
missing-key check but not the unknown-kind check.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ...obs.events import EVENT_SCHEMAS
from ..astutil import ImportMap, dotted_name
from ..findings import Finding
from ..registry import Rule, rule

__all__ = ["TraceSchemaRule"]


def _kind_argument(
    call: ast.Call, imports: Optional[ImportMap] = None
) -> Optional[ast.expr]:
    """The kind argument of a recognized trace emission, or ``None``.

    Recognized shapes:

    * ``<...>trace.record(time, kind, pid, **data)`` / ``_trace.record``
      — any attribute chain whose receiver's final name mentions "trace"
      (``self.trace``, ``world.trace``, ``self._trace``); kind is the
      second positional argument;
    * the same ``.record(...)`` on a receiver whose *resolved* import
      alias lives under ``repro.obs`` (``from repro.obs import events as
      ev; ev.record(...)``) — pass *imports* to enable this;
    * ``self.trace(kind, **data)`` — the Component helper; kind is the
      first positional argument.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "record":
        receiver = dotted_name(func.value)
        if receiver is None:
            return None
        recognized = "trace" in receiver.rsplit(".", 1)[-1]
        if not recognized and imports is not None:
            canonical = imports.resolve(receiver) or ""
            recognized = canonical == "repro.obs" or canonical.startswith(
                "repro.obs."
            )
        if not recognized:
            return None
        if len(call.args) > 1 and not any(
            isinstance(a, ast.Starred) for a in call.args[:2]
        ):
            return call.args[1]
        return None
    if func.attr == "trace" and isinstance(func.value, ast.Name):
        if func.value.id == "self" and call.args:
            first = call.args[0]
            return None if isinstance(first, ast.Starred) else first
    return None


@rule
class TraceSchemaRule(Rule):
    """Statically check trace emissions against the event-schema registry."""

    id = "trace-schema"
    summary = (
        "trace.record(...)/self.trace(...) calls must use registered event "
        "kinds and supply each kind's required payload keys"
    )
    scope = ()  # the schema contract holds everywhere events are emitted

    def check(self, ctx) -> Iterator[Finding]:
        imports = ImportMap(
            ctx.tree, package=ctx.module.rpartition(".")[0]
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind_node = _kind_argument(node, imports)
            if kind_node is None:
                continue
            if not (
                isinstance(kind_node, ast.Constant)
                and isinstance(kind_node.value, str)
            ):
                continue  # dynamic kind: checked at run time, not here
            kind = kind_node.value
            schema = EVENT_SCHEMAS.get(kind)
            if schema is None:
                yield self.finding(
                    ctx, kind_node,
                    f"unknown trace event kind {kind!r}; register it with "
                    "repro.obs.register_event_kind or fix the typo (known "
                    "kinds: " + ", ".join(sorted(EVENT_SCHEMAS)) + ")",
                )
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue  # **splat payload: keys unknowable statically
            supplied = {kw.arg for kw in node.keywords}
            missing: List[str] = [
                key for key in schema.required if key not in supplied
            ]
            if missing:
                yield self.finding(
                    ctx, node,
                    f"trace event {kind!r} is missing required payload "
                    "key(s): " + ", ".join(missing),
                )
