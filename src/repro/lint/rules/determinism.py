"""Determinism rules for the simulation-path packages.

The repo's correctness story rests on bit-for-bit deterministic runs: the
property checkers compare traces, the sim<->net parity tests compare whole
executions, and the paper's claims (strong completeness of ◇C, the Fig. 2
◇C→◇P transformation, one-round-after-stability consensus) are asserted on
replayed schedules.  Anything that injects ambient state — wall-clock time,
the process-global RNG, memory addresses, hash-order iteration — silently
breaks replay.  These rules ban the known offenders from the packages whose
code runs (also) under the simulator:

``repro.sim``, ``repro.fd``, ``repro.consensus``, ``repro.transform``,
``repro.broadcast``, ``repro.workloads``.

:mod:`repro.net` is deliberately out of scope for the clock rules (hosting
stacks on wall time is its job) but shares the RNG and ordering rules via
the fixture-tested conventions in :mod:`repro.lint.rules.asyncio_hazards`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..astutil import call_func_name, dotted_name
from ..findings import Finding
from ..registry import Rule, rule

__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "UnorderedIterationRule",
    "IdOrderingRule",
]

#: Packages whose code must stay deterministic under the simulator.
#: ``repro.scenario`` is here for the generator: same seed must mean a
#: byte-identical schedule, so wall clocks and the global rng are out.
SIM_SCOPE = (
    "repro.sim",
    "repro.fd",
    "repro.consensus",
    "repro.transform",
    "repro.broadcast",
    "repro.workloads",
    "repro.scenario",
)

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

_GLOBAL_RANDOM_CALLS = {
    f"random.{fn}"
    for fn in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "vonmisesvariate", "paretovariate",
        "lognormvariate", "weibullvariate", "getrandbits", "randbytes",
        "seed", "binomialvariate",
    )
}
_ENTROPY_CALLS = {
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.choice",
    "secrets.randbelow",
    "secrets.randbits",
    "random.SystemRandom",
}


@rule
class WallClockRule(Rule):
    """Ban ambient clocks from simulator-path code."""

    id = "wall-clock"
    summary = (
        "no wall-clock reads (time.time, datetime.now, ...) in sim-path "
        "code; use self.now / the injected scheduler clock"
    )
    scope = SIM_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read {name}() breaks deterministic replay; "
                    "read time via self.now / world.scheduler.now",
                )


@rule
class GlobalRandomRule(Rule):
    """Ban the process-global / OS-entropy randomness sources."""

    id = "global-random"
    summary = (
        "no module-level random/uuid4/os.urandom in sim-path code; draw "
        "from the injected random.Random stream (self.rng)"
    )
    scope = SIM_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _GLOBAL_RANDOM_CALLS or name in _ENTROPY_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{name}() draws from unseeded global/OS entropy; use "
                    "the injected random.Random stream (self.rng / "
                    "world.rng.stream(...))",
                )
            elif name == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "random.Random() with no seed is seeded from OS "
                    "entropy; pass an explicit seed derived from the run's "
                    "master seed",
                )


#: Calls that put an iteration's order on the wire or into the schedule.
_ORDER_SINKS = {
    "send", "send_self", "broadcast", "rbroadcast", "urbroadcast",
    "schedule", "schedule_at", "set_timer", "periodically", "spawn",
    "record", "trace", "propose", "submit",
}
#: Call targets whose result does not depend on argument order.
_ORDER_INSENSITIVE = {
    "sorted", "set", "frozenset", "sum", "len", "min", "max", "any", "all",
    "Counter",
}


def _known_set_attrs(tree: ast.Module) -> Set[str]:
    """Names of ``self.<attr>`` ever assigned a set-typed value anywhere in
    the module (cheap class-attribute type inference)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not _is_set_literal(value):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                names.add(target.attr)
    return names


def _is_set_literal(node: ast.AST) -> bool:
    """Syntactically certain set constructors (no dataflow needed)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _SetTracker:
    """Per-file set-typed expression classifier (purely syntactic plus the
    two cheap inferences that pay for themselves: ``self.<attr>`` assigned a
    set anywhere in the file, and local names assigned a set in the same
    function)."""

    def __init__(self, tree: ast.Module) -> None:
        self.set_attrs = _known_set_attrs(tree)
        self.local_sets: Set[str] = set()

    def reset_locals(self) -> None:
        self.local_sets = set()

    def note_assignment(self, node: ast.Assign) -> None:
        if not _is_set_literal(node.value) and not self.is_set_expr(node.value):
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.local_sets.add(target.id)

    def is_set_expr(self, node: ast.AST) -> bool:
        if _is_set_literal(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.local_sets
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.set_attrs
        if isinstance(node, ast.Call):
            name = call_func_name(node)
            if name == "keys" and isinstance(node.func, ast.Attribute):
                return True  # dict.keys(): insertion order = arrival order
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


@rule
class UnorderedIterationRule(Rule):
    """Ban hash-ordered iteration from feeding sends, timers, or traces."""

    id = "unordered-iter"
    summary = (
        "no iterating a bare set/frozenset/dict.keys() into sends, "
        "scheduling, or ordered collections; wrap the iterable in sorted()"
    )
    scope = SIM_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        tracker = _SetTracker(ctx.tree)
        # Walk function-by-function so local-name tracking stays scoped.
        funcs = [
            n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        module_level = ast.Module(body=ctx.tree.body, type_ignores=[])
        for scope_node in [module_level] + funcs:
            tracker.reset_locals()
            yield from self._check_scope(ctx, scope_node, tracker)

    def _check_scope(self, ctx, scope_node, tracker) -> Iterator[Finding]:
        own_nodes = list(self._walk_scope(scope_node))
        # First pass: learn local set-typed names (assignment order is
        # source order, good enough for straight-line protocol code).
        for node in own_nodes:
            if isinstance(node, ast.Assign):
                tracker.note_assignment(node)
        for node in own_nodes:
            if isinstance(node, ast.For) and tracker.is_set_expr(node.iter):
                sink = self._order_sink_in(node.body + node.orelse)
                if sink is not None:
                    yield self.finding(
                        ctx, node,
                        "iterating an unordered set here feeds "
                        f"{sink}(...); iteration order varies between "
                        "runs — wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                gen = node.generators[0]
                if tracker.is_set_expr(gen.iter) and self._orders_escape(
                    ctx, node
                ):
                    yield self.finding(
                        ctx, node,
                        "this comprehension materializes a set's hash "
                        "order into an ordered value; wrap the source in "
                        "sorted(...) or keep the result unordered",
                    )
            elif (
                isinstance(node, ast.Call)
                and call_func_name(node) in ("list", "tuple")
                and len(node.args) == 1
                and tracker.is_set_expr(node.args[0])
                and self._orders_escape(ctx, node)
            ):
                yield self.finding(
                    ctx, node,
                    f"{call_func_name(node)}() over an unordered set "
                    "freezes hash order; use sorted(...) instead",
                )

    @staticmethod
    def _walk_scope(scope_node) -> Iterator[ast.AST]:
        """Walk *scope_node* without descending into nested functions or
        classes (they are visited as their own scopes)."""
        stack = list(
            scope_node.body
            if isinstance(scope_node, ast.Module)
            else scope_node.body + getattr(scope_node, "orelse", [])
        )
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _order_sink_in(body) -> Optional[str]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = call_func_name(node)
                    if name in _ORDER_SINKS:
                        return name
        return None

    def _orders_escape(self, ctx, node: ast.AST) -> bool:
        """Whether the ordered value built by *node* can matter: it is not
        consumed by an order-insensitive sink like sorted()/sum()."""
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Call):
                name = call_func_name(ancestor)
                if name in _ORDER_INSENSITIVE:
                    return False
                return True  # any other call: assume the order escapes
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return True


@rule
class IdOrderingRule(Rule):
    """Ban ordering by id() — memory addresses differ between runs."""

    id = "id-ordering"
    summary = "no sorting/keying by id(); memory addresses are not stable"
    scope = SIM_SCOPE

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_func_name(node) not in ("sorted", "min", "max", "sort"):
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if self._uses_id(kw.value):
                    yield self.finding(
                        ctx, node,
                        "ordering by id() depends on memory layout and "
                        "differs between runs; key on a stable field "
                        "(pid, round, name) instead",
                    )

    @staticmethod
    def _uses_id(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            return any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name)
                and n.func.id == "id"
                for n in ast.walk(key.body)
            )
        return False
