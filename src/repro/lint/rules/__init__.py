"""Rule modules — importing this package registers every rule.

Rule groups, by the package contract they enforce:

* :mod:`~repro.lint.rules.determinism` — the simulator-path packages must
  stay bit-for-bit replayable (no ambient clocks, no global randomness, no
  hash-order iteration into sends, no id()-based ordering);
* :mod:`~repro.lint.rules.asyncio_hazards` — :mod:`repro.net` must not
  stall, drop, or silence the event loop;
* :mod:`~repro.lint.rules.payload` — protocol payloads must survive the
  wire codec;
* :mod:`~repro.lint.rules.trace_schema` — trace emissions must match the
  :mod:`repro.obs` event-schema registry;
* :mod:`~repro.lint.rules.metrics_registry` — metric updates must match
  the :mod:`repro.obs` metric-schema registry;
* :mod:`~repro.lint.rules.proc_isolation` — OS-process spawning and
  killing stays behind the :mod:`repro.proc` launcher, the single source
  of truth for the failure pattern.
"""

from . import (  # noqa: F401
    asyncio_hazards,
    determinism,
    metrics_registry,
    payload,
    proc_isolation,
    trace_schema,
)

__all__ = [
    "asyncio_hazards",
    "determinism",
    "metrics_registry",
    "payload",
    "proc_isolation",
    "trace_schema",
]
