"""Rule modules — importing this package registers every rule.

Rule groups, by the package contract they enforce:

* :mod:`~repro.lint.rules.determinism` — the simulator-path packages must
  stay bit-for-bit replayable (no ambient clocks, no global randomness, no
  hash-order iteration into sends, no id()-based ordering);
* :mod:`~repro.lint.rules.asyncio_hazards` — :mod:`repro.net` must not
  stall, drop, or silence the event loop;
* :mod:`~repro.lint.rules.payload` — protocol payloads must survive the
  wire codec;
* :mod:`~repro.lint.rules.trace_schema` — trace emissions must match the
  :mod:`repro.obs` event-schema registry.
"""

from . import asyncio_hazards, determinism, payload, trace_schema  # noqa: F401

__all__ = ["asyncio_hazards", "determinism", "payload", "trace_schema"]
