"""Payload-encodability rule.

Protocol payloads must survive the wire codec
(:mod:`repro.net.codec`): the tagged-JSON transform round-trips ``None``,
``bool``, ``int``, ``float``, ``str``, ``list``, ``tuple``, ``dict``,
``set``, ``frozenset``, and the ``NULL`` estimate sentinel — and nothing
else.  In the simulator, payloads travel by reference, so an unencodable
payload (a ``bytes`` blob, a lambda, an arbitrary object) works fine until
the same component runs on :mod:`repro.net`, where it raises a
``CodecError`` at send time.  This rule moves that failure from the first
live run to the lint step.

The check is best-effort and one-sided: it walks each ``send(...)`` /
``broadcast(...)`` payload *expression* and reports only values that are
**provably** unencodable (literals and constructors of unsupported types,
possibly nested inside supported containers).  Names, attribute loads, and
unknown call results pass — the codec's own tests guard the dynamic cases.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..astutil import ImportMap, call_func_name, dotted_name
from ..findings import Finding
from ..registry import Rule, rule

__all__ = ["PayloadEncodabilityRule", "payload_expr"]

#: Component-level messaging calls: name -> index of the payload argument.
_PAYLOAD_ARG = {
    "send": 1,        # Component.send(dst, payload, ...)
    "send_self": 0,
    "broadcast": 0,
    "rbroadcast": 0,
    "urbroadcast": 0,
}

#: Constructor calls that produce codec-supported values.
_SAFE_CONSTRUCTORS = {
    "set", "frozenset", "dict", "tuple", "list", "str", "int", "float",
    "bool", "sorted", "repr", "format", "len", "sum", "min", "max", "abs",
    "round",
}
#: Constructor calls that provably produce unencodable values.
_BAD_CONSTRUCTORS = {
    "bytes": "bytes",
    "bytearray": "bytearray",
    "memoryview": "memoryview",
    "object": "object",
    "complex": "complex",
    "open": "file object",
    "iter": "iterator",
    "range": "range",
    "lambda": "function",
}

#: Canonical dotted constructors that produce unencodable values — matched
#: after resolving the call through the module's import aliases, so
#: ``from pathlib import Path as P; send(dst, P("x"))`` is caught exactly
#: like a spelled-out ``pathlib.Path("x")``.
_BAD_CANONICAL = {
    "io.BytesIO": "an io.BytesIO",
    "io.StringIO": "an io.StringIO",
    "pathlib.Path": "a pathlib.Path",
    "pathlib.PurePath": "a pathlib.PurePath",
    "pathlib.PosixPath": "a pathlib.PosixPath",
    "datetime.datetime": "a datetime.datetime",
    "datetime.date": "a datetime.date",
    "datetime.time": "a datetime.time",
    "datetime.timedelta": "a datetime.timedelta",
    "re.compile": "a compiled re.Pattern",
    "collections.deque": "a collections.deque",
    "threading.Lock": "a threading.Lock",
    "threading.Event": "a threading.Event",
    "asyncio.Lock": "an asyncio.Lock",
    "asyncio.Event": "an asyncio.Event",
    "asyncio.Queue": "an asyncio.Queue",
}


def payload_expr(call: ast.Call, name: str) -> Optional[ast.AST]:
    """The payload expression of a messaging call, or ``None``.

    Shared with the whole-program ``protocol-flow`` rule, which needs the
    same argument extraction to find message-kind producers.
    """
    for kw in call.keywords:
        if kw.arg == "payload":
            return kw.value
    index = _PAYLOAD_ARG[name]
    if len(call.args) > index:
        arg = call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


@rule
class PayloadEncodabilityRule(Rule):
    """Best-effort type check of every messaging payload expression."""

    id = "payload-encodability"
    summary = (
        "send/broadcast payloads must be codec-encodable (JSON scalars, "
        "list/tuple/dict/set/frozenset, NULL); bytes, lambdas, and "
        "arbitrary objects fail on the wire"
    )
    # Component code lives in these packages; repro.net and repro.sim are
    # excluded because their `send` methods move already-encoded frames and
    # envelope internals, not protocol payloads.  repro.svc submits client
    # commands into the replicated log, so its payloads ride the codec too.
    scope = (
        "repro.fd", "repro.consensus", "repro.transform", "repro.broadcast",
        "repro.svc", "repro.load",
    )

    def check(self, ctx) -> Iterator[Finding]:
        # Package anchor only matters for relative imports; best-effort.
        imports = ImportMap(
            ctx.tree, package=ctx.module.rpartition(".")[0]
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_func_name(node)
            if name not in _PAYLOAD_ARG:
                continue
            payload = payload_expr(node, name)
            if payload is None:
                continue
            verdict = self._verdict(payload, imports)
            if verdict is not None:
                reason, offender = verdict
                yield self.finding(
                    ctx, offender,
                    f"payload contains {reason}, which the wire codec "
                    "cannot encode (supported: JSON scalars, list/tuple/"
                    "dict/set/frozenset, NULL); encode it explicitly "
                    "before sending",
                )

    def _verdict(
        self, node: ast.AST, imports: ImportMap
    ) -> Optional[Tuple[str, ast.AST]]:
        """``(reason, offending node)`` when *node* is provably
        unencodable, else ``None`` (encodable or unknown)."""
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bytes):
                return "a bytes literal", node
            if isinstance(value, complex):
                return "a complex literal", node
            if value is Ellipsis:
                return "Ellipsis", node
            return None  # str/int/float/bool/None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                bad = self._verdict(elt, imports)
                if bad is not None:
                    return bad
            return None
        if isinstance(node, ast.Dict):
            for part in list(node.keys) + list(node.values):
                if part is None:
                    continue  # **splat key
                bad = self._verdict(part, imports)
                if bad is not None:
                    return bad
            return None
        if isinstance(node, ast.Lambda):
            return "a lambda", node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return "a function", node
        if isinstance(node, ast.Call):
            name = call_func_name(node)
            if name in _BAD_CONSTRUCTORS:
                return f"a {_BAD_CONSTRUCTORS[name]}", node
            canonical = imports.resolve(dotted_name(node.func))
            if canonical in _BAD_CANONICAL:
                return _BAD_CANONICAL[canonical], node
            if name in _SAFE_CONSTRUCTORS:
                for arg in node.args:
                    if isinstance(arg, ast.Starred):
                        continue
                    bad = self._verdict(arg, imports)
                    if bad is not None:
                        return bad
            return None  # unknown call result: give it the benefit of doubt
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return None  # f-strings are str
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return None  # element types unknown
        return None  # names, attributes, operators: unknown -> pass
