"""Payload-encodability rule.

Protocol payloads must survive the wire codec
(:mod:`repro.net.codec`): the tagged-JSON transform round-trips ``None``,
``bool``, ``int``, ``float``, ``str``, ``list``, ``tuple``, ``dict``,
``set``, ``frozenset``, and the ``NULL`` estimate sentinel — and nothing
else.  In the simulator, payloads travel by reference, so an unencodable
payload (a ``bytes`` blob, a lambda, an arbitrary object) works fine until
the same component runs on :mod:`repro.net`, where it raises a
``CodecError`` at send time.  This rule moves that failure from the first
live run to the lint step.

The check is best-effort and one-sided: it walks each ``send(...)`` /
``broadcast(...)`` payload *expression* and reports only values that are
**provably** unencodable (literals and constructors of unsupported types,
possibly nested inside supported containers).  Names, attribute loads, and
unknown call results pass — the codec's own tests guard the dynamic cases.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..astutil import call_func_name
from ..findings import Finding
from ..registry import Rule, rule

__all__ = ["PayloadEncodabilityRule"]

#: Component-level messaging calls: name -> index of the payload argument.
_PAYLOAD_ARG = {
    "send": 1,        # Component.send(dst, payload, ...)
    "send_self": 0,
    "broadcast": 0,
    "rbroadcast": 0,
    "urbroadcast": 0,
}

#: Constructor calls that produce codec-supported values.
_SAFE_CONSTRUCTORS = {
    "set", "frozenset", "dict", "tuple", "list", "str", "int", "float",
    "bool", "sorted", "repr", "format", "len", "sum", "min", "max", "abs",
    "round",
}
#: Constructor calls that provably produce unencodable values.
_BAD_CONSTRUCTORS = {
    "bytes": "bytes",
    "bytearray": "bytearray",
    "memoryview": "memoryview",
    "object": "object",
    "complex": "complex",
    "open": "file object",
    "iter": "iterator",
    "range": "range",
    "lambda": "function",
}


@rule
class PayloadEncodabilityRule(Rule):
    """Best-effort type check of every messaging payload expression."""

    id = "payload-encodability"
    summary = (
        "send/broadcast payloads must be codec-encodable (JSON scalars, "
        "list/tuple/dict/set/frozenset, NULL); bytes, lambdas, and "
        "arbitrary objects fail on the wire"
    )
    # Component code lives in these packages; repro.net and repro.sim are
    # excluded because their `send` methods move already-encoded frames and
    # envelope internals, not protocol payloads.  repro.svc submits client
    # commands into the replicated log, so its payloads ride the codec too.
    scope = (
        "repro.fd", "repro.consensus", "repro.transform", "repro.broadcast",
        "repro.svc", "repro.load",
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_func_name(node)
            if name not in _PAYLOAD_ARG:
                continue
            payload = self._payload_expr(node, name)
            if payload is None:
                continue
            verdict = self._verdict(payload)
            if verdict is not None:
                reason, offender = verdict
                yield self.finding(
                    ctx, offender,
                    f"payload contains {reason}, which the wire codec "
                    "cannot encode (supported: JSON scalars, list/tuple/"
                    "dict/set/frozenset, NULL); encode it explicitly "
                    "before sending",
                )

    @staticmethod
    def _payload_expr(call: ast.Call, name: str) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == "payload":
                return kw.value
        index = _PAYLOAD_ARG[name]
        if len(call.args) > index:
            arg = call.args[index]
            if isinstance(arg, ast.Starred):
                return None
            return arg
        return None

    def _verdict(self, node: ast.AST) -> Optional[Tuple[str, ast.AST]]:
        """``(reason, offending node)`` when *node* is provably
        unencodable, else ``None`` (encodable or unknown)."""
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bytes):
                return "a bytes literal", node
            if isinstance(value, complex):
                return "a complex literal", node
            if value is Ellipsis:
                return "Ellipsis", node
            return None  # str/int/float/bool/None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                bad = self._verdict(elt)
                if bad is not None:
                    return bad
            return None
        if isinstance(node, ast.Dict):
            for part in list(node.keys) + list(node.values):
                if part is None:
                    continue  # **splat key
                bad = self._verdict(part)
                if bad is not None:
                    return bad
            return None
        if isinstance(node, ast.Lambda):
            return "a lambda", node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return "a function", node
        if isinstance(node, ast.Call):
            name = call_func_name(node)
            if name in _BAD_CONSTRUCTORS:
                return f"a {_BAD_CONSTRUCTORS[name]}", node
            if name in _SAFE_CONSTRUCTORS:
                for arg in node.args:
                    if isinstance(arg, ast.Starred):
                        continue
                    bad = self._verdict(arg)
                    if bad is not None:
                        return bad
            return None  # unknown call result: give it the benefit of doubt
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return None  # f-strings are str
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return None  # element types unknown
        return None  # names, attributes, operators: unknown -> pass
