"""The lint engine: walk files, parse, run rules, apply suppressions.

The engine owns everything rule-independent: discovering Python files under
the given paths, parsing them, computing each file's dotted module name
(which drives rule scoping), building the parent map rules use for
context-sensitive checks, and filtering findings through the suppression
comments.  Rules stay tiny visitors over a prepared
:class:`FileContext`.

Determinism note — the linter holds itself to the contract it enforces:
file discovery is sorted, rules run in registration order, and findings are
reported in (path, line, col, rule) order, so two runs over the same tree
produce byte-identical output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from .findings import Finding
from .registry import Rule, resolve_rules
from .suppress import Suppressions, parse_suppressions

__all__ = ["FileContext", "LintResult", "lint_paths", "default_target"]


@dataclass
class FileContext:
    """Everything a rule may need about one parsed file."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    _parents: Optional[Dict[int, ast.AST]] = field(default=None, repr=False)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of *node* (``None`` for the module)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of *node*, innermost first, up to the module."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 = clean, 1 = findings (2, config errors, is raised not returned)."""
        return 0 if self.clean else 1


def module_name(path: Path) -> str:
    """Dotted module name for *path*, or "" when it is not inside a package
    rooted at a directory named ``repro``.

    ``.../src/repro/net/tcp.py`` -> ``repro.net.tcp``; a fixture file in a
    test corpus has no ``repro`` ancestor and maps to "" (every rule
    applies there; see :mod:`repro.lint.registry`).
    """
    parts = list(path.resolve().parts)
    if "repro" not in parts:
        return ""
    root = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[root:-1] + [path.stem]
    if path.stem == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def default_target() -> Path:
    """The installed :mod:`repro` package directory — what ``repro lint``
    checks when no paths are given, so self-linting works from any cwd."""
    return Path(__file__).resolve().parent.parent


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under *paths*, sorted for deterministic output."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.is_file():
            out.append(path)
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    seen = set()
    unique: List[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    """Path as reported: relative to cwd when possible, else absolute."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _lint_file(path: Path, rules: Sequence[Rule]) -> List[Finding]:
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"cannot read {display}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(source)
    if suppressions.skip_file:
        return []
    ctx = FileContext(
        path=path,
        display_path=display,
        module=module_name(path),
        source=source,
        tree=tree,
        suppressions=suppressions,
    )
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx.module):
            continue
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every Python file under *paths* (default: the repro package).

    Raises :class:`~repro.errors.ConfigurationError` for unknown rules or
    unreadable paths — the CLI maps that to exit code 2, findings to 1.
    """
    rules = resolve_rules(select=select, ignore=ignore)
    targets = [Path(p) for p in paths] if paths else [default_target()]
    files = iter_python_files(targets)
    findings: List[Finding] = []
    for path in files:
        findings.extend(_lint_file(path, rules))
    findings.sort()
    return LintResult(findings=findings, files_checked=len(files))
