"""The lint engine: walk files, parse, run rules, apply suppressions.

The engine owns everything rule-independent: discovering Python files under
the given paths, parsing them, computing each file's dotted module name
(which drives rule scoping), building the parent map rules use for
context-sensitive checks, and filtering findings through the suppression
comments.  Rules stay tiny visitors over a prepared
:class:`FileContext`.

Two passes run per invocation: the **per-file pass** (each rule sees one
parsed file) and the **whole-program pass** (all parsed files become a
:class:`~repro.lint.program.model.ProjectModel`; the program rules see the
call graph, protocol flows, and symbol tables).  When the target set
includes the ``repro`` package itself, the repository's ``tests/``,
``benchmarks/``, and ``examples/`` trees are parsed as a *reference
corpus*: their symbol references and message sends feed the model (so an
op only tests exercise is not a dead arm) but findings are never
attributed to them.

Determinism note — the linter holds itself to the contract it enforces:
file discovery is sorted, rules run in registration order, the project
model iterates modules and edges in sorted order, and findings are
reported in (path, line, col, rule) order, so two runs over the same tree
produce byte-identical output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .baseline import apply_baseline, load_baseline
from .findings import Finding
from .registry import (
    ProgramRule,
    Rule,
    resolve_program_rules,
    resolve_rules,
)
from .suppress import Suppressions, parse_suppressions

__all__ = ["FileContext", "LintResult", "lint_paths", "default_target"]


@dataclass
class FileContext:
    """Everything a rule may need about one parsed file."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    _parents: Optional[Dict[int, ast.AST]] = field(default=None, repr=False)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of *node* (``None`` for the module)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of *node*, innermost first, up to the module."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    #: findings filtered out by ``--baseline`` (accepted pre-existing ones).
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 = clean, 1 = findings (2, config errors, is raised not returned)."""
        return 0 if self.clean else 1


def module_name(path: Path) -> str:
    """Dotted module name for *path*, or "" when it is not inside a package
    rooted at a directory named ``repro``.

    ``.../src/repro/net/tcp.py`` -> ``repro.net.tcp``; a fixture file in a
    test corpus has no ``repro`` ancestor and maps to "" (every rule
    applies there; see :mod:`repro.lint.registry`).
    """
    parts = list(path.resolve().parts)
    if "repro" not in parts:
        return ""
    root = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[root:-1] + [path.stem]
    if path.stem == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def default_target() -> Path:
    """The installed :mod:`repro` package directory — what ``repro lint``
    checks when no paths are given, so self-linting works from any cwd."""
    return Path(__file__).resolve().parent.parent


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under *paths*, sorted for deterministic output."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.is_file():
            out.append(path)
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    seen = set()
    unique: List[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    """Path as reported: relative to cwd when possible, else absolute."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _parse_file(path: Path) -> Tuple[Optional[FileContext], List[Finding]]:
    """Parse *path* into a context; a syntax error becomes a finding."""
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"cannot read {display}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        display_path=display,
        module=module_name(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    return ctx, []


def _run_per_file(ctx: FileContext, rules: Sequence[Rule]) -> List[Finding]:
    if ctx.suppressions.skip_file:
        return []
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx.module):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return findings


def _repo_root(start: Path) -> Optional[Path]:
    """Nearest ancestor of *start* holding a ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


#: Repository trees parsed as the reference corpus (never targets).
_REFERENCE_TREES = ("tests", "benchmarks", "examples")


def _reference_contexts(
    target_contexts: Sequence[FileContext],
) -> List[FileContext]:
    """The reference corpus for the program pass (see module docstring).

    Only engaged when the target set includes the ``repro`` package:
    fixture corpora and user trees stay self-contained, so their program
    findings do not depend on this repository's tests.
    """
    if not any(
        ctx.module == "repro" or ctx.module.startswith("repro.")
        for ctx in target_contexts
    ):
        return []
    root = _repo_root(default_target())
    if root is None:
        return []
    taken = {ctx.path.resolve() for ctx in target_contexts}
    out: List[FileContext] = []
    for tree_name in _REFERENCE_TREES:
        directory = root / tree_name
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            if not path.is_file() or path.resolve() in taken:
                continue
            if "fixtures" in path.parts:
                continue  # synthetic lint corpora: not real usage evidence
            try:
                ctx, _syntax = _parse_file(path)
            except ConfigurationError:
                continue  # unreadable reference file: skip, never fail
            if ctx is not None:
                out.append(ctx)
    return out


def _run_program(
    contexts: Sequence[FileContext], program_rules: Sequence[ProgramRule]
) -> List[Finding]:
    """Build the project model and run the program rules over it."""
    from .program import build_project_model  # local: rules import engine

    model = build_project_model(contexts, _reference_contexts(contexts))
    suppressions = {ctx.display_path: ctx.suppressions for ctx in contexts}
    findings: List[Finding] = []
    for rule in program_rules:
        for finding in rule.check(model):
            supp = suppressions.get(finding.path)
            if supp is None:
                continue  # never attribute findings outside the target set
            if supp.skip_file:
                continue
            if supp.is_suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    return findings


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    program: bool = True,
    baseline: Optional[Path] = None,
) -> LintResult:
    """Lint every Python file under *paths* (default: the repro package).

    *program* toggles the whole-program pass (the ``--no-program`` escape
    hatch); *baseline* filters findings whose fingerprints appear in the
    given baseline file (see :mod:`repro.lint.baseline`).

    Raises :class:`~repro.errors.ConfigurationError` for unknown rules or
    unreadable paths — the CLI maps that to exit code 2, findings to 1.
    """
    rules = resolve_rules(select=select, ignore=ignore)
    program_rules = (
        resolve_program_rules(select=select, ignore=ignore) if program else []
    )
    targets = [Path(p) for p in paths] if paths else [default_target()]
    files = iter_python_files(targets)
    findings: List[Finding] = []
    contexts: List[FileContext] = []
    for path in files:
        ctx, parse_findings = _parse_file(path)
        findings.extend(parse_findings)
        if ctx is not None:
            contexts.append(ctx)
            findings.extend(_run_per_file(ctx, rules))
    if program_rules and contexts:
        findings.extend(_run_program(contexts, program_rules))
    findings.sort()
    baselined = 0
    if baseline is not None:
        fingerprints = load_baseline(baseline)
        findings, baselined = apply_baseline(findings, fingerprints)
    return LintResult(
        findings=findings, files_checked=len(files), baselined=baselined
    )
