"""Suppression comments: ``# lint: ignore[rule-id]``.

Every suppression is explicit and scoped:

* ``# lint: ignore[rule-id]`` — silence *rule-id* on this line (or, when
  the comment stands alone on its own line, on the next code line);
* ``# lint: ignore[rule-a,rule-b]`` — silence several rules at once;
* ``# lint: ignore`` — silence every rule on that line (discouraged; name
  the rule so the waiver dies with the code it excuses);
* ``# lint: skip-file`` — anywhere in the file: skip the whole file.

Suppressions are parsed from the token stream, not the AST, so they work on
any line — including lines inside expressions that the AST attributes to a
different ``lineno``.  A finding is suppressed when a matching comment sits
on the finding's own line or on a standalone comment line directly above it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

__all__ = ["Suppressions", "parse_suppressions"]

#: Matches one suppression comment; group 1 = "ignore"/"skip-file",
#: group 3 = the optional bracketed rule list.
_PATTERN = re.compile(
    r"#\s*lint:\s*(ignore|skip-file)(\[([A-Za-z0-9_\-, ]+)\])?"
)

#: Sentinel rule id meaning "every rule".
ALL_RULES = "*"


@dataclass
class Suppressions:
    """Parsed suppression state of one file."""

    skip_file: bool = False
    #: line number -> rule ids silenced on that line (ALL_RULES = all).
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: lines that hold *only* a comment (their suppressions also cover the
    #: next line, so a waiver can sit above a long statement).
    standalone: Set[int] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether *rule_id* is silenced at *line*."""
        if self.skip_file:
            return True
        for candidate in (line, line - 1):
            rules = self.by_line.get(candidate)
            if rules is None:
                continue
            if candidate != line and candidate not in self.standalone:
                continue
            if ALL_RULES in rules or rule_id in rules:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract the suppression map from *source* (tolerant of bad syntax:
    tokenization errors simply end the scan — the engine reports the parse
    failure separately)."""
    result = Suppressions()
    code_lines: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return result
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _PATTERN.search(tok.string)
            if match is None:
                continue
            if match.group(1) == "skip-file":
                result.skip_file = True
                continue
            if match.group(3):
                rules = {r.strip() for r in match.group(3).split(",") if r.strip()}
            else:
                rules = {ALL_RULES}
            result.by_line.setdefault(tok.start[0], set()).update(rules)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])
    result.standalone = set(result.by_line) - code_lines
    return result
