"""Finding reporters: compiler-style text and machine-readable JSON.

Both formats render the same :class:`~repro.lint.engine.LintResult`; the
text form is for humans and editors (``path:line:col: rule: message``, so
terminals hyperlink it), the JSON form for CI annotations and tooling.
Output is deterministic: findings arrive pre-sorted from the engine.
"""

from __future__ import annotations

import json
from typing import IO

from .engine import LintResult

__all__ = ["render_text", "render_json", "write_report", "FORMATS"]

FORMATS = ("text", "json")

#: Schema version of the JSON report (bump on incompatible change).
JSON_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in result.findings]
    noun = "file" if result.files_checked == 1 else "files"
    if result.clean:
        lines.append(f"clean: {result.files_checked} {noun} checked, no findings")
    else:
        count = len(result.findings)
        fnoun = "finding" if count == 1 else "findings"
        lines.append(
            f"{count} {fnoun} in {result.files_checked} {noun} checked"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, trailing newline-free)."""
    record = {
        "version": JSON_VERSION,
        "files_checked": result.files_checked,
        "clean": result.clean,
        "findings": [f.to_json() for f in result.findings],
    }
    return json.dumps(record, indent=2, sort_keys=True)


def write_report(result: LintResult, fmt: str, stream: IO[str]) -> None:
    """Render *result* as *fmt* ("text" or "json") onto *stream*."""
    renderer = render_json if fmt == "json" else render_text
    stream.write(renderer(result) + "\n")
