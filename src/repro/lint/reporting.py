"""Finding reporters: compiler-style text, machine-readable JSON, SARIF.

All formats render the same :class:`~repro.lint.engine.LintResult`; the
text form is for humans and editors (``path:line:col: rule: severity:
message``, so terminals hyperlink it), the JSON form for CI annotations
and tooling, and the SARIF form for GitHub code scanning (findings then
annotate PR diffs inline).  Output is deterministic: findings arrive
pre-sorted from the engine and every collection below is emitted in
sorted order.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List

from .engine import LintResult

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "write_report",
    "FORMATS",
]

FORMATS = ("text", "json", "sarif")

#: Schema version of the JSON report (bump on incompatible change).
#: v2 added per-finding ``severity``/``origin`` and top-level ``baselined``.
JSON_VERSION = 2

#: SARIF spec pinned by the GitHub code-scanning ingestion endpoint.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in result.findings]
    noun = "file" if result.files_checked == 1 else "files"
    suffix = (
        f" ({result.baselined} baselined)" if result.baselined else ""
    )
    if result.clean:
        lines.append(
            f"clean: {result.files_checked} {noun} checked, no findings"
            + suffix
        )
    else:
        count = len(result.findings)
        fnoun = "finding" if count == 1 else "findings"
        lines.append(
            f"{count} {fnoun} in {result.files_checked} {noun} checked"
            + suffix
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, trailing newline-free)."""
    record = {
        "version": JSON_VERSION,
        "files_checked": result.files_checked,
        "clean": result.clean,
        "baselined": result.baselined,
        "findings": [f.to_json() for f in result.findings],
    }
    return json.dumps(record, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """A SARIF 2.1.0 log for GitHub code scanning.

    Rules are declared once in the tool driver (id + summary, collected
    from the registry in registration order) and referenced by index from
    each result; ``severity`` maps onto the SARIF ``level`` directly.
    """
    from .registry import iter_rule_docs  # local: avoid import cycle at load

    rule_docs = list(iter_rule_docs())
    rule_index = {rule_id: i for i, (rule_id, _, _, _) in enumerate(rule_docs)}
    rules: List[Dict[str, Any]] = [
        {
            "id": rule_id,
            "shortDescription": {"text": summary},
            "properties": {"pass": origin},
        }
        for rule_id, summary, _, origin in rule_docs
    ]
    results: List[Dict[str, Any]] = []
    for f in result.findings:
        entry: Dict[str, Any] = {
            "ruleId": f.rule,
            "level": f.severity if f.severity in ("error", "warning") else "none",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
            "properties": {"origin": f.origin},
        }
        if f.rule in rule_index:
            entry["ruleIndex"] = rule_index[f.rule]
        results.append(entry)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def write_report(result: LintResult, fmt: str, stream: IO[str]) -> None:
    """Render *result* as *fmt* ("text", "json", or "sarif") onto *stream*."""
    renderer = _RENDERERS.get(fmt, render_text)
    stream.write(renderer(result) + "\n")
