"""Lint CLI: ``python -m repro lint`` and the ``repro-lint`` entry point.

Exit codes follow the package convention (:mod:`repro.cli`):

* ``0`` — clean (no findings);
* ``1`` — findings reported;
* ``2`` — configuration error (unknown rule, unreadable path).

This module owns the argument surface so both entry points behave
identically: :func:`add_lint_arguments` is called by the main CLI's
``lint`` subparser, and :func:`main` wraps the same runner as a standalone
console script.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigurationError
from .baseline import write_baseline
from .engine import default_target, lint_paths
from .registry import iter_rule_docs
from .reporting import FORMATS, write_report

__all__ = ["add_lint_arguments", "run_from_args", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options onto *parser* (shared by both entry points)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list the available rules and exit",
    )
    parser.add_argument(
        "--no-program", action="store_true",
        help="skip the whole-program pass (per-file rules only)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=(
            "filter out findings fingerprinted in FILE (accepted "
            "pre-existing findings; see --write-baseline)"
        ),
    )
    parser.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help=(
            "record the current findings' fingerprints into FILE and "
            "exit 0 (run without --baseline to capture everything)"
        ),
    )


def _split(values: List[str]) -> List[str]:
    """Flatten repeatable, comma-separable rule lists."""
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _list_rules(stream) -> int:
    docs = list(iter_rule_docs())
    width = max(len(rule_id) for rule_id, _, _, _ in docs)
    for rule_id, summary, scope, origin in docs:
        where = ", ".join(scope) if scope else "all files"
        stream.write(f"{rule_id:<{width}}  [{origin}] {summary}\n")
        stream.write(f"{'':<{width}}  scope: {where}\n")
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed *args*; returns the exit code."""
    if args.rules:
        return _list_rules(sys.stdout)
    paths = args.paths or [default_target()]
    result = lint_paths(
        paths=paths,
        select=_split(args.select) or None,
        ignore=_split(args.ignore) or None,
        program=not args.no_program,
        baseline=args.baseline,
    )
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, result.findings)
        count = len(result.findings)
        noun = "finding" if count == 1 else "findings"
        print(f"baseline: {count} {noun} recorded in {args.write_baseline}")
        return 0
    write_report(result, args.format, sys.stdout)
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (the ``repro-lint`` console script)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism and protocol-safety analyzer for the "
            "repro package"
        ),
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
