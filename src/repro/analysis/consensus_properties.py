"""Trace-based checkers for the (Uniform) Consensus properties.

The four properties of Section 5.1:

* **Termination** — every correct process eventually decides;
* **Uniform integrity** — every process decides at most once;
* **(Uniform) agreement** — no two processes (correct *or faulty*, for the
  uniform variant this library always checks) decide differently;
* **Validity** — every decided value was proposed by some process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from ..errors import PropertyViolation
from ..obs.reader import TraceSource, as_trace
from ..types import ProcessId, Time

__all__ = ["ConsensusOutcome", "extract_outcome", "check_consensus",
           "require_consensus"]


@dataclass
class ConsensusOutcome:
    """Everything a consensus run produced, extracted from its trace."""

    algo: str
    proposals: Dict[ProcessId, Any] = field(default_factory=dict)
    decisions: Dict[ProcessId, Any] = field(default_factory=dict)
    decision_times: Dict[ProcessId, Time] = field(default_factory=dict)
    decision_rounds: Dict[ProcessId, Optional[int]] = field(default_factory=dict)
    decide_event_counts: Dict[ProcessId, int] = field(default_factory=dict)

    @property
    def decided_values(self) -> List[Any]:
        """All decided values (possibly with duplicates across processes)."""
        return list(self.decisions.values())


def extract_outcome(
    trace: TraceSource, algo: Optional[str] = None
) -> ConsensusOutcome:
    """Collect proposals and decisions for one algorithm from *trace*.

    *trace* can be a live in-memory trace, a ``.jsonl`` file path, or a
    merged postmortem stream.  With several consensus instances in one
    world, pass *algo* to select one (matches the protocol's ``name``); by
    default the first algorithm seen is used.
    """
    outcome = ConsensusOutcome(algo=algo or "")
    for ev in as_trace(trace).events:
        if ev.kind not in ("propose", "decide"):
            continue
        ev_algo = ev.get("algo")
        if algo is None:
            algo = ev_algo
            outcome.algo = ev_algo
        if ev_algo != algo:
            continue
        if ev.kind == "propose":
            outcome.proposals[ev.pid] = ev.get("value")
        else:
            outcome.decide_event_counts[ev.pid] = (
                outcome.decide_event_counts.get(ev.pid, 0) + 1
            )
            outcome.decisions[ev.pid] = ev.get("value")
            outcome.decision_times[ev.pid] = ev.time
            outcome.decision_rounds[ev.pid] = ev.get("round")
    return outcome


def check_consensus(
    outcome: ConsensusOutcome,
    correct: FrozenSet[ProcessId],
) -> Dict[str, bool]:
    """Evaluate the four Uniform Consensus properties on *outcome*.

    Returns ``{"termination": ..., "uniform-agreement": ...,
    "validity": ..., "uniform-integrity": ...}``.
    """
    proposers = set(outcome.proposals)
    decided = outcome.decisions
    termination = all(p in decided for p in correct if p in proposers)
    # Values may be unhashable; compare pairwise against the first.
    values = list(decided.values())
    agreement = all(v == values[0] for v in values) if values else True
    proposed_values = list(outcome.proposals.values())
    validity = all(v in proposed_values for v in decided.values())
    integrity = all(c == 1 for c in outcome.decide_event_counts.values())
    return {
        "termination": termination,
        "uniform-agreement": agreement,
        "validity": validity,
        "uniform-integrity": integrity,
    }


def require_consensus(
    outcome: ConsensusOutcome,
    correct: FrozenSet[ProcessId],
) -> Dict[str, bool]:
    """Like :func:`check_consensus` but raises on any violated property."""
    results = check_consensus(outcome, correct)
    failed = [name for name, ok in results.items() if not ok]
    if failed:
        raise PropertyViolation(
            f"consensus ({outcome.algo}) violates {failed}; "
            f"decisions={outcome.decisions}"
        )
    return results
