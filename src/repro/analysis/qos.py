"""Chen-style QoS analysis of failure-detector runs, from any trace.

The paper's efficiency story is quantitative: the Fig. 2 ◇C→◇P
transformation costs 2(n−1) periodic messages (Section 4), the leader-based
Ω costs n−1 (Section 6), the ring ◇P costs 2n with Θ(n) detection latency
(Section 5).  This module turns a recorded run — simulated
:class:`~repro.sim.world.World`, in-process :class:`~repro.cluster.local.
LocalCluster`, or merged multi-process :class:`~repro.proc.launcher.
ProcessCluster` trace, they all flow through :func:`repro.obs.as_trace` —
into the standard quality-of-service numbers of Chen, Toueg & Aguilera
("On the quality of service of failure detectors"):

* **detection time** ``T_D`` — crash until every correct process suspects
  the victim permanently (:func:`repro.analysis.metrics.detection_latency`);
* **mistakes** — wrongful suspicions of processes that were alive, with
  their correction times: count, rate ``λ_M`` (mistakes per time unit) and
  mean duration ``T_M``;
* **leader stabilization** — the earliest time from which every correct
  process's ``trusted`` output permanently names one correct leader (the
  measured "eventually agree on a correct leader" instant, cf. Section 6);
* **message cost** — per-channel network messages per period over the
  post-stabilization window, checked against the paper's 2(n−1) bound for
  the transformation channel (Section 4).

``repro trace qos`` is the CLI front end; ``benchmarks/bench_n2_live_qos.py``
uses the same report to compare live wall latencies against simulator
predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..obs.reader import TraceSource, as_trace
from ..types import ProcessId, Time
from .fd_properties import _stabilization, build_histories, crash_times
from .metrics import detection_latency, steady_state_message_rate

__all__ = ["Mistake", "QoSReport", "qos_report", "transformation_bound"]

#: Fractional slack on the 2(n−1) message-cost bound: one extra in-flight
#: period's worth of messages may straddle the measurement window edges.
BOUND_TOLERANCE = 0.25


def transformation_bound(n: int) -> int:
    """The paper's periodic message cost of the ◇C→◇P transformation,
    2(n−1): each period the leader sends its suspect list to the other
    n−1 processes and each of them answers *alive* (Section 4)."""
    return 2 * (n - 1)


@dataclass(frozen=True)
class Mistake:
    """One wrongful suspicion: *observer* suspected *suspect* while it was
    alive.  ``end`` is the correction time (``None`` = never corrected
    within the run — an unresolved mistake)."""

    observer: ProcessId
    suspect: ProcessId
    start: Time
    end: Optional[Time]

    @property
    def duration(self) -> Optional[Time]:
        """``T_M`` of this mistake (``None`` while unresolved)."""
        return None if self.end is None else self.end - self.start


@dataclass
class QoSReport:
    """Everything :func:`qos_report` measured about one run."""

    n: int
    channel: str
    end_time: Time
    correct: FrozenSet[ProcessId]
    crashes: Dict[ProcessId, Time]
    #: victim -> T_D (``None`` = some correct process never converged).
    detection: Dict[ProcessId, Optional[Time]]
    mistakes: List[Mistake]
    #: λ_M: mistakes per time unit over the whole run (``None`` if empty run).
    mistake_rate: Optional[float]
    #: mean T_M over corrected mistakes (``None`` if none were corrected).
    mean_mistake_duration: Optional[Time]
    #: earliest time from which all correct trusted outputs equal
    #: ``stable_leader`` for the rest of the run.
    leader_stabilized_at: Optional[Time]
    stable_leader: Optional[ProcessId]
    # ----- message cost (populated only when a period was supplied) -----
    period: Optional[Time] = None
    cost_window: Optional[Tuple[Time, Time]] = None
    #: channel -> network messages per period over ``cost_window``.
    message_cost: Dict[str, float] = field(default_factory=dict)
    bound_channel: Optional[str] = None
    bound_value: Optional[float] = None
    #: ``None`` = not measurable (no period / window too short / channel
    #: silent); otherwise whether the bound (with tolerance) held.
    bound_ok: Optional[bool] = None

    @property
    def unresolved_mistakes(self) -> int:
        return sum(1 for m in self.mistakes if m.end is None)

    @property
    def max_detection(self) -> Optional[Time]:
        """Worst T_D across victims (``None`` when unmeasurable)."""
        values = list(self.detection.values())
        if not values or any(v is None for v in values):
            return None
        return max(values)

    def format(self) -> str:
        """Human-readable multi-line rendering (what ``repro trace qos``
        prints)."""
        lines = [
            f"QoS report — fd channel {self.channel!r}, n={self.n}, "
            f"horizon t={self.end_time:.3f}"
        ]
        if self.crashes:
            crashed = ", ".join(
                f"p{pid} @ t={at:.3f}" for pid, at in sorted(self.crashes.items())
            )
            lines.append(f"  crashes              : {crashed}")
            for pid in sorted(self.detection):
                latency = self.detection[pid]
                shown = "never (some observer not converged)" \
                    if latency is None else f"{latency:.3f}"
                lines.append(f"  detection time T_D   : p{pid}: {shown}")
        else:
            lines.append("  crashes              : none")
        rate = (
            "n/a" if self.mistake_rate is None
            else f"{self.mistake_rate:.6f}/time-unit"
        )
        lines.append(
            f"  mistakes             : {len(self.mistakes)} "
            f"({self.unresolved_mistakes} unresolved), rate λ_M = {rate}"
        )
        if self.mean_mistake_duration is not None:
            lines.append(
                f"  mistake duration T_M : mean {self.mean_mistake_duration:.3f}"
            )
        for mistake in self.mistakes:
            until = "∞" if mistake.end is None else f"{mistake.end:.3f}"
            lines.append(
                f"    p{mistake.observer} wrongly suspected p{mistake.suspect} "
                f"during [{mistake.start:.3f}, {until})"
            )
        if self.leader_stabilized_at is not None:
            lines.append(
                f"  leader stabilization : t={self.leader_stabilized_at:.3f} "
                f"(leader p{self.stable_leader})"
            )
        else:
            lines.append(
                "  leader stabilization : not reached (no common correct "
                "leader suffix)"
            )
        if self.period is not None and self.cost_window is not None:
            w0, w1 = self.cost_window
            lines.append(
                f"  message cost         : window [{w0:.3f}, {w1:.3f}], "
                f"period {self.period}"
            )
            for channel in sorted(self.message_cost):
                cost = self.message_cost[channel]
                suffix = ""
                if channel == self.bound_channel and self.bound_value is not None:
                    verdict = (
                        "?" if self.bound_ok is None
                        else "OK" if self.bound_ok else "VIOLATED"
                    )
                    suffix = (
                        f"   [2(n-1) bound = {self.bound_value:.0f}: {verdict}]"
                    )
                lines.append(
                    f"    {channel:<12s}: {cost:6.2f} msgs/period{suffix}"
                )
        elif self.period is None:
            lines.append(
                "  message cost         : skipped (pass --period to enable)"
            )
        return "\n".join(lines)


def _find_mistakes(
    histories: Dict[ProcessId, List],
    crashes: Dict[ProcessId, Time],
) -> List[Mistake]:
    """Wrongful-suspicion intervals from per-observer output histories.

    A mistake opens when an observer adds a then-alive process to its
    suspected set; it closes when the suspicion is retracted.  If the
    suspect crashes while wrongly suspected, the mistake closes at the
    crash (from then on the suspicion is correct)."""
    mistakes: List[Mistake] = []
    for observer in sorted(histories):
        previous: FrozenSet[ProcessId] = frozenset()
        open_since: Dict[ProcessId, Time] = {}
        for time, suspected, _ in histories[observer]:
            if suspected is None:  # pragma: no cover - malformed event
                continue
            for q in suspected - previous:
                crash_at = crashes.get(q)
                if crash_at is None or crash_at > time:
                    open_since[q] = time
            for q in previous - suspected:
                start = open_since.pop(q, None)
                if start is not None:
                    end = time
                    crash_at = crashes.get(q)
                    if crash_at is not None and crash_at < end:
                        end = max(start, crash_at)
                    mistakes.append(Mistake(observer, q, start, end))
            previous = suspected
        for q, start in open_since.items():
            crash_at = crashes.get(q)
            if crash_at is not None and crash_at >= start:
                # The suspect eventually did crash: the mistake lasted
                # until the crash made the suspicion true.
                mistakes.append(Mistake(observer, q, start, crash_at))
            else:
                mistakes.append(Mistake(observer, q, start, None))
    mistakes.sort(key=lambda m: (m.start, m.observer, m.suspect))
    return mistakes


def _leader_stabilization(
    histories: Dict[ProcessId, List],
    correct: FrozenSet[ProcessId],
) -> Tuple[Optional[Time], Optional[ProcessId]]:
    """Earliest time from which all correct trusted outputs permanently
    agree on one correct leader; ``(None, None)`` if they never do."""
    observers = frozenset(pid for pid in correct if histories.get(pid))
    if not observers or observers != correct:
        return None, None
    finals = {histories[pid][-1][2] for pid in observers}
    if len(finals) != 1:
        return None, None
    leader = next(iter(finals))
    if leader is None or leader not in correct:
        return None, None
    stabilized = _stabilization(
        histories, observers,
        lambda pid, suspected, trusted: trusted != leader,
    )
    return stabilized, leader


def qos_report(
    trace: TraceSource,
    correct: Optional[FrozenSet[ProcessId]] = None,
    channel: str = "fd",
    period: Optional[Time] = None,
    cost_channels: Optional[Sequence[str]] = None,
    bound_channel: str = "fdp",
    n: Optional[int] = None,
    bound_tolerance: float = BOUND_TOLERANCE,
) -> QoSReport:
    """Measure the QoS of one recorded run (see module docstring).

    Parameters:
        trace: anything :func:`repro.obs.as_trace` accepts — a live
            ``MemorySink``, an event list, a ``.jsonl`` path, or a merged
            postmortem stream.
        correct: the correct processes; inferred from the recorded
            ``crash`` events when omitted.
        channel: which detector's ``fd`` events to analyze.
        period: the stack's heartbeat period.  When given, per-channel
            message cost over the post-stabilization window is computed
            and the 2(n−1) bound checked on *bound_channel*.
        cost_channels: channels to cost (default: every channel with
            network sends in the window).
        n: system size; inferred from the highest pid seen when omitted.
    """
    trace = as_trace(trace)
    events = trace.events
    end_time = max((ev.time for ev in events), default=0.0)
    if n is None:
        pids = {ev.pid for ev in events if ev.pid is not None}
        for ev in events:
            if ev.kind in ("send", "deliver"):
                pids.add(ev.get("src"))
                pids.add(ev.get("dst"))
        pids.discard(None)
        n = max(pids) + 1 if pids else 0
    crashes = crash_times(trace)
    if correct is None:
        correct = frozenset(range(n)) - frozenset(crashes)
    correct = frozenset(correct)

    histories = build_histories(trace, channel=channel)
    detection = {
        victim: detection_latency(trace, victim, at, correct, channel=channel)
        for victim, at in sorted(crashes.items())
    }
    mistakes = _find_mistakes(
        {pid: histories[pid] for pid in histories if pid in correct}, crashes
    )
    mistake_rate = len(mistakes) / end_time if end_time > 0 else None
    durations = [m.duration for m in mistakes if m.duration is not None]
    mean_duration = sum(durations) / len(durations) if durations else None
    stabilized_at, leader = _leader_stabilization(histories, correct)

    report = QoSReport(
        n=n, channel=channel, end_time=end_time, correct=correct,
        crashes=dict(sorted(crashes.items())), detection=detection,
        mistakes=mistakes, mistake_rate=mistake_rate,
        mean_mistake_duration=mean_duration,
        leader_stabilized_at=stabilized_at, stable_leader=leader,
    )
    if period is None or period <= 0:
        return report

    # ----- post-stabilization message cost -----
    report.period = period
    settle_points = [stabilized_at if stabilized_at is not None else 0.0]
    for victim, at in crashes.items():
        latency = detection.get(victim)
        if latency is not None:
            settle_points.append(at + latency)
    window_start = max(settle_points) + period
    if end_time - window_start < 2 * period:
        # Too little stable suffix to measure a rate meaningfully.
        report.cost_window = None
        return report
    report.cost_window = (window_start, end_time)
    if cost_channels is None:
        seen = {
            ev.get("channel") for ev in events
            if ev.kind == "send" and not ev.get("loopback")
            and window_start <= ev.time <= end_time
        }
        cost_channels = sorted(ch for ch in seen if ch)
    report.message_cost = {
        ch: steady_state_message_rate(
            trace, (ch,), (window_start, end_time), period
        )
        for ch in cost_channels
    }
    report.bound_channel = bound_channel
    report.bound_value = float(transformation_bound(n))
    if bound_channel in report.message_cost:
        cost = report.message_cost[bound_channel]
        if cost > 0:
            report.bound_ok = (
                cost <= report.bound_value * (1.0 + bound_tolerance)
            )
    return report
