"""Quantitative run metrics, measured from traces.

These are the measurement functions behind the benchmark harnesses:
messages per round, phases per round, rounds to (and after) stabilization,
steady-state message rates of failure detectors, and crash-detection
latency.  Everything is computed from trace events the protocols emit —
nothing is hard-coded from the paper's analysis.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..obs.reader import TraceSource, as_trace
from ..types import ProcessId, Time
from .fd_properties import build_histories

__all__ = [
    "messages_per_round",
    "mean_messages_per_round",
    "phases_per_round",
    "max_phases_per_round",
    "round_at",
    "rounds_after",
    "steady_state_message_rate",
    "detection_latency",
    "channel_message_count",
]


# --------------------------------------------------------------------------
# Message counting
# --------------------------------------------------------------------------

def channel_message_count(
    trace: TraceSource,
    channel: str,
    include_loopback: bool = False,
    after: Optional[Time] = None,
    before: Optional[Time] = None,
) -> int:
    """Number of ``send`` events on *channel* (network messages only, unless
    *include_loopback*)."""
    count = 0
    for ev in as_trace(trace).events:
        if ev.kind != "send" or ev.get("channel") != channel:
            continue
        if not include_loopback and ev.get("loopback"):
            continue
        if after is not None and ev.time < after:
            continue
        if before is not None and ev.time > before:
            continue
        count += 1
    return count


def messages_per_round(
    trace: TraceSource, channel: str = "consensus"
) -> Dict[int, int]:
    """Network messages sent on *channel*, grouped by protocol round.

    Only messages tagged with a round number count (protocol messages);
    Reliable Broadcast traffic lives on its own channel and is excluded, as
    in the paper's Section 5.4 accounting.
    """
    per_round: Dict[int, int] = {}
    for ev in as_trace(trace).events:
        if (
            ev.kind == "send"
            and ev.get("channel") == channel
            and not ev.get("loopback")
            and ev.get("round") is not None
        ):
            r = ev.get("round")
            per_round[r] = per_round.get(r, 0) + 1
    return per_round


def mean_messages_per_round(trace: TraceSource, channel: str = "consensus") -> float:
    """Average of :func:`messages_per_round` over completed rounds."""
    per_round = messages_per_round(trace, channel)
    if not per_round:
        return 0.0
    return sum(per_round.values()) / len(per_round)


# --------------------------------------------------------------------------
# Phases and rounds
# --------------------------------------------------------------------------

def phases_per_round(trace: TraceSource, algo: str) -> Dict[int, Set[int]]:
    """Distinct phase labels entered in each round of *algo* (union over
    all processes — coordinator-only phases count once)."""
    per_round: Dict[int, Set[int]] = {}
    for ev in as_trace(trace).events:
        if ev.kind == "phase" and ev.get("algo") == algo:
            per_round.setdefault(ev.get("round"), set()).add(ev.get("phase"))
    return per_round


def max_phases_per_round(trace: TraceSource, algo: str) -> int:
    """The protocol's phase count: the maximum number of distinct phases any
    round went through."""
    per_round = phases_per_round(trace, algo)
    return max((len(v) for v in per_round.values()), default=0)


def round_at(trace: TraceSource, pid: ProcessId, time: Time, algo: str) -> int:
    """The round process *pid* was in at *time* (0 if it had not started)."""
    current = 0
    for ev in as_trace(trace).events:
        if ev.time > time:
            break
        if ev.kind == "round" and ev.pid == pid and ev.get("algo") == algo:
            current = ev.get("round")
    return current


def rounds_after(
    trace: TraceSource, time: Time, algo: str
) -> Dict[ProcessId, Optional[int]]:
    """For every deciding process: how many rounds it needed *after* *time*.

    Defined as ``decision_round − round_at(time) + 1`` — i.e. 1 means the
    process decided in the round it was executing when *time* passed (the
    paper's "consensus is solved in only one round" in stability).
    ``None`` for processes that never decided.
    """
    out: Dict[ProcessId, Optional[int]] = {}
    trace = as_trace(trace)
    for ev in trace.events:
        if ev.kind == "decide" and ev.get("algo") == algo:
            decision_round = ev.get("round")
            if decision_round is None:
                out[ev.pid] = None
            else:
                start_round = max(1, round_at(trace, ev.pid, time, algo))
                out[ev.pid] = decision_round - start_round + 1
    return out


def rounds_after_system(trace: TraceSource, time: Time, algo: str) -> Optional[int]:
    """Rounds needed after *time*, measured from the *system frontier*.

    ``decision_round − max_p round_at(p, time) `` — i.e. how many fresh
    rounds (rounds started entirely after *time*) were needed.  Rounds that
    were already in flight when the detector stabilized inevitably drain
    first; the paper's "one round after stabilization" claim is about fresh
    rounds, and this is the E6 measure (1 = decided in the first fresh
    round).  ``None`` if nobody decided.
    """
    decision_round: Optional[int] = None
    pids = set()
    trace = as_trace(trace)
    for ev in trace.events:
        if ev.kind == "round" and ev.get("algo") == algo:
            pids.add(ev.pid)
        if ev.kind == "decide" and ev.get("algo") == algo:
            if ev.get("round") is not None:
                r = ev.get("round")
                decision_round = r if decision_round is None else min(decision_round, r)
    if decision_round is None:
        return None
    frontier = max(
        (round_at(trace, pid, time, algo) for pid in pids), default=0
    )
    return decision_round - frontier


# --------------------------------------------------------------------------
# Failure-detector metrics
# --------------------------------------------------------------------------

def steady_state_message_rate(
    trace: TraceSource,
    channels: Tuple[str, ...],
    window: Tuple[Time, Time],
    period: Time,
) -> float:
    """Messages per *period* sent on *channels* during *window* — the
    "messages periodically sent" cost measure of Section 4."""
    t0, t1 = window
    total = sum(
        channel_message_count(trace, ch, after=t0, before=t1) for ch in channels
    )
    spans = (t1 - t0) / period
    return total / spans if spans > 0 else 0.0


def detection_latency(
    trace: TraceSource,
    crashed_pid: ProcessId,
    crash_time: Time,
    correct: FrozenSet[ProcessId],
    channel: str = "fd",
) -> Optional[Time]:
    """Time from the crash until *every* correct process suspects the
    crashed process permanently (None if some never does)."""
    histories = build_histories(trace, channel=channel)
    worst: Time = crash_time
    for pid in correct:
        # Start of the final (permanent) suspicion period at this process.
        permanent_since: Optional[Time] = None
        for time, suspected, _ in histories.get(pid, []):
            if crashed_pid in suspected:
                if permanent_since is None:
                    permanent_since = time
            else:
                permanent_since = None
        if permanent_since is None:
            return None
        if permanent_since > worst:
            worst = permanent_since
    return worst - crash_time
