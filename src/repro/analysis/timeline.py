"""ASCII timeline rendering of detector and consensus behaviour.

Turning traces into terminal-friendly timelines makes the eventual
properties *visible*: leadership converging to one column of identical
digits, suspicion of a crashed process washing across all rows, rounds
racing until a decision.  Used by the examples and handy in any REPL
session; everything returns plain strings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..obs.reader import TraceSource, as_trace
from ..types import ProcessId, Time
from .fd_properties import build_histories

__all__ = ["leader_timeline", "suspicion_timeline", "round_timeline"]


def _buckets(end: Time, width: int) -> List[Time]:
    step = end / width if end > 0 else 1.0
    return [step * (i + 1) for i in range(width)]


def _fmt_horizon(t: Time) -> str:
    """Simulated horizons are tens-to-thousands of time units; live runs
    last fractions of a wall second.  Keep sub-second precision visible."""
    return f"{t:.0f}" if t >= 10 else f"{t:.2f}"


def _sample(history, t: Time):
    """Last record at or before *t* (histories are step functions)."""
    current = None
    for record in history:
        if record[0] > t:
            break
        current = record
    return current


def leader_timeline(
    trace: TraceSource,
    channel: str = "fd",
    width: int = 72,
    end: Optional[Time] = None,
    crash_marker: str = "x",
) -> str:
    """One row per process; each column shows who that process trusted.

    Digits are ``trusted % 10``; ``.`` means no trusted output; columns
    after the process's crash show *crash_marker*.  Convergence reads as
    all rows ending in the same digit.
    """
    trace = as_trace(trace)
    histories = build_histories(trace, channel=channel)
    if not histories:
        return "(no detector output on channel %r)" % channel
    crash_at: Dict[ProcessId, Time] = {
        ev.pid: ev.time for ev in trace.events if ev.kind == "crash"
    }
    horizon = end if end is not None else trace.end_time
    columns = _buckets(horizon, width)
    lines = [f"leader timeline (channel {channel!r}, t in [0, {_fmt_horizon(horizon)}])"]
    for pid in sorted(histories):
        cells = []
        for t in columns:
            if pid in crash_at and t >= crash_at[pid]:
                cells.append(crash_marker)
                continue
            record = _sample(histories[pid], t)
            trusted = record[2] if record else None
            cells.append("." if trusted is None else str(trusted % 10))
        lines.append(f"p{pid:<2d} |" + "".join(cells) + "|")
    return "\n".join(lines)


def suspicion_timeline(
    trace: TraceSource,
    target: ProcessId,
    channel: str = "fd",
    width: int = 72,
    end: Optional[Time] = None,
) -> str:
    """One row per process; ``#`` where that process suspected *target*.

    After a crash of *target*, completeness reads as every row turning to
    solid ``#``; accuracy reads as rows staying clear while it is alive.
    """
    trace = as_trace(trace)
    histories = build_histories(trace, channel=channel)
    crash_at: Dict[ProcessId, Time] = {
        ev.pid: ev.time for ev in trace.events if ev.kind == "crash"
    }
    horizon = end if end is not None else trace.end_time
    columns = _buckets(horizon, width)
    lines = [
        f"suspicion of p{target} (channel {channel!r}, t in [0, {_fmt_horizon(horizon)}])"
    ]
    if target in crash_at:
        lines[0] += f"; p{target} crashes at t={crash_at[target]:.0f}"
    for pid in sorted(histories):
        if pid == target:
            continue
        cells = []
        for t in columns:
            if pid in crash_at and t >= crash_at[pid]:
                cells.append("x")
                continue
            record = _sample(histories[pid], t)
            suspected = record[1] if record else frozenset()
            cells.append("#" if target in suspected else ".")
        lines.append(f"p{pid:<2d} |" + "".join(cells) + "|")
    return "\n".join(lines)


def round_timeline(
    trace: TraceSource,
    algo: str,
    width: int = 72,
    end: Optional[Time] = None,
) -> str:
    """One row per process; columns show the consensus round (mod 10) the
    process was in, with ``D`` from its decision onward."""
    trace = as_trace(trace)
    rounds: Dict[ProcessId, List] = {}
    decisions: Dict[ProcessId, Time] = {}
    for ev in trace.events:
        if ev.get("algo") != algo:
            continue
        if ev.kind == "round":
            rounds.setdefault(ev.pid, []).append((ev.time, ev.get("round")))
        elif ev.kind == "decide":
            decisions[ev.pid] = ev.time
    if not rounds:
        return f"(no rounds traced for algo {algo!r})"
    horizon = end if end is not None else trace.end_time
    columns = _buckets(horizon, width)
    lines = [f"rounds of {algo!r} (t in [0, {_fmt_horizon(horizon)}]; D = decided)"]
    for pid in sorted(rounds):
        cells = []
        for t in columns:
            if pid in decisions and t >= decisions[pid]:
                cells.append("D")
                continue
            current = None
            for time, r in rounds[pid]:
                if time > t:
                    break
                current = r
            cells.append("." if current is None else str(current % 10))
        lines.append(f"p{pid:<2d} |" + "".join(cells) + "|")
    return "\n".join(lines)
