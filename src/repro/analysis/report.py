"""Aggregate experiment report.

Collects the tables the benchmark suite wrote under ``benchmarks/results/``
into one document — the quick way to see the whole reproduction after
``pytest benchmarks/ --benchmark-only``.  Exposed on the CLI as
``python -m repro report``.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

__all__ = ["collect_results", "render_report"]

#: Canonical experiment ordering for the report.
_ORDER = [
    "e1_class_properties",
    "e2_transformation",
    "e3_fd_message_cost",
    "e4_phases_per_round",
    "e5_messages_per_round",
    "e6_rounds_after_stability",
    "e7_nack_tolerance",
    "e8_detection_latency",
    "e9_consensus_validation",
    "e10_end_to_end",
    "a1_merged_phase01",
    "a2_accuracy_ablation",
    "a3_adaptive_timeouts",
    "a4_leader_stability",
]


def collect_results(results_dir: Optional[pathlib.Path] = None) -> List[str]:
    """Return the stored experiment tables, in canonical order.

    Unknown extra files sort after the known ones; missing experiments are
    skipped (run the benchmarks first).
    """
    if results_dir is None:
        results_dir = (
            pathlib.Path(__file__).resolve().parents[3]
            / "benchmarks" / "results"
        )
    if not results_dir.is_dir():
        return []
    files = {path.stem: path for path in results_dir.glob("*.txt")}
    ordered = [files.pop(stem) for stem in _ORDER if stem in files]
    ordered.extend(path for _, path in sorted(files.items()))
    return [path.read_text().rstrip() for path in ordered]


def render_report(results_dir: Optional[pathlib.Path] = None) -> str:
    """One document with every stored experiment table."""
    tables = collect_results(results_dir)
    if not tables:
        return (
            "No stored results found.  Run:\n"
            "    pytest benchmarks/ --benchmark-only\n"
            "to regenerate every experiment table."
        )
    separator = "\n\n" + "~" * 78 + "\n\n"
    header = (
        "Eventually Consistent Failure Detectors — experiment report\n"
        f"({len(tables)} experiments; see EXPERIMENTS.md for commentary)\n"
    )
    return header + separator + separator.join(tables)
