"""Trace-based checkers for failure-detector properties.

"Eventually permanently P" cannot be decided on a finite run, so the
checkers compute the **earliest time from which P holds for the rest of the
run** (the measured stabilization time) and declare the property satisfied
when that time leaves a non-trivial stable suffix — by default the final
``margin`` fraction of the run must be clean.  Runs used by tests and
benchmarks are long enough that real stabilization (GST, oracle scripts,
adaptive timeouts) happens well before the margin.

All checkers quantify over *correct* processes only, exactly like the
definitions in Section 1.1 of the paper.

Every checker takes any :data:`~repro.obs.reader.TraceSource` — a live
in-memory trace, a ``.jsonl`` file path, or a merged postmortem stream —
and coerces it with :func:`repro.obs.as_trace` (free for the in-memory
case), so live and shipped traces are checked by the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import PropertyViolation
from ..fd.classes import FDClass
from ..obs.reader import TraceSource, as_trace
from ..types import ProcessId, Time

__all__ = [
    "FDRecord",
    "PropertyCheck",
    "build_histories",
    "crash_times",
    "check_strong_completeness",
    "check_weak_completeness",
    "check_eventual_strong_accuracy",
    "check_eventual_weak_accuracy",
    "check_omega",
    "check_trusted_not_suspected",
    "check_fd_class",
    "require_fd_class",
]

#: One sampled detector output: (time, suspected set, trusted process).
FDRecord = Tuple[Time, FrozenSet[ProcessId], Optional[ProcessId]]


@dataclass(frozen=True)
class PropertyCheck:
    """Result of checking one eventual property on one run."""

    name: str
    ok: bool
    stabilized_at: Optional[Time]
    end_time: Time
    witness: Optional[ProcessId] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


# --------------------------------------------------------------------------
# Trace extraction
# --------------------------------------------------------------------------

def build_histories(
    trace: TraceSource, channel: str = "fd"
) -> Dict[ProcessId, List[FDRecord]]:
    """Per-process detector output histories for one detector *channel*."""
    histories: Dict[ProcessId, List[FDRecord]] = {}
    for ev in as_trace(trace).events:
        if ev.kind == "fd" and ev.get("channel") == channel:
            histories.setdefault(ev.pid, []).append(
                (ev.time, ev.get("suspected"), ev.get("trusted"))
            )
    return histories


def crash_times(trace: TraceSource) -> Dict[ProcessId, Time]:
    """``pid -> crash time`` for every crash recorded in *trace*."""
    return {
        ev.pid: ev.time for ev in as_trace(trace).events if ev.kind == "crash"
    }


# --------------------------------------------------------------------------
# Core suffix machinery
# --------------------------------------------------------------------------

def _stabilization(
    histories: Dict[ProcessId, List[FDRecord]],
    pids: FrozenSet[ProcessId],
    violated,
) -> Optional[Time]:
    """Earliest time from which ``violated(pid, suspected, trusted)`` is
    false at every process in *pids* for the remainder of the run.

    Histories are step functions: a record's value holds until the next
    record, so the stabilization point is the timestamp of the first record
    opening the final clean stretch.  Returns ``None`` when some process is
    still violating at its last record (never stabilizes) or has no records
    at all (nothing can be verified about it).
    """
    worst = 0.0
    for pid in pids:
        records = histories.get(pid, [])
        clean_since: Optional[Time] = None
        for time, suspected, trusted in records:
            if violated(pid, suspected, trusted):
                clean_since = None
            elif clean_since is None:
                clean_since = time
        if clean_since is None:
            return None
        if clean_since > worst:
            worst = clean_since
    return worst


def _result(
    name: str,
    stabilized_at: Optional[Time],
    end_time: Time,
    margin: float,
    witness: Optional[ProcessId] = None,
    detail: str = "",
) -> PropertyCheck:
    if stabilized_at is None:
        return PropertyCheck(name, False, None, end_time, witness, detail)
    ok = stabilized_at <= end_time * (1.0 - margin)
    return PropertyCheck(name, ok, stabilized_at, end_time, witness, detail)


# --------------------------------------------------------------------------
# Individual properties
# --------------------------------------------------------------------------

def check_strong_completeness(
    histories: Dict[ProcessId, List[FDRecord]],
    crashed: Dict[ProcessId, Time],
    correct: FrozenSet[ProcessId],
    end_time: Time,
    margin: float = 0.1,
) -> PropertyCheck:
    """Eventually every crashed process is permanently suspected by *every*
    correct process."""
    if not crashed:
        return PropertyCheck("strong-completeness", True, 0.0, end_time,
                             detail="vacuous: no crashes")
    crashed_set = frozenset(crashed)

    def violated(pid, suspected, trusted):
        return not crashed_set <= suspected

    worst = _stabilization(histories, correct, violated)
    if worst is not None:
        worst = max(worst, max(crashed.values()))
    return _result("strong-completeness", worst, end_time, margin)


def check_weak_completeness(
    histories: Dict[ProcessId, List[FDRecord]],
    crashed: Dict[ProcessId, Time],
    correct: FrozenSet[ProcessId],
    end_time: Time,
    margin: float = 0.1,
) -> PropertyCheck:
    """Eventually every crashed process is permanently suspected by *some*
    correct process."""
    if not crashed:
        return PropertyCheck("weak-completeness", True, 0.0, end_time,
                             detail="vacuous: no crashes")
    crashed_set = frozenset(crashed)
    best: Optional[Tuple[Time, ProcessId]] = None
    for pid in correct:
        worst = _stabilization(
            histories, frozenset({pid}),
            lambda _p, suspected, _t: not crashed_set <= suspected,
        )
        if worst is None:
            continue
        worst = max(worst, max(crashed.values()))
        if best is None or worst < best[0]:
            best = (worst, pid)
    if best is None:
        return PropertyCheck("weak-completeness", False, None, end_time)
    return _result("weak-completeness", best[0], end_time, margin,
                   witness=best[1])


def check_eventual_strong_accuracy(
    histories: Dict[ProcessId, List[FDRecord]],
    correct: FrozenSet[ProcessId],
    end_time: Time,
    margin: float = 0.1,
) -> PropertyCheck:
    """Eventually *no* correct process is suspected by any correct process."""

    def violated(pid, suspected, trusted):
        return bool(suspected & correct)

    worst = _stabilization(histories, correct, violated)
    return _result("eventual-strong-accuracy", worst, end_time, margin)


def check_eventual_weak_accuracy(
    histories: Dict[ProcessId, List[FDRecord]],
    correct: FrozenSet[ProcessId],
    end_time: Time,
    margin: float = 0.1,
) -> PropertyCheck:
    """Eventually *some* correct process is suspected by no correct process."""
    best: Optional[Tuple[Time, ProcessId]] = None
    for q in correct:
        worst = _stabilization(
            histories, correct,
            lambda _p, suspected, _t, q=q: q in suspected,
        )
        if worst is not None and (best is None or worst < best[0]):
            best = (worst, q)
    if best is None:
        return PropertyCheck("eventual-weak-accuracy", False, None, end_time)
    return _result("eventual-weak-accuracy", best[0], end_time, margin,
                   witness=best[1])


def check_omega(
    histories: Dict[ProcessId, List[FDRecord]],
    correct: FrozenSet[ProcessId],
    end_time: Time,
    margin: float = 0.1,
) -> PropertyCheck:
    """Property 1: eventually every correct process permanently trusts the
    same *correct* process."""
    best: Optional[Tuple[Time, ProcessId]] = None
    for q in correct:
        worst = _stabilization(
            histories, correct,
            lambda _p, _s, trusted, q=q: trusted != q,
        )
        if worst is not None and (best is None or worst < best[0]):
            best = (worst, q)
    if best is None:
        return PropertyCheck("omega", False, None, end_time)
    return _result("omega", best[0], end_time, margin, witness=best[1])


def check_trusted_not_suspected(
    histories: Dict[ProcessId, List[FDRecord]],
    correct: FrozenSet[ProcessId],
    end_time: Time,
    margin: float = 0.1,
) -> PropertyCheck:
    """Definition 1, third clause: eventually ``trusted ∉ suspected`` at
    every correct process."""

    def violated(pid, suspected, trusted):
        return trusted is not None and trusted in suspected

    worst = _stabilization(histories, correct, violated)
    return _result("trusted-not-suspected", worst, end_time, margin)


# --------------------------------------------------------------------------
# Whole-class checks
# --------------------------------------------------------------------------

def check_fd_class(
    trace: TraceSource,
    fd_class: FDClass,
    correct: FrozenSet[ProcessId],
    channel: str = "fd",
    margin: float = 0.1,
    end_time: Optional[Time] = None,
) -> Dict[str, PropertyCheck]:
    """Check every property required by *fd_class* on one run's trace.

    Returns a mapping ``property name -> PropertyCheck``; the run satisfies
    the class iff every entry is ok.
    """
    trace = as_trace(trace)
    histories = build_histories(trace, channel=channel)
    crashed = crash_times(trace)
    end = end_time if end_time is not None else trace.end_time
    results: Dict[str, PropertyCheck] = {}

    if fd_class.completeness == "strong":
        results["completeness"] = check_strong_completeness(
            histories, crashed, correct, end, margin
        )
    elif fd_class.completeness == "weak":
        results["completeness"] = check_weak_completeness(
            histories, crashed, correct, end, margin
        )

    if fd_class.accuracy in ("eventual-strong", "strong"):
        results["accuracy"] = check_eventual_strong_accuracy(
            histories, correct, end, margin
        )
    elif fd_class.accuracy == "eventual-weak":
        results["accuracy"] = check_eventual_weak_accuracy(
            histories, correct, end, margin
        )

    if fd_class.leader:
        results["omega"] = check_omega(histories, correct, end, margin)

    if fd_class.trusted_not_suspected:
        results["trusted-not-suspected"] = check_trusted_not_suspected(
            histories, correct, end, margin
        )
    return results


def check_fd_class_on_world(
    world,
    fd_class: FDClass,
    channel: str = "fd",
    margin: float = 0.1,
) -> Dict[str, PropertyCheck]:
    """:func:`check_fd_class` against a :class:`~repro.sim.world.World`.

    Uses the world's clock as the run end (a stabilized detector stops
    emitting trace events, so the trace's last timestamp can badly
    underestimate how long the stable suffix actually was) and the world's
    current correct set.
    """
    return check_fd_class(
        world.trace,
        fd_class,
        world.correct_pids,
        channel=channel,
        margin=margin,
        end_time=world.now,
    )


def require_fd_class(
    trace: TraceSource,
    fd_class: FDClass,
    correct: FrozenSet[ProcessId],
    channel: str = "fd",
    margin: float = 0.1,
) -> Dict[str, PropertyCheck]:
    """Like :func:`check_fd_class` but raises :class:`PropertyViolation` on
    the first failed property."""
    results = check_fd_class(trace, fd_class, correct, channel, margin)
    for name, result in results.items():
        if not result.ok:
            raise PropertyViolation(
                f"class {fd_class.symbol} violates {name}: {result}"
            )
    return results
