"""Trace analysis: failure-detector and consensus property checkers, and
quantitative run metrics (messages/phases/rounds, detection latency)."""

from .consensus_properties import (
    ConsensusOutcome,
    check_consensus,
    extract_outcome,
    require_consensus,
)
from .fd_properties import (
    FDRecord,
    PropertyCheck,
    build_histories,
    check_eventual_strong_accuracy,
    check_eventual_weak_accuracy,
    check_fd_class,
    check_fd_class_on_world,
    check_omega,
    check_strong_completeness,
    check_trusted_not_suspected,
    check_weak_completeness,
    crash_times,
    require_fd_class,
)
from .metrics import (
    channel_message_count,
    detection_latency,
    max_phases_per_round,
    mean_messages_per_round,
    messages_per_round,
    phases_per_round,
    round_at,
    rounds_after,
    rounds_after_system,
    steady_state_message_rate,
)
from .qos import Mistake, QoSReport, qos_report, transformation_bound
from .report import collect_results, render_report
from .stats import Summary, geometric_mean, summarize
from .timeline import leader_timeline, round_timeline, suspicion_timeline

__all__ = [
    "ConsensusOutcome",
    "check_consensus",
    "extract_outcome",
    "require_consensus",
    "FDRecord",
    "PropertyCheck",
    "build_histories",
    "check_eventual_strong_accuracy",
    "check_eventual_weak_accuracy",
    "check_fd_class",
    "check_fd_class_on_world",
    "check_omega",
    "check_strong_completeness",
    "check_trusted_not_suspected",
    "check_weak_completeness",
    "crash_times",
    "require_fd_class",
    "channel_message_count",
    "detection_latency",
    "max_phases_per_round",
    "mean_messages_per_round",
    "messages_per_round",
    "phases_per_round",
    "round_at",
    "rounds_after",
    "rounds_after_system",
    "steady_state_message_rate",
    "Mistake",
    "QoSReport",
    "qos_report",
    "transformation_bound",
    "Summary",
    "collect_results",
    "render_report",
    "leader_timeline",
    "round_timeline",
    "suspicion_timeline",
    "geometric_mean",
    "summarize",
]
