"""Small statistics helpers shared by benchmarks and tests."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["Summary", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} med={self.median:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of *values* (population std; empty input allowed)."""
    xs: List[float] = sorted(float(v) for v in values)
    if not xs:
        return Summary(0, math.nan, math.nan, math.nan, math.nan, math.nan)
    n = len(xs)
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / n
    mid = n // 2
    median = xs[mid] if n % 2 else (xs[mid - 1] + xs[mid]) / 2
    return Summary(n, mean, math.sqrt(var), xs[0], median, xs[-1])


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (values must be positive)."""
    if not values:
        return math.nan
    return math.exp(sum(math.log(v) for v in values) / len(values))
