"""Workload and scenario generators for tests and benchmarks."""

from .crashes import cascade, minority_crashes, single_crash
from .networks import (
    asynchronous_link,
    fair_lossy_link,
    lan_link,
    partially_synchronous_link,
    wan_link,
)
from .scenarios import (
    DEFAULT_FD_CLASS,
    ConsensusRun,
    consensus_run,
    nice_run,
    stabilizing_run,
    theorem3_run,
)

__all__ = [
    "cascade",
    "minority_crashes",
    "single_crash",
    "asynchronous_link",
    "fair_lossy_link",
    "lan_link",
    "partially_synchronous_link",
    "wan_link",
    "DEFAULT_FD_CLASS",
    "ConsensusRun",
    "consensus_run",
    "nice_run",
    "stabilizing_run",
    "theorem3_run",
]
