"""Canonical network conditions used across tests and benchmarks."""

from __future__ import annotations

from ..sim.delays import ExponentialDelay, FixedDelay, SpikeDelay, UniformDelay
from ..sim.links import (
    FairLossyLink,
    Link,
    PartiallySynchronousLink,
    ReliableLink,
)
from ..types import Time

__all__ = [
    "lan_link",
    "wan_link",
    "asynchronous_link",
    "partially_synchronous_link",
    "fair_lossy_link",
]


def lan_link() -> ReliableLink:
    """Low, tight delays — the 'everything is nice' network."""
    return ReliableLink(UniformDelay(0.2, 1.0))


def wan_link() -> ReliableLink:
    """Higher delays with an exponential tail."""
    return ReliableLink(ExponentialDelay(base=2.0, mean=3.0, cap=40.0))


def asynchronous_link(spike_prob: float = 0.05) -> ReliableLink:
    """Mostly-fast delays with rare large spikes — stresses algorithms that
    must make no timing assumptions."""
    return ReliableLink(
        SpikeDelay(UniformDelay(0.5, 2.0), spike_prob, 20.0, 120.0)
    )


def partially_synchronous_link(
    gst: Time = 100.0,
    delta: Time = 2.0,
    pre_max: Time = 40.0,
) -> PartiallySynchronousLink:
    """GST/Δ link: chaotic (delays up to *pre_max*) before *gst*, then
    bounded by *delta*."""
    return PartiallySynchronousLink(
        gst=gst,
        pre_gst=UniformDelay(0.5, pre_max),
        post_gst=UniformDelay(0.2, delta),
    )


def fair_lossy_link(
    loss_prob: float = 0.3,
    inner: Link | None = None,
) -> FairLossyLink:
    """Bernoulli fair-lossy link over a LAN-ish delay profile."""
    return FairLossyLink(
        inner=inner if inner is not None else lan_link(), loss_prob=loss_prob
    )
