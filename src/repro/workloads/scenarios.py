"""Canonical experiment scenarios.

Each function assembles a complete world for one of the experiment families
of DESIGN.md, so benchmarks and integration tests share exactly the same
setups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..consensus.base import ConsensusProtocol
from ..consensus.builders import attach_consensus, propose_all
from ..fd.classes import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_STRONG,
    FDClass,
    OMEGA,
)
from ..fd.oracle import OracleConfig, OracleFailureDetector
from ..sim.failures import CrashSchedule, no_crashes
from ..sim.links import Link
from ..sim.world import World
from ..types import ProcessId, Time
from .networks import lan_link

__all__ = [
    "ConsensusRun",
    "consensus_run",
    "nice_run",
    "stabilizing_run",
    "theorem3_run",
    "DEFAULT_FD_CLASS",
]

#: Default detector class for each algorithm (what each minimally needs).
DEFAULT_FD_CLASS = {
    "ec": EVENTUALLY_CONSISTENT,
    "ct": EVENTUALLY_STRONG,
    "mr": OMEGA,
    "paxos": OMEGA,
}


@dataclass
class ConsensusRun:
    """A fully wired consensus experiment, ready to :meth:`run`."""

    world: World
    protocols: List[ConsensusProtocol]
    algo: str
    stabilize_time: Time

    def run(self, until: Time = 3000.0, max_events: Optional[int] = None) -> "ConsensusRun":
        """Run the world; returns self for chaining."""
        self.world.run(until=until, max_events=max_events)
        return self

    @property
    def decided(self) -> bool:
        """True if every correct process decided."""
        return all(
            p.decided
            for p in self.protocols
            if not self.world.process(p.pid).crashed
        )

    @property
    def decisions(self) -> List[Any]:
        return [p.decision for p in self.protocols if p.decided]


def consensus_run(
    algo: str,
    n: int = 5,
    seed: int = 0,
    fd_class: Optional[FDClass] = None,
    stabilize_time: Time = 0.0,
    pre_behavior: str = "erratic",
    leader: Optional[ProcessId] = None,
    slander: frozenset = frozenset(),
    crashes: Optional[CrashSchedule] = None,
    link: Optional[Link] = None,
    values: Optional[Sequence[Any]] = None,
    **proto_kwargs: Any,
) -> ConsensusRun:
    """Build one consensus experiment over an oracle detector.

    The oracle is scripted with *stabilize_time* / *pre_behavior* /
    *leader* / *slander*; crashes come from *crashes* (default none); the
    network from *link* (default LAN).  All processes propose immediately
    (``values[pid]``, or their pid).
    """
    if fd_class is None:
        fd_class = DEFAULT_FD_CLASS[algo]
    world = World(n=n, seed=seed, default_link=link if link is not None else lan_link())
    config = OracleConfig(
        stabilize_time=stabilize_time,
        pre_behavior=pre_behavior,
        leader=leader,
        slander=slander,
    )
    protocols = attach_consensus(
        world,
        algo,
        lambda pid: OracleFailureDetector(fd_class, config),
        **proto_kwargs,
    )
    world.start()
    propose_all(protocols, values)
    if crashes is not None:
        crashes.apply(world)
    return ConsensusRun(world, protocols, algo, stabilize_time)


def nice_run(algo: str, n: int = 5, seed: int = 0, **kwargs: Any) -> ConsensusRun:
    """The paper's "normal case": no crashes, no detector mistakes — the
    setting of the Section 5.4 message/phase counts (E4/E5)."""
    return consensus_run(
        algo,
        n=n,
        seed=seed,
        stabilize_time=0.0,
        pre_behavior="ideal",
        crashes=no_crashes(),
        **kwargs,
    )


def stabilizing_run(
    algo: str,
    n: int = 5,
    seed: int = 0,
    stabilize_time: Time = 150.0,
    **kwargs: Any,
) -> ConsensusRun:
    """Erratic detector output until *stabilize_time*, then class-ideal."""
    return consensus_run(
        algo,
        n=n,
        seed=seed,
        stabilize_time=stabilize_time,
        pre_behavior="erratic",
        **kwargs,
    )


def theorem3_run(
    algo: str,
    n: int,
    leader: ProcessId,
    seed: int = 0,
    stabilize_time: Time = 200.0,
) -> ConsensusRun:
    """The Theorem 3 adversary.

    Until *stabilize_time* every process suspects every other process (and
    trusts itself), so no round can decide.  From then on the detector is
    stable with the designated *leader* never suspected — but every *other*
    correct process stays slandered forever, which ◇S permits.  A rotating-
    coordinator algorithm then has to grind through rounds until *leader*'s
    turn comes up; the ◇C algorithm elects it immediately.
    """
    slander = frozenset(q for q in range(n) if q != leader)
    return consensus_run(
        algo,
        n=n,
        seed=seed,
        stabilize_time=stabilize_time,
        pre_behavior="suspect-all",
        leader=leader,
        slander=slander,
        crashes=no_crashes(),
    )
