"""Crash-pattern generators for experiments.

Thin, purposeful wrappers around :mod:`repro.sim.failures` providing the
failure patterns the experiments need: minority crashes (consensus requires
f < n/2), cascades, and targeted single crashes.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from ..sim.failures import CrashEvent, CrashSchedule, random_crashes
from ..types import ProcessId, Time

__all__ = ["minority_crashes", "cascade", "single_crash"]


def minority_crashes(
    rng: random.Random,
    n: int,
    window: Tuple[Time, Time],
    protect: Sequence[ProcessId] = (),
) -> CrashSchedule:
    """Crash up to ``ceil(n/2) − 1`` random processes (so f < n/2 holds)."""
    max_crashes = (n - 1) // 2
    return random_crashes(rng, n, max_crashes, window, protect=protect)


def cascade(
    pids: Sequence[ProcessId],
    start: Time,
    gap: Time,
) -> CrashSchedule:
    """Crash *pids* one after another, *gap* time units apart."""
    return CrashSchedule(
        CrashEvent(pid, start + i * gap) for i, pid in enumerate(pids)
    )


def single_crash(pid: ProcessId, time: Time) -> CrashSchedule:
    """Crash exactly one process."""
    return CrashSchedule([CrashEvent(pid, time)])
