"""Chandra–Toueg-style all-to-all heartbeat ◇P.

Every process sends an ``ALIVE`` heartbeat to every other process each
*period* (n·(n−1) messages per period system-wide — the Θ(n²) baseline the
paper's Section 4 cost comparison is made against).  Each process keeps an
adaptive timeout per peer: missing a heartbeat raises a suspicion; a
heartbeat from a suspected peer retracts the suspicion and enlarges that
peer's timeout, so on partially synchronous links each peer is falsely
suspected at most a bounded number of times — the standard argument giving
eventual strong accuracy, hence ◇P.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .base import FailureDetector

__all__ = ["HeartbeatEventuallyPerfect"]

_ALIVE = "ALIVE"


class HeartbeatEventuallyPerfect(FailureDetector):
    """All-to-all heartbeat implementation of ◇P (see module docstring).

    Parameters:
        period: heartbeat send period (η).
        initial_timeout: starting timeout applied to every peer.
        timeout_increment: added to a peer's timeout on every false
            suspicion (the adaptation step of the partial-synchrony proof).
        check_period: how often timeouts are evaluated (defaults to
            ``period / 2``).
    """

    def __init__(
        self,
        period: Time = 5.0,
        initial_timeout: Time = 12.0,
        timeout_increment: Time = 5.0,
        check_period: Optional[Time] = None,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        if period <= 0 or initial_timeout <= 0 or timeout_increment < 0:
            raise ConfigurationError("heartbeat parameters must be positive")
        self.period = period
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.check_period = check_period if check_period is not None else period / 2
        self._last_heard: Dict[ProcessId, Time] = {}
        self._timeout: Dict[ProcessId, Time] = {}

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        now = self.now
        for q in range(self.n):
            if q != self.pid:
                self._last_heard[q] = now
                self._timeout[q] = self.initial_timeout
        super().on_start()
        self._beat()
        self.periodically(self.period, self._beat)
        self.periodically(self.check_period, self._check)

    # --------------------------------------------------------------- sending
    def _beat(self) -> None:
        self.broadcast(_ALIVE, tag="hb")

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: object) -> None:
        if payload != _ALIVE:  # pragma: no cover - defensive
            return
        self._last_heard[src] = self.now
        if src in self._suspected:
            # False suspicion: retract and widen the timeout (Task 4 logic).
            self._timeout[src] += self.timeout_increment
            self.metrics.inc("fd_timeout_adaptations_total", channel=self.channel)
            self._set_output(suspected=self._suspected - {src})

    # ------------------------------------------------------------ monitoring
    def _check(self) -> None:
        now = self.now
        overdue = {
            q
            for q, heard in self._last_heard.items()
            if q not in self._suspected and now - heard > self._timeout[q]
        }
        if overdue:
            self._set_output(suspected=self._suspected | overdue)

    # ---------------------------------------------------------- introspection
    def timeout_of(self, q: ProcessId) -> Time:
        """Current adaptive timeout for peer *q* (for tests/benchmarks)."""
        return self._timeout[q]
