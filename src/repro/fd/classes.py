"""The failure-detector class taxonomy (Fig. 1 of the paper, plus Ω and ◇C).

A :class:`FDClass` is a declarative description of the properties a detector
of that class must satisfy; the property checkers in
:mod:`repro.analysis.fd_properties` consume these descriptors to decide what
to verify on a trace.  The constants below cover every class the paper
discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FDClass",
    "PERFECT",
    "EVENTUALLY_PERFECT",
    "EVENTUALLY_QUASI_PERFECT",
    "EVENTUALLY_STRONG",
    "EVENTUALLY_WEAK",
    "OMEGA",
    "EVENTUALLY_CONSISTENT",
    "ALL_CLASSES",
]


@dataclass(frozen=True)
class FDClass:
    """Property bundle defining one failure-detector class.

    Attributes:
        name: human-readable name.
        symbol: the paper's notation (``DP`` renders ◇P, etc.).
        completeness: ``"strong"``, ``"weak"`` or ``None`` (no suspect-set
            contract, as for Ω).
        accuracy: ``"eventual-strong"``, ``"eventual-weak"``, ``"strong"``
            or ``None``.
        leader: whether the class guarantees the Ω eventual-leader property
            on its ``trusted`` output.
        trusted_not_suspected: whether eventually ``trusted() not in
            suspected()`` must hold (the extra clause of Definition 1).
    """

    name: str
    symbol: str
    completeness: Optional[str]
    accuracy: Optional[str]
    leader: bool = False
    trusted_not_suspected: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.symbol


#: Perfect detector P: strong completeness + (perpetual) strong accuracy.
PERFECT = FDClass("Perfect", "P", "strong", "strong")

#: ◇P: strong completeness + eventual strong accuracy.
EVENTUALLY_PERFECT = FDClass(
    "Eventually Perfect", "<>P", "strong", "eventual-strong"
)

#: ◇Q: weak completeness + eventual strong accuracy.
EVENTUALLY_QUASI_PERFECT = FDClass(
    "Eventually Quasi-Perfect", "<>Q", "weak", "eventual-strong"
)

#: ◇S: strong completeness + eventual weak accuracy.
EVENTUALLY_STRONG = FDClass(
    "Eventually Strong", "<>S", "strong", "eventual-weak"
)

#: ◇W: weak completeness + eventual weak accuracy.
EVENTUALLY_WEAK = FDClass(
    "Eventually Weak", "<>W", "weak", "eventual-weak"
)

#: Ω: eventual leader election only (no suspect-set contract).
OMEGA = FDClass("Omega", "Omega", None, None, leader=True)

#: ◇C: the paper's new class — ◇S suspect sets + Ω trusted output + the
#: requirement that eventually the trusted process is not suspected.
EVENTUALLY_CONSISTENT = FDClass(
    "Eventually Consistent",
    "<>C",
    "strong",
    "eventual-weak",
    leader=True,
    trusted_not_suspected=True,
)

#: Every class descriptor defined by this module.
ALL_CLASSES = (
    PERFECT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_QUASI_PERFECT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    OMEGA,
    EVENTUALLY_CONSISTENT,
)
