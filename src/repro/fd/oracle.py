"""Oracle (definitional) failure detectors.

An oracle detector computes its output directly from the *actual* failure
pattern of the run — it exchanges no messages.  Oracles serve two purposes:

* they give the consensus algorithms a detector whose behaviour is exactly
  the class definition, so algorithm tests isolate the algorithm from
  detector implementation artifacts, and
* their misbehaviour before a configurable *stabilization time* is fully
  scriptable, which is how the adversarial runs of the paper's proofs
  (notably Theorem 3's "everybody suspects everybody, then the worst
  possible leader stabilizes") are constructed.

The pre-stabilization behaviours:

``"erratic"``
    Random suspicions of arbitrary processes and a randomly changing trusted
    process — the generic adversary.
``"suspect-all"``
    Every process suspects every other process and trusts itself (the
    Theorem 3 adversary; with multiple self-trusting processes the ◇C
    consensus sees multiple simultaneous coordinators).
``"ideal"``
    Class-ideal output from time 0 (nice runs).

After stabilization the output is class-ideal, modulo the *slander* set:
◇S/◇W/◇C permit some correct processes to be suspected forever, and several
experiments (E7, Theorem 3) rely on exercising exactly that freedom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .base import FailureDetector
from .classes import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_QUASI_PERFECT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    FDClass,
    OMEGA,
    PERFECT,
)

__all__ = ["OracleConfig", "OracleFailureDetector", "oracle_factory"]


@dataclass(frozen=True)
class OracleConfig:
    """Behaviour script for an oracle detector.

    Attributes:
        stabilize_time: from this time on the output is class-ideal.
        pre_behavior: ``"erratic"``, ``"suspect-all"`` or ``"ideal"``.
        leader: the designated eventual leader; ``None`` picks the smallest
            currently-correct process id (which stabilizes once crashes
            stop).  Must be a correct process for class guarantees to hold.
        slander: correct processes that stay suspected forever (allowed by
            eventual *weak* accuracy; ignored by ◇P/P oracles).  The leader
            is always removed from this set.
        detection_lag: how long after a crash the ideal output starts
            suspecting the crashed process.
        poll_period: how often each module re-computes its output.
        erratic_suspect_prob: per-process suspicion probability in the
            erratic pre-behaviour.
    """

    stabilize_time: Time = 0.0
    pre_behavior: str = "erratic"
    leader: Optional[ProcessId] = None
    slander: FrozenSet[ProcessId] = field(default_factory=frozenset)
    detection_lag: Time = 0.0
    poll_period: Time = 1.0
    erratic_suspect_prob: float = 0.3

    def __post_init__(self) -> None:
        if self.pre_behavior not in ("erratic", "suspect-all", "ideal"):
            raise ConfigurationError(
                f"unknown pre_behavior {self.pre_behavior!r}"
            )
        if self.poll_period <= 0:
            raise ConfigurationError("poll_period must be positive")


class OracleFailureDetector(FailureDetector):
    """A scriptable, message-free detector of any class (see module doc)."""

    def __init__(
        self,
        fd_class: FDClass,
        config: Optional[OracleConfig] = None,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        self.fd_class = fd_class
        self.config = config if config is not None else OracleConfig()

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        self._recompute()
        super().on_start()
        self.periodically(self.config.poll_period, self._recompute)

    # -------------------------------------------------------------- internals
    def _crashed_now(self) -> FrozenSet[ProcessId]:
        """Processes whose crash is at least ``detection_lag`` old."""
        lag = self.config.detection_lag
        now = self.now
        return frozenset(
            p.pid
            for p in self.world.processes
            if p.crashed and p.crash_time is not None and now >= p.crash_time + lag
        )

    def _leader(self) -> Optional[ProcessId]:
        if self.config.leader is not None:
            return self.config.leader
        correct = self.world.correct_pids
        return min(correct) if correct else None

    _ideal_epoch: int = -1

    def _recompute(self) -> None:
        cfg = self.config
        if self.now < cfg.stabilize_time and cfg.pre_behavior != "ideal":
            suspected, trusted = self._pre_stabilization_output()
            self._ideal_epoch = -1
        else:
            # Ideal output depends only on the failure pattern (unless a
            # detection lag makes it time-dependent); skip recomputation
            # when no crash happened since the last poll — profiling shows
            # oracle polling dominating long adversarial runs otherwise.
            if (
                cfg.detection_lag == 0.0
                and self._ideal_epoch == self.world.crash_epoch
            ):
                return
            suspected, trusted = self._ideal_output()
            if cfg.detection_lag == 0.0:
                self._ideal_epoch = self.world.crash_epoch
        self._set_output(suspected=suspected, trusted=trusted)

    def _pre_stabilization_output(self):
        cfg = self.config
        others = [q for q in range(self.n) if q != self.pid]
        if cfg.pre_behavior == "suspect-all":
            return frozenset(others), self.pid
        # erratic
        rng = self.rng
        suspected = frozenset(
            q for q in others if rng.random() < cfg.erratic_suspect_prob
        )
        trusted = rng.randrange(self.n)
        return suspected, trusted

    def _ideal_output(self):
        cls = self.fd_class
        crashed = self._crashed_now()
        leader = self._leader()
        slander = self.config.slander - ({leader} if leader is not None else set())

        # --- suspect set, by completeness/accuracy contract -----------------
        if cls in (PERFECT, EVENTUALLY_PERFECT):
            suspected = crashed
        elif cls is EVENTUALLY_QUASI_PERFECT:
            # Weak completeness: only the designated witness (the smallest
            # correct process) suspects the crashed ones.
            witness = min(self.world.correct_pids, default=None)
            suspected = crashed if self.pid == witness else frozenset()
        elif cls in (EVENTUALLY_STRONG, EVENTUALLY_CONSISTENT):
            suspected = crashed | slander
        elif cls is EVENTUALLY_WEAK:
            witness = min(self.world.correct_pids, default=None)
            suspected = (crashed | slander) if self.pid == witness else slander
        elif cls is OMEGA:
            # Ω implicitly suspects everyone but the leader.
            suspected = frozenset(
                q for q in range(self.n) if q != leader
            )
        else:  # pragma: no cover - future classes
            raise ConfigurationError(f"oracle cannot model class {cls}")
        suspected -= {self.pid}

        # --- trusted process -------------------------------------------------
        if cls.leader:
            trusted = leader
        else:
            trusted = None
        return suspected, trusted


class ScriptedFailureDetector(FailureDetector):
    """A detector whose output follows an explicit per-process script.

    ``script(pid, now)`` must return ``(suspected, trusted)``; it is
    re-evaluated every *poll_period*.  This is the instrument for
    experiments that need *heterogeneous* detector views — e.g. E7's
    "some processes permanently nack the coordinator" scenario, which no
    single class-ideal oracle can produce.
    """

    def __init__(self, script, poll_period: Time = 1.0, channel: str = "fd") -> None:
        super().__init__(channel)
        if poll_period <= 0:
            raise ConfigurationError("poll_period must be positive")
        self.script = script
        self.poll_period = poll_period

    def on_start(self) -> None:
        self._apply()
        super().on_start()
        self.periodically(self.poll_period, self._apply)

    def _apply(self) -> None:
        suspected, trusted = self.script(self.pid, self.now)
        self._set_output(
            suspected=frozenset(suspected) - {self.pid}, trusted=trusted
        )


def oracle_factory(
    fd_class: FDClass,
    config: Optional[OracleConfig] = None,
    channel: str = "fd",
):
    """Return a per-pid factory for :meth:`World.attach_all`."""

    def factory(pid: ProcessId) -> OracleFailureDetector:
        return OracleFailureDetector(fd_class, config, channel)

    return factory
