"""◇C detectors: composing a suspect list with an eventual leader.

Definition 1 of the paper asks for three things at once: a ◇S suspect set,
an Ω trusted process, and — eventually — the trusted process not being in
the suspect set.  :class:`CombinedDetector` builds exactly that out of any
two local sources:

* an *omega source* whose ``trusted()`` satisfies the Ω property (e.g.
  :class:`~repro.fd.leader_based.LeaderBasedOmega`, an Ω oracle, or any ◇C
  detector), and
* a *suspects source* whose ``suspected()`` satisfies ◇S (e.g.
  :class:`~repro.fd.ring.RingDetector`,
  :class:`~repro.fd.heartbeat.HeartbeatEventuallyPerfect`, or a ◇S oracle).

The combination removes the trusted process from the suspect set, which
enforces the third clause without hurting completeness: eventually the
trusted process is correct, and a correct process may always be unsuspected.

The module also provides :func:`attach_ec_stack`, the convenience used by
examples and benchmarks to deploy a complete message-passing ◇C stack
(leader-based Ω + a suspect-list detector + the combiner) on every process
of a world, mirroring the paper's "◇C at no additional cost on top of [15]
or [16]".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..sim.world import World
from ..types import ProcessId
from .base import FailureDetector
from .heartbeat import HeartbeatEventuallyPerfect
from .leader_based import LeaderBasedOmega
from .ring import RingDetector

__all__ = ["CombinedDetector", "attach_ec_stack"]


class CombinedDetector(FailureDetector):
    """◇C from a local Ω source plus a local ◇S suspect-list source.

    Exchanges no messages of its own; it merely re-exports and reconciles
    the outputs of the two source modules attached to the same process.
    """

    def __init__(
        self,
        omega_source: FailureDetector,
        suspects_source: FailureDetector,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        if omega_source is suspects_source:
            # Allowed (a ◇C source is both), just normalize.
            pass
        self.omega_source = omega_source
        self.suspects_source = suspects_source

    def on_start(self) -> None:
        if self.omega_source.process is not self.process:
            raise ConfigurationError(
                "omega source must live on the same process"
            )
        if self.suspects_source.process is not self.process:
            raise ConfigurationError(
                "suspects source must live on the same process"
            )
        self.omega_source.subscribe(self._recompute)
        self.suspects_source.subscribe(self._recompute)
        self._recompute()
        super().on_start()

    def _recompute(self, _source: Optional[FailureDetector] = None) -> None:
        trusted = self.omega_source.trusted()
        suspected = self.suspects_source.suspected()
        if trusted is not None:
            suspected = suspected - {trusted}
        self._set_output(suspected=suspected, trusted=trusted)


def attach_ec_stack(
    world: World,
    suspects: str = "ring",
    period: float = 5.0,
    initial_timeout: float = 12.0,
    timeout_increment: float = 5.0,
    channel: str = "fd",
) -> List[CombinedDetector]:
    """Attach a full message-passing ◇C stack to every process of *world*.

    Parameters:
        suspects: ``"ring"`` (2n msgs/period, the DISC'99 detector — its own
            leader rule already matches the Ω output in stable runs),
            ``"heartbeat"`` (n² msgs/period ◇P), or ``"complement"`` (no
            extra detector: suspect everyone but the leader — the trivial,
            accuracy-poor Ω→◇C reduction of Section 3).
        channel: channel name of the resulting combined detector; the source
            detectors use ``"<channel>.omega"`` and ``"<channel>.suspects"``.

    Returns:
        The per-process :class:`CombinedDetector` instances, in pid order.
    """
    combined: List[CombinedDetector] = []
    for pid in world.pids:
        omega = LeaderBasedOmega(
            period=period,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
            channel=f"{channel}.omega",
        )
        world.attach(pid, omega)
        source: FailureDetector
        if suspects == "ring":
            source = RingDetector(
                period=period,
                initial_timeout=initial_timeout,
                timeout_increment=timeout_increment,
                channel=f"{channel}.suspects",
            )
            world.attach(pid, source)
        elif suspects == "heartbeat":
            source = HeartbeatEventuallyPerfect(
                period=period,
                initial_timeout=initial_timeout,
                timeout_increment=timeout_increment,
                channel=f"{channel}.suspects",
            )
            world.attach(pid, source)
        elif suspects == "complement":
            source = _ComplementSuspects(omega, channel=f"{channel}.suspects")
            world.attach(pid, source)
        else:
            raise ConfigurationError(f"unknown suspects source {suspects!r}")
        combined.append(
            CombinedDetector(omega, source, channel=channel)  # type: ignore[arg-type]
        )
        world.attach(pid, combined[-1])
    return combined


class _ComplementSuspects(FailureDetector):
    """Suspect everybody except the Ω leader (trivial Ω→◇C suspect list).

    This is the reduction the paper calls "very simple and efficient (no
    extra messages are needed) [but] very poor accuracy"; the accuracy
    ablation A2 contrasts it with a real ◇S source.
    """

    def __init__(self, omega_source: FailureDetector, channel: str) -> None:
        super().__init__(channel)
        self.omega_source = omega_source

    def on_start(self) -> None:
        self.omega_source.subscribe(self._recompute)
        self._recompute()
        super().on_start()

    def _recompute(self, _source: Optional[FailureDetector] = None) -> None:
        leader = self.omega_source.trusted()
        suspected = frozenset(
            q for q in range(self.n) if q != leader and q != self.pid
        )
        self._set_output(suspected=suspected, trusted=None)
