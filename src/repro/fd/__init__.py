"""Failure detectors: class taxonomy, oracles, and message-passing
implementations (all-to-all heartbeat ◇P, ring ◇S/◇P, leader-based Ω, and
◇C compositions)."""

from .base import FailureDetector, first_non_suspected
from .classes import (
    ALL_CLASSES,
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_QUASI_PERFECT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    FDClass,
    OMEGA,
    PERFECT,
)
from .eventually_consistent import CombinedDetector, attach_ec_stack
from .heartbeat import HeartbeatEventuallyPerfect
from .heartbeat_counter import HeartbeatCounterDetector
from .leader_based import LeaderBasedOmega
from .oracle import (
    OracleConfig,
    OracleFailureDetector,
    ScriptedFailureDetector,
    oracle_factory,
)
from .ring import RingDetector
from .stable_leader import StableLeaderOmega

__all__ = [
    "FailureDetector",
    "first_non_suspected",
    "FDClass",
    "PERFECT",
    "EVENTUALLY_PERFECT",
    "EVENTUALLY_QUASI_PERFECT",
    "EVENTUALLY_STRONG",
    "EVENTUALLY_WEAK",
    "OMEGA",
    "EVENTUALLY_CONSISTENT",
    "ALL_CLASSES",
    "CombinedDetector",
    "attach_ec_stack",
    "HeartbeatEventuallyPerfect",
    "HeartbeatCounterDetector",
    "LeaderBasedOmega",
    "OracleConfig",
    "OracleFailureDetector",
    "ScriptedFailureDetector",
    "oracle_factory",
    "RingDetector",
    "StableLeaderOmega",
]
