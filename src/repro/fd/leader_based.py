"""Leader-based Ω (in the style of Larrea, Fernández, Arévalo — SRDS 2000).

Processes consider candidates in pid order.  Each process's *candidate* is
the smallest pid it has not ruled out; a process whose candidate is itself
considers itself leader and broadcasts ``LEADER-ALIVE`` heartbeats (n−1
messages per period — the "optimal" cost the paper leans on when arguing ◇C
comes for free).  Every other process monitors only its current candidate:

* candidate heartbeat missing past an adaptive timeout → rule the candidate
  out, advance to the next pid;
* heartbeat received from a smaller or ruled-out pid → reinstate it, widen
  its timeout, and fall back to it.

On partially synchronous links the first correct process is ruled out at
most a bounded number of times at each process (each mistake widens the
timeout), after which every correct process permanently trusts it — the Ω
property.  The ``suspected`` output is the local ruled-out set; note that it
is **not** strongly complete (crashed processes *larger* than the eventual
leader are never examined), which is exactly why the paper composes this
algorithm with a ◇S suspect list — or the trivial complement — to obtain ◇C
(see :mod:`repro.fd.eventually_consistent`).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .base import FailureDetector

__all__ = ["LeaderBasedOmega"]

_LEADER_ALIVE = "LEADER-ALIVE"


class LeaderBasedOmega(FailureDetector):
    """Ω implementation with n−1 steady-state messages per period."""

    def __init__(
        self,
        period: Time = 5.0,
        initial_timeout: Time = 12.0,
        timeout_increment: Time = 5.0,
        check_period: Optional[Time] = None,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        if period <= 0 or initial_timeout <= 0 or timeout_increment < 0:
            raise ConfigurationError("leader-based parameters must be positive")
        self.period = period
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.check_period = check_period if check_period is not None else period / 2
        self._ruled_out: Set[ProcessId] = set()
        self._last_heard: Dict[ProcessId, Time] = {}
        self._timeout: Dict[ProcessId, Time] = {}
        self._watch_start: Time = 0.0

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        for q in range(self.n):
            if q != self.pid:
                self._timeout[q] = self.initial_timeout
        self._publish()
        super().on_start()
        self._beat()
        self.periodically(self.period, self._beat)
        self.periodically(self.check_period, self._check)

    # ---------------------------------------------------------------- output
    def _candidate(self) -> ProcessId:
        for q in range(self.n):
            if q not in self._ruled_out:
                return q
        # Everyone (including self) ruled out cannot happen: we never rule
        # out ourselves.
        raise AssertionError("unreachable: self is never ruled out")

    def _publish(self) -> None:
        self._set_output(
            suspected=frozenset(self._ruled_out), trusted=self._candidate()
        )

    # --------------------------------------------------------------- beating
    def _beat(self) -> None:
        if self._candidate() == self.pid:
            self.broadcast(_LEADER_ALIVE, tag="leader-hb")

    # ------------------------------------------------------------ monitoring
    def _check(self) -> None:
        cand = self._candidate()
        if cand == self.pid:
            return
        reference = max(self._last_heard.get(cand, 0.0), self._watch_start)
        if self.now - reference > self._timeout[cand]:
            self._ruled_out.add(cand)
            self._watch_start = self.now
            self._publish()

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: object) -> None:
        if payload != _LEADER_ALIVE:  # pragma: no cover - defensive
            return
        self._last_heard[src] = self.now
        old_cand = self._candidate()
        if src in self._ruled_out:
            # False suspicion: reinstate and widen the timeout.
            self._ruled_out.discard(src)
            self._timeout[src] += self.timeout_increment
            self.metrics.inc("fd_timeout_adaptations_total", channel=self.channel)
        if self._candidate() != old_cand:
            self._watch_start = self.now
        self._publish()

    # ---------------------------------------------------------- introspection
    def timeout_of(self, q: ProcessId) -> Time:
        """Current adaptive timeout for *q*."""
        return self._timeout[q]
