"""Failure-detector module base class.

A failure detector is a :class:`~repro.sim.component.Component` that
maintains two outputs, matching Section 2 of the paper:

* ``suspected()`` — the set :math:`D.suspected_p` of processes this module
  currently believes to have crashed;
* ``trusted()`` — the process :math:`D.trusted_p` this module currently
  trusts (``None`` when the detector class provides no leader output).

Whenever either output changes the module

1. records an ``fd`` trace event (the property checkers in
   :mod:`repro.analysis.fd_properties` reconstruct full output histories
   from these),
2. notifies local subscribers (e.g. a stacked transformation), and
3. pokes every other component on the same process, so consensus tasks
   blocked on conditions like ``coordinator in D.suspected`` wake up.

Algorithms only ever interact with their *local* module, as in the paper.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Sequence

from ..sim.component import Component
from ..types import ProcessId

__all__ = ["FailureDetector", "first_non_suspected"]


class FailureDetector(Component):
    """Base class of every failure-detector module."""

    channel = "fd"

    def __init__(self, channel: Optional[str] = None) -> None:
        super().__init__(channel)
        self._suspected: FrozenSet[ProcessId] = frozenset()
        self._trusted: Optional[ProcessId] = None
        self._listeners: List[Callable[["FailureDetector"], None]] = []

    # --------------------------------------------------------------- queries
    def suspected(self) -> FrozenSet[ProcessId]:
        """The current set of suspected processes (``D.suspected_p``)."""
        return self._suspected

    def trusted(self) -> Optional[ProcessId]:
        """The currently trusted process (``D.trusted_p``), or ``None``."""
        return self._trusted

    def suspects(self, q: ProcessId) -> bool:
        """``True`` iff *q* is currently suspected."""
        return q in self._suspected

    # ----------------------------------------------------------- subscribers
    def subscribe(self, callback: Callable[["FailureDetector"], None]) -> None:
        """Register *callback(detector)* to run on every output change."""
        self._listeners.append(callback)

    # -------------------------------------------------------------- internal
    def on_start(self) -> None:
        """Record the initial output so histories start at time 0."""
        self._record_output()

    def _set_output(
        self,
        suspected: Optional[FrozenSet[ProcessId]] = None,
        trusted: Optional[ProcessId] = "__keep__",  # type: ignore[assignment]
    ) -> None:
        """Update outputs; propagates notifications only on a real change.

        ``trusted`` uses the sentinel ``"__keep__"`` so that ``None`` (no
        trusted process) remains a settable value.
        """
        changed = False
        if suspected is not None and suspected != self._suspected:
            self._suspected = frozenset(suspected)
            self.metrics.inc("fd_suspicion_flips_total", channel=self.channel)
            self.metrics.set(
                "fd_suspected_size", len(self._suspected), channel=self.channel
            )
            changed = True
        if trusted != "__keep__" and trusted != self._trusted:
            self._trusted = trusted  # type: ignore[assignment]
            self.metrics.inc("fd_leader_changes_total", channel=self.channel)
            changed = True
        if not changed:
            return
        self._record_output()
        for listener in self._listeners:
            listener(self)
        self.process.notify_fd_change(self)

    def _record_output(self) -> None:
        self.trace(
            "fd",
            channel=self.channel,
            suspected=self._suspected,
            trusted=self._trusted,
        )


def first_non_suspected(
    suspected: FrozenSet[ProcessId],
    n: int,
    order: Optional[Sequence[ProcessId]] = None,
) -> Optional[ProcessId]:
    """The first process (in *order*, default ``0..n-1``) not in *suspected*.

    This is the leader-extraction rule the paper uses to build ◇C on top of
    ◇P ("the first process not in that set, with respect to the order
    assumed in the system model") and on top of the ring algorithm.
    Returns ``None`` when every process is suspected.
    """
    for pid in (order if order is not None else range(n)):
        if pid not in suspected:
            return pid
    return None
