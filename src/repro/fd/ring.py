"""Ring-based ◇S / ◇P (Larrea, Arévalo, Fernández — DISC'99 style).

Processes are arranged on a logical ring in pid order.  Each process polls
its nearest *non-suspected* predecessor with a ``PING`` every period; the
predecessor answers with a ``PONG``.  Both message kinds piggyback the
sender's *suspicion knowledge* — a per-process ``(epoch, suspected)`` entry
merged by highest epoch — so suspicion and refutation information travels
around the ring one neighbour hop per period.  System-wide steady-state cost
is 2n messages per period (n pings + n pongs), the figure the paper quotes
for this algorithm; the hop-by-hop propagation is also why its
crash-detection *latency* is Θ(n) periods, the drawback experiment E8
measures against the Fig. 2 transformation.

Timeouts are adaptive (grown on every false suspicion), giving the usual
partial-synchrony convergence argument.  The detector additionally exposes
the ring leader rule of the paper's Section 3: eventually every correct
process agrees on "the first non-suspected process starting from the initial
candidate ``p0`` in ring order", which is what makes this ◇S usable as a ◇C
at no extra message cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .base import FailureDetector, first_non_suspected

__all__ = ["RingDetector"]

_PING = "PING"
_PONG = "PONG"

# knowledge entry: (epoch, suspected)
_Entry = Tuple[int, bool]


class RingDetector(FailureDetector):
    """Ring-polling failure detector with knowledge piggybacking."""

    def __init__(
        self,
        period: Time = 5.0,
        initial_timeout: Time = 12.0,
        timeout_increment: Time = 5.0,
        check_period: Optional[Time] = None,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        if period <= 0 or initial_timeout <= 0 or timeout_increment < 0:
            raise ConfigurationError("ring parameters must be positive")
        self.period = period
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.check_period = check_period if check_period is not None else period / 2
        self._knowledge: Dict[ProcessId, _Entry] = {}
        self._timeout: Dict[ProcessId, Time] = {}
        self._last_pong: Dict[ProcessId, Time] = {}
        self._target: Optional[ProcessId] = None
        self._watch_start: Time = 0.0

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        for q in range(self.n):
            self._knowledge[q] = (0, False)
            if q != self.pid:
                self._timeout[q] = self.initial_timeout
        self._retarget()
        self._publish()
        super().on_start()
        self._poll()
        self.periodically(self.period, self._poll)
        self.periodically(self.check_period, self._check)

    # ---------------------------------------------------------------- output
    def _suspects_now(self) -> frozenset[ProcessId]:
        return frozenset(
            q for q, (_, susp) in self._knowledge.items() if susp and q != self.pid
        )

    def _publish(self) -> None:
        suspected = self._suspects_now()
        self._set_output(
            suspected=suspected,
            trusted=first_non_suspected(suspected, self.n),
        )

    # --------------------------------------------------------------- polling
    def _predecessor_chain(self):
        """Predecessors of self in ring order: p-1, p-2, ... (mod n)."""
        for k in range(1, self.n):
            yield (self.pid - k) % self.n

    def _retarget(self) -> None:
        suspects = self._suspects_now()
        new_target = None
        for q in self._predecessor_chain():
            if q not in suspects:
                new_target = q
                break
        if new_target != self._target:
            self._target = new_target
            self._watch_start = self.now

    def _poll(self) -> None:
        if self._target is not None:
            self.send(self._target, (_PING, dict(self._knowledge)), tag="ping")

    def _check(self) -> None:
        target = self._target
        if target is None:
            return
        reference = max(self._last_pong.get(target, 0.0), self._watch_start)
        if self.now - reference > self._timeout[target]:
            self._suspect(target)

    # ------------------------------------------------------------- knowledge
    def _bump(self, q: ProcessId, suspected: bool) -> None:
        epoch, _ = self._knowledge[q]
        self._knowledge[q] = (epoch + 1, suspected)

    def _suspect(self, q: ProcessId) -> None:
        self._bump(q, True)
        self._retarget()
        self._publish()

    def _refute(self, q: ProcessId) -> None:
        """Direct evidence that *q* is alive."""
        if self._knowledge[q][1]:
            self._bump(q, False)
            self._timeout[q] = self._timeout.get(q, self.initial_timeout) + (
                self.timeout_increment
            )
            self.metrics.inc("fd_timeout_adaptations_total", channel=self.channel)
            self._retarget()
            self._publish()

    def _merge(self, remote: Dict[ProcessId, _Entry]) -> None:
        changed = False
        know = self._knowledge
        for q, entry in remote.items():
            if q == self.pid:
                continue  # never adopt suspicions of ourselves
            mine = know[q]
            # Higher epoch wins; on a tie, suspicion wins (conservative:
            # completeness is safety-critical here, accuracy self-heals via
            # direct refutation by q's monitor).
            if entry[0] > mine[0] or (entry[0] == mine[0] and entry[1] and not mine[1]):
                know[q] = entry
                changed = True
        if changed:
            self._retarget()
            self._publish()

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: object) -> None:
        kind, remote = payload  # type: ignore[misc]
        # Any direct message proves the sender alive.
        self._refute(src)
        self._merge(remote)
        if kind == _PING:
            self.send(src, (_PONG, dict(self._knowledge)), tag="pong")
        elif kind == _PONG:
            self._last_pong[src] = self.now

    # ---------------------------------------------------------- introspection
    @property
    def target(self) -> Optional[ProcessId]:
        """The predecessor currently being monitored (tests/benchmarks)."""
        return self._target

    def timeout_of(self, q: ProcessId) -> Time:
        """Current adaptive timeout for *q*."""
        return self._timeout[q]
