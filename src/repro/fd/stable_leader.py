"""Stable Ω — leader election that does not churn (Aguilera et al. style).

The paper's related work highlights "stable" Ω implementations: *once a
leader is elected, it remains the leader for as long as it does not crash
and its links behave well* (Aguilera, Delporte-Gallet, Fauconnier, Toueg,
DISC 2001).  The simple leader-based Ω of :mod:`repro.fd.leader_based` is
not stable in one specific way: a lower-id process with *flaky* links keeps
being reinstated whenever one of its heartbeats slips through, displacing a
perfectly good working leader — leadership churns forever.

This module implements the accusation-counter approach:

* every process keeps, for each process q, an *accusation counter*;
* the current leader of p is the process minimizing ``(counter, pid)``;
* a process that believes itself leader broadcasts heartbeats;
* when p's current leader times out, p broadcasts an ``ACCUSE(leader, c)``
  message carrying its current count ``c``; every process (including the
  accused and the accuser) applies the idempotent merge
  ``counter = max(counter, c + 1)``.  Merging by maximum makes the counters
  conflict-free replicated state: every correct process receives every
  accusation, so all counters converge regardless of delivery order;
* timeouts are adaptive, as usual.

Stability follows because demotion requires a *fresh accusation* — a flaky
low-id process accumulates accusations and stays demoted, instead of
flip-flopping with the working leader; and counters only grow, so all
correct processes converge on the same minimum.  The Ω property follows
from the standard partial-synchrony argument: a correct process with
eventually-timely links is accused finitely often, so its counter freezes,
while every crashed process is accused forever.

Ablation A4 (``bench_a4_leader_stability.py``) measures the churn
difference against :class:`~repro.fd.leader_based.LeaderBasedOmega`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .base import FailureDetector

__all__ = ["StableLeaderOmega"]

_LEADER_ALIVE = "S-LEADER-ALIVE"
_ACCUSE = "ACCUSE"


class StableLeaderOmega(FailureDetector):
    """Accusation-counter Ω with stable leadership (see module docstring)."""

    def __init__(
        self,
        period: Time = 5.0,
        initial_timeout: Time = 12.0,
        timeout_increment: Time = 5.0,
        check_period: Optional[Time] = None,
        channel: str = "fd",
    ) -> None:
        super().__init__(channel)
        if period <= 0 or initial_timeout <= 0 or timeout_increment < 0:
            raise ConfigurationError("stable-leader parameters must be positive")
        self.period = period
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.check_period = check_period if check_period is not None else period / 2
        self._counter: Dict[ProcessId, int] = {}
        self._last_heard: Dict[ProcessId, Time] = {}
        self._timeout: Dict[ProcessId, Time] = {}
        self._watch_start: Time = 0.0
        self.leader_changes = 0  # introspection for the stability ablation

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        for q in range(self.n):
            self._counter[q] = 0
            if q != self.pid:
                self._timeout[q] = self.initial_timeout
        self._publish(initial=True)
        super().on_start()
        self._beat()
        self.periodically(self.period, self._beat)
        self.periodically(self.check_period, self._check)

    # ---------------------------------------------------------------- output
    def _current_leader(self) -> ProcessId:
        return min(range(self.n), key=lambda q: (self._counter[q], q))

    def _publish(self, initial: bool = False) -> None:
        leader = self._current_leader()
        if not initial and leader != self._trusted:
            self.leader_changes += 1
        # Ω semantics: implicitly suspect everyone but the leader.
        self._set_output(
            suspected=frozenset(
                q for q in range(self.n) if q != leader and q != self.pid
            ),
            trusted=leader,
        )

    # --------------------------------------------------------------- beating
    def _beat(self) -> None:
        if self._current_leader() == self.pid:
            self.broadcast((_LEADER_ALIVE,), tag="leader-hb")

    # ------------------------------------------------------------ monitoring
    def _check(self) -> None:
        leader = self._current_leader()
        if leader == self.pid:
            return
        reference = max(self._last_heard.get(leader, 0.0), self._watch_start)
        if self.now - reference > self._timeout[leader]:
            # Accuse the silent leader; the merge demotes it locally at once
            # and at everyone else via gossip.
            accused_count = self._counter[leader]
            self._merge(leader, accused_count)
            self.broadcast((_ACCUSE, leader, accused_count), tag="accuse")
            self._timeout[leader] += self.timeout_increment
            self._watch_start = self.now
            self._publish()

    def _merge(self, q: ProcessId, accused_count: int) -> None:
        """Idempotent, order-independent counter merge (see module doc)."""
        self._counter[q] = max(self._counter[q], accused_count + 1)

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: object) -> None:
        kind = payload[0]  # type: ignore[index]
        if kind == _LEADER_ALIVE:
            self._last_heard[src] = self.now
            # A heartbeat does NOT reinstate src past the current leader —
            # that is the stability difference from LeaderBasedOmega.
            return
        if kind == _ACCUSE:
            _, accused, accused_count = payload  # type: ignore[misc]
            old_leader = self._current_leader()
            self._merge(accused, accused_count)
            if self._current_leader() != old_leader:
                self._watch_start = self.now
            self._publish()

    # ---------------------------------------------------------- introspection
    def counter_of(self, q: ProcessId) -> int:
        """Current accusation counter for *q*."""
        return self._counter[q]
