"""Timeout-free heartbeat detector (Aguilera–Chen–Toueg style, paper ref [1]).

The paper's survey of detector classes cites the *Heartbeat* detector — a
failure detector that makes **no timing assumptions at all**: instead of a
suspect set, it outputs a vector of unbounded counters, one per process,
where the counter of a correct (and connected) process grows forever and
the counter of a crashed process eventually stops.  It is *not* a ◇-class
detector (no suspicion, hence no completeness/accuracy in the Fig. 1
sense); its role in the literature is enabling *quiescent* reliable
communication.  It is included here because:

* it rounds out the paper's reference landscape with the one detector that
  works in fully asynchronous systems, and
* it is the natural source for "has q made progress since I last looked?"
  logic, which the tests contrast with the timeout-based detectors.

Interface: :meth:`heartbeat_of` returns the current counter of a process;
:meth:`snapshot` the whole vector.  The inherited ``suspected`` output is
kept empty (the detector never suspects anyone) and ``trusted`` is ``None``.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError
from ..types import ProcessId, Time
from .base import FailureDetector

__all__ = ["HeartbeatCounterDetector"]

_BEAT = "HB"


class HeartbeatCounterDetector(FailureDetector):
    """Counter-vector heartbeat detector (see module docstring)."""

    def __init__(self, period: Time = 5.0, channel: str = "fd") -> None:
        super().__init__(channel)
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.period = period
        self._counters: Dict[ProcessId, int] = {}

    # ------------------------------------------------------------ life cycle
    def on_start(self) -> None:
        for q in range(self.n):
            self._counters[q] = 0
        super().on_start()
        self._beat()
        self.periodically(self.period, self._beat)

    def _beat(self) -> None:
        # Our own counter advances with our own heartbeats, so a process
        # observes itself as alive.
        self._counters[self.pid] += 1
        self.broadcast(_BEAT, tag="hb")

    # ------------------------------------------------------------- receiving
    def on_message(self, src: ProcessId, payload: object) -> None:
        if payload == _BEAT:
            self._counters[src] += 1
            self.trace("hb-counter", peer=src, value=self._counters[src])

    # --------------------------------------------------------------- queries
    def heartbeat_of(self, q: ProcessId) -> int:
        """Current heartbeat counter of process *q* (monotone; 0 before the
        world starts)."""
        return self._counters.get(q, 0)

    def snapshot(self) -> List[int]:
        """The full counter vector, indexed by pid."""
        return [self._counters.get(q, 0) for q in range(self.n)]

    def progressed_since(self, q: ProcessId, previous: int) -> bool:
        """``True`` iff *q*'s counter moved past *previous* — the primitive
        quiescent protocols poll instead of using timeouts."""
        return self._counters.get(q, 0) > previous
