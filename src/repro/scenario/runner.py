"""Drive a :class:`~repro.scenario.events.Scenario` against any cluster.

The runner is deliberately thin: a scenario is already a compiled
schedule over the :class:`~repro.cluster.ClusterAPI` fault verbs, so
:func:`apply_scenario` is one verb call per event (with ``at=`` the
event's time) and nothing more.  Called before ``start()``, the verbs
queue; the cluster flushes them onto its clock at start — which is
exactly how scripted crashes have always worked, now for every fault
family.  The same function therefore arms a deterministic virtual-clock
:class:`~repro.cluster.LocalCluster` and a live multi-process
:class:`~repro.proc.ProcessCluster`, through the same calls.

:func:`run_scenario` adds the standard lifecycle around it (start, wait
out the duration, stop, collect verdicts) for harnesses that want the
one-call version.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..cluster.api import ClusterAPI, verdicts_ok
from ..errors import ConfigurationError
from ..types import Time
from .events import Scenario, ScenarioEvent

__all__ = ["apply_scenario", "run_scenario"]


def _apply_event(cluster: ClusterAPI, event: ScenarioEvent) -> None:
    args = event.args
    at = event.time
    if event.op in ("crash", "stall", "resume", "isolate"):
        getattr(cluster, event.op)(args["pid"], at=at)
    elif event.op == "partition":
        cluster.partition(args["groups"], at=at)
    elif event.op in ("heal", "calm"):
        getattr(cluster, event.op)(at=at)
    elif event.op == "degrade":
        cluster.degrade(
            args["src"], args["dst"],
            loss=args.get("loss"), delay=args.get("delay"), at=at,
        )
    elif event.op == "restore":
        cluster.restore(args["src"], args["dst"], at=at)
    elif event.op == "storm":
        cluster.storm(args["loss"], at=at)
    else:  # skew (OP_SPECS is closed; ScenarioEvent validated the op)
        cluster.skew(args["pid"], args["offset"], at=at)


def apply_scenario(cluster: ClusterAPI, scenario: Scenario) -> None:
    """Arm every event of *scenario* on *cluster* (one fault verb each).

    Checks that the scenario fits the cluster first: matching ``n`` (when
    the scenario declares one) and a run long enough to play the whole
    schedule out (when both declare durations).  Also records the
    ``scenario.run`` provenance event via the cluster's
    ``note_scenario`` hook when it has one.
    """
    if scenario.n is not None and scenario.n != cluster.n:
        raise ConfigurationError(
            f"scenario {scenario.name!r} was built for n={scenario.n}, "
            f"cluster has n={cluster.n}"
        )
    cluster_duration = getattr(cluster, "duration", None)
    if cluster_duration is not None and scenario.fault_end > cluster_duration:
        raise ConfigurationError(
            f"scenario {scenario.name!r} schedules events up to "
            f"t={scenario.fault_end} but the cluster run only lasts "
            f"{cluster_duration}s"
        )
    note = getattr(cluster, "note_scenario", None)
    if note is not None:
        note(scenario.name, len(scenario.events), seed=scenario.seed)
    for event in scenario.events:
        _apply_event(cluster, event)


async def run_scenario(
    cluster: ClusterAPI,
    scenario: Scenario,
    quiesce_timeout: Optional[Time] = None,
) -> Dict[str, Any]:
    """Arm *scenario*, run *cluster* to quiescence, return the postmortem.

    Returns ``{"quiescent": bool, "verdicts": {...}, "ok": bool}`` —
    ``ok`` is :func:`~repro.cluster.api.verdicts_ok` over the verdicts,
    the single pass/fail bit every scenario run ends in.
    """
    apply_scenario(cluster, scenario)
    await cluster.start()
    quiescent = await cluster.wait_quiescent(quiesce_timeout)
    await cluster.stop()
    verdicts = cluster.verdicts()
    return {
        "quiescent": quiescent,
        "verdicts": verdicts,
        "ok": verdicts_ok(verdicts),
    }
