"""Declarative fault scenarios over the unified ClusterAPI fault surface.

The nemesis layer: where :mod:`repro.cluster` gives every runtime the
same imperative fault verbs (``crash`` / ``stall`` / ``partition`` /
``degrade`` / ``storm`` / ``skew`` / ...), this package makes whole
adversaries *data*:

* :mod:`~repro.scenario.events` — the DSL: :class:`ScenarioEvent` timed
  fault triples and the :class:`Scenario` document (JSON round-trip,
  eager validation, canonical serialization);
* :mod:`~repro.scenario.generator` — :func:`generate_scenario`, the
  seeded Jepsen-style nemesis: same seed ⇒ byte-identical schedule,
  shaped so the run ends in a well-behaved suffix (faults bounded,
  crashes a minority, proposals after the last fault);
* :mod:`~repro.scenario.runner` — :func:`apply_scenario` /
  :func:`run_scenario`: one ClusterAPI verb call per event, identical on
  a deterministic in-process cluster and a live multi-process one.

CLI: ``repro scenario gen`` / ``repro scenario run``, plus ``--scenario``
on ``cluster``, ``proc run``, and ``load``.  See ``docs/scenarios.md``.
"""

from __future__ import annotations

from .events import OP_SPECS, Scenario, ScenarioEvent
from .generator import generate_scenario
from .runner import apply_scenario, run_scenario

__all__ = [
    "OP_SPECS",
    "Scenario",
    "ScenarioEvent",
    "generate_scenario",
    "apply_scenario",
    "run_scenario",
]
