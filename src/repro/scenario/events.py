"""The scenario DSL: timed fault events and the :class:`Scenario` document.

A scenario is a *compiled schedule*: a list of ``(time, op, args)``
triples over the :data:`~repro.cluster.api.FAULT_VERBS` surface, plus the
run parameters the schedule was built for (``n``, ``period``,
``duration``, ``propose_after``).  It is declarative — nothing executes
here; :func:`repro.scenario.runner.apply_scenario` turns each event into
one ``ClusterAPI`` verb call with ``at=time``, on either substrate.

Scenarios serialize to a small canonical JSON document (sorted keys,
events time-ordered), so "same seed ⇒ byte-identical schedule" is a
testable statement about :meth:`Scenario.to_json`:

.. code-block:: json

    {
      "duration": 4.0,
      "events": [
        {"op": "partition", "groups": [[0], [1, 2]], "t": 0.5},
        {"op": "heal", "t": 1.0},
        {"op": "stall", "pid": 2, "t": 1.5},
        {"op": "resume", "pid": 2, "t": 2.0}
      ],
      "n": 3,
      "name": "demo",
      "period": 0.05,
      "propose_after": 2.5,
      "seed": null
    }

Validation is eager and structural: unknown ops, missing/unknown args,
out-of-range pids (when ``n`` is set), and out-of-bounds probabilities
are all :class:`~repro.errors.ConfigurationError` at construction, not
mid-run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..types import Time

__all__ = ["ScenarioEvent", "Scenario", "OP_SPECS"]

#: op -> (required arg names, optional arg names).  The args mirror the
#: matching ClusterAPI verb's parameters (minus ``at``, which is the
#: event's ``t``).
OP_SPECS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "crash": (("pid",), ()),
    "stall": (("pid",), ()),
    "resume": (("pid",), ()),
    "isolate": (("pid",), ()),
    "partition": (("groups",), ()),
    "heal": ((), ()),
    "degrade": (("src", "dst"), ("loss", "delay")),
    "restore": (("src", "dst"), ()),
    "storm": (("loss",), ()),
    "calm": ((), ()),
    "skew": (("pid", "offset"), ()),
}


def _check_loss(value: Any, what: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{what} {value} outside [0, 1]")
    return value


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed fault: apply *op* with *args* at cluster time *time*."""

    time: Time
    op: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in OP_SPECS:
            raise ConfigurationError(
                f"unknown scenario op {self.op!r}; known ops: "
                + ", ".join(sorted(OP_SPECS))
            )
        if self.time < 0:
            raise ConfigurationError(
                f"scenario event time {self.time} must be >= 0"
            )
        required, optional = OP_SPECS[self.op]
        missing = [key for key in required if key not in self.args]
        if missing:
            raise ConfigurationError(
                f"scenario op {self.op!r} missing arg(s): {missing}"
            )
        unknown = sorted(set(self.args) - set(required) - set(optional))
        if unknown:
            raise ConfigurationError(
                f"scenario op {self.op!r} got unknown arg(s): {unknown}"
            )
        # Value-level checks that do not need n (pid ranges are checked by
        # Scenario, which knows the cluster size).
        if "loss" in self.args and self.args["loss"] is not None:
            _check_loss(self.args["loss"], "loss")
        if "delay" in self.args and self.args["delay"] is not None:
            if float(self.args["delay"]) < 0:
                raise ConfigurationError(
                    f"negative delay {self.args['delay']}"
                )
        if self.op == "partition":
            groups = self.args["groups"]
            if not isinstance(groups, (list, tuple)) or not all(
                isinstance(group, (list, tuple)) for group in groups
            ):
                raise ConfigurationError(
                    "partition groups must be a list of pid lists, got "
                    f"{groups!r}"
                )

    def pids(self) -> List[int]:
        """Every pid the event names (for range validation)."""
        out: List[int] = []
        for key in ("pid", "src", "dst"):
            if key in self.args:
                out.append(self.args[key])
        if self.op == "partition":
            for group in self.args["groups"]:
                out.extend(group)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"t": self.time, "op": self.op, **self.args}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioEvent":
        data = dict(data)
        try:
            time = data.pop("t")
            op = data.pop("op")
        except KeyError as exc:
            raise ConfigurationError(
                f"scenario event needs 't' and 'op' keys, got {data!r}"
            ) from exc
        # JSON round-trips partition groups as lists of lists; normalize
        # numeric arg types so to_json stays canonical.
        return cls(time=float(time), op=str(op), args=data)


_SCENARIO_KEYS = (
    "name", "n", "seed", "period", "duration", "propose_after", "events",
)


@dataclass
class Scenario:
    """A named, parameterized fault schedule (see module docstring).

    ``n`` / ``period`` / ``duration`` / ``propose_after`` are the run
    parameters the schedule assumes; the harness builds the cluster from
    them (``None`` means "caller decides").  ``seed`` records the
    generator seed for provenance (``None`` for hand-written scenarios).
    """

    name: str = "scenario"
    n: Optional[int] = None
    seed: Optional[int] = None
    period: Optional[Time] = None
    duration: Optional[Time] = None
    propose_after: Optional[Time] = None
    events: List[ScenarioEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n is not None and self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        self.events = [
            event if isinstance(event, ScenarioEvent)
            else ScenarioEvent.from_dict(event)
            for event in self.events
        ]
        # Canonical order: by time, ties kept in authored order (sort is
        # stable), so equal scenarios serialize equal.
        self.events.sort(key=lambda event: event.time)
        if self.n is not None:
            for event in self.events:
                for pid in event.pids():
                    if not 0 <= pid < self.n:
                        raise ConfigurationError(
                            f"scenario op {event.op!r} at t={event.time} "
                            f"names pid {pid}, out of range for n={self.n}"
                        )
        if self.duration is not None:
            late = [e for e in self.events if e.time > self.duration]
            if late:
                raise ConfigurationError(
                    f"{len(late)} scenario event(s) scheduled after the "
                    f"declared duration {self.duration} (first: "
                    f"{late[0].op!r} at t={late[0].time})"
                )

    # ------------------------------------------------------------------ serde
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n": self.n,
            "seed": self.seed,
            "period": self.period,
            "duration": self.duration,
            "propose_after": self.propose_after,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self) -> str:
        """The canonical serialization ("same seed ⇒ byte-identical")."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        unknown = sorted(set(data) - set(_SCENARIO_KEYS))
        if unknown:
            raise ConfigurationError(f"unknown scenario keys: {unknown}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("a scenario document must be an object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read scenario {path}: {exc}"
            ) from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------ sugar
    @property
    def fault_end(self) -> Time:
        """Time of the last scheduled event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0

    def __len__(self) -> int:
        return len(self.events)
