"""Seeded randomized scenario generation — the Jepsen-style nemesis.

:func:`generate_scenario` compiles a random but *reproducible* fault
schedule: a :class:`random.Random` seeded stream drives every choice, so
the same ``(n, seed, counts)`` produce a byte-identical
:meth:`~repro.scenario.events.Scenario.to_json` document, on any machine.
That is the property the paper's experiments need — a scenario is a
citable artifact (``seed=7``), not a one-off.

The schedule's *shape* encodes the eventual-consistency contract:

* fault windows are **sequential and bounded** — every partition heals,
  every stall resumes, every storm calms.  Windows are long enough
  (several detection timeouts) to force wrongful suspicions, and the gaps
  between them long enough for the detectors to re-stabilize;
* **crashes come last** and stay a minority (``crashes <= (n-1)//2``), so
  the run still has a correct majority and the verdicts can demand
  agreement and progress;
* the proposal round fires **after the last fault**, so consensus runs in
  the eventually-well-behaved suffix the paper's ◇-detectors guarantee —
  every generated scenario should end ``verdicts_ok`` true.

Times are expressed in multiples of the failure-detection ``period`` and
rounded to microseconds, keeping schedules readable and serialization
canonical.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError
from ..types import Time
from .events import Scenario, ScenarioEvent

__all__ = ["generate_scenario"]


def _r(value: float) -> float:
    """Round to microseconds: canonical JSON without float noise."""
    return round(value, 6)


def generate_scenario(
    n: int,
    seed: int,
    period: Time = 0.05,
    duration: Optional[Time] = None,
    partitions: int = 2,
    stalls: int = 1,
    storms: int = 1,
    degrades: int = 1,
    skews: int = 0,
    crashes: int = 0,
    name: Optional[str] = None,
) -> Scenario:
    """Compile a seeded random fault schedule for an *n*-node cluster.

    The counts pick how many windows of each fault family the schedule
    contains (see module docstring for the shape guarantees).  *duration*
    defaults to "the schedule plus a stabilization-and-consensus tail";
    passing one that cuts the schedule short is a configuration error.
    """
    if n < 2:
        raise ConfigurationError(
            f"a fault scenario needs n >= 2, got {n} (there is no network "
            "to break with a single node)"
        )
    for label, count in (
        ("partitions", partitions), ("stalls", stalls), ("storms", storms),
        ("degrades", degrades), ("skews", skews), ("crashes", crashes),
    ):
        if count < 0:
            raise ConfigurationError(f"{label} must be >= 0, got {count}")
    if crashes > (n - 1) // 2:
        raise ConfigurationError(
            f"crashes={crashes} would kill a majority of n={n}; the "
            f"verdicts need a correct majority (max {(n - 1) // 2})"
        )
    rng = random.Random(seed)
    windows: List[str] = (
        ["partition"] * partitions
        + ["stall"] * stalls
        + ["storm"] * storms
        + ["degrade"] * degrades
        + ["skew"] * skews
    )
    rng.shuffle(windows)
    events: List[ScenarioEvent] = []

    def emit(time: Time, op: str, **args: Any) -> None:
        events.append(ScenarioEvent(time=_r(time), op=op, args=args))

    # Let the detectors stabilize once before the first fault.
    t = 6.0 * period
    for kind in windows:
        length = rng.uniform(4.0, 8.0) * period  # > the 2.4-period timeout
        if kind == "partition":
            pids = list(range(n))
            rng.shuffle(pids)
            cut = rng.randrange(1, n)
            group = sorted(pids[:cut])
            emit(t, "partition", groups=[group])
            emit(t + length, "heal")
        elif kind == "stall":
            victim = rng.randrange(n)
            emit(t, "stall", pid=victim)
            emit(t + length, "resume", pid=victim)
        elif kind == "storm":
            emit(t, "storm", loss=round(rng.uniform(0.4, 0.9), 3))
            emit(t + length, "calm")
        elif kind == "degrade":
            src = rng.randrange(n)
            dst = (src + rng.randrange(1, n)) % n
            args: Dict[str, Any] = {
                "src": src, "dst": dst,
                "loss": round(rng.uniform(0.3, 0.9), 3),
            }
            if rng.random() < 0.5:
                args["delay"] = _r(rng.uniform(0.5, 2.0) * period)
            emit(t, "degrade", **args)
            emit(t + length, "restore", src=src, dst=dst)
        else:  # skew — a one-shot clock step, no closing event
            sign = 1.0 if rng.random() < 0.5 else -1.0
            emit(
                t, "skew",
                pid=rng.randrange(n),
                offset=_r(sign * rng.uniform(2.0, 6.0) * period),
            )
        # Re-stabilization gap before the next window.
        t += length + rng.uniform(6.0, 10.0) * period
    for victim in rng.sample(range(n), crashes):
        emit(t, "crash", pid=victim)
        t += 2.0 * period
    propose_after = _r(t + 4.0 * period)
    if duration is None:
        duration = _r(propose_after + 40.0 * period)
    return Scenario(
        name=name if name is not None else f"nemesis-n{n}-seed{seed}",
        n=n,
        seed=seed,
        period=period,
        duration=duration,
        propose_after=propose_after,
        events=events,
    )
