"""Live asyncio runtime: the sim's protocol stacks over real transports.

Where :mod:`repro.sim` executes the paper's algorithms in deterministic
virtual time, this subpackage executes the *same, unchanged*
:class:`~repro.sim.component.Component` subclasses on real asyncio event
loops and real sockets:

* :mod:`~repro.net.codec` — msgpack/JSON wire codecs that round-trip every
  payload shape the protocols produce;
* :mod:`~repro.net.clock` — wall-clock and deterministic virtual clocks
  implementing the shared :mod:`repro.sim.api` scheduler protocol;
* :mod:`~repro.net.transport` / :mod:`~repro.net.udp` /
  :mod:`~repro.net.tcp` — in-process loopback, UDP datagrams, and TCP with
  length-prefixed framing plus reconnect backoff;
* :mod:`~repro.net.faults` — a fault-injection proxy transport
  (loss/delay/partition) mirroring the simulator's link models and
  :class:`~repro.sim.partition.NetworkController`;
* :mod:`~repro.net.host` — the :class:`NodeHost` adapter that makes one
  live node look like one slot of a simulated
  :class:`~repro.sim.world.World`;
* :class:`LocalCluster` — n nodes in one process sharing a clock and a
  trace, so :mod:`repro.analysis` works on live runs unchanged.  Its
  canonical home is now :mod:`repro.cluster` (next to the unified
  :class:`~repro.cluster.api.ClusterAPI` contract); it is still
  re-exported here for convenience.

See ``docs/runtime.md`` for the architecture and the sim-vs-live guarantee
matrix, and ``python -m repro cluster`` for the end-to-end demo.
"""

from .clock import AsyncioClock, SkewedClock, VirtualClock
from .codec import Codec, CodecError, JsonCodec, MsgpackCodec, default_codec
from .control import FaultControlEndpoint, send_fault_command
from .faults import FaultPlan, FaultyTransport
from .host import NodeHost, RuntimeNetwork, RuntimeWorld
from .stats import StatsEndpoint, fetch_stats, parse_stats_addr
from .tcp import TCPTransport
from .transport import LoopbackHub, LoopbackTransport, Transport
from .udp import UDPTransport

__all__ = [
    "StatsEndpoint",
    "fetch_stats",
    "parse_stats_addr",
    "AsyncioClock",
    "SkewedClock",
    "VirtualClock",
    "FaultControlEndpoint",
    "send_fault_command",
    "LocalCluster",
    "TRANSPORTS",
    "attach_standard_stack",
    "Codec",
    "CodecError",
    "JsonCodec",
    "MsgpackCodec",
    "default_codec",
    "FaultPlan",
    "FaultyTransport",
    "NodeHost",
    "RuntimeNetwork",
    "RuntimeWorld",
    "TCPTransport",
    "LoopbackHub",
    "LoopbackTransport",
    "Transport",
    "UDPTransport",
]

_MOVED_TO_CLUSTER = ("LocalCluster", "TRANSPORTS", "attach_standard_stack")


def __getattr__(name: str):
    # Re-exported lazily from their new home: repro.cluster imports this
    # package (clocks, transports, NodeHost), so an eager import here
    # would be circular.  Unlike repro.net.cluster, this path does not
    # warn — `from repro.net import LocalCluster` stays first-class.
    if name in _MOVED_TO_CLUSTER:
        from .. import cluster as _cluster

        return getattr(_cluster, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
