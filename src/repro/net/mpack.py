"""A dependency-free msgpack subset for the wire fast path.

The container image is the source of truth for dependencies, and not every
image ships the C :mod:`msgpack` extension.  Rather than gate the msgpack
wire format on an optional import — which would make the fast path
untestable exactly where CI doesn't install it — this module implements
the msgpack encoding for the value shapes the codec layer actually
produces: ``None``, bools, 64-bit ints, float64, str, bytes, lists/tuples,
and dicts (any packable key, matching ``strict_map_key=False``).

The byte output is canonical msgpack — each value packed in its smallest
representation, strings as str types and bytes as bin types — so frames
are interchangeable with the C extension (``packb(use_bin_type=True)`` /
``unpackb(raw=False)``): a pure-Python node and an extension-equipped node
speak the same wire format.  Decoding is strict: truncated input, trailing
bytes, and ext types all raise :class:`MpackError`.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

__all__ = ["MpackError", "packb", "unpackb"]

_FLOAT64 = struct.Struct(">d")

# Every ext/timestamp header byte — produced by other msgpack writers, never
# by :func:`packb`; decoding one means the peer speaks a dialect we don't.
_EXT_HEADERS = frozenset(
    {0xC1, 0xC7, 0xC8, 0xC9, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8}
)


class MpackError(ValueError):
    """A value could not be packed, or bytes are not valid msgpack."""


# ------------------------------------------------------------------ packing
def _pack_int(value: int, out: List[bytes]) -> None:
    if 0 <= value <= 0x7F:
        out.append(bytes((value,)))
    elif -32 <= value < 0:
        out.append(bytes((value & 0xFF,)))
    elif 0 < value <= 0xFF:
        out.append(bytes((0xCC, value)))
    elif 0 < value <= 0xFFFF:
        out.append(b"\xcd" + value.to_bytes(2, "big"))
    elif 0 < value <= 0xFFFFFFFF:
        out.append(b"\xce" + value.to_bytes(4, "big"))
    elif 0 < value <= 0xFFFFFFFFFFFFFFFF:
        out.append(b"\xcf" + value.to_bytes(8, "big"))
    elif -0x80 <= value < 0:
        out.append(b"\xd0" + value.to_bytes(1, "big", signed=True))
    elif -0x8000 <= value < 0:
        out.append(b"\xd1" + value.to_bytes(2, "big", signed=True))
    elif -0x80000000 <= value < 0:
        out.append(b"\xd2" + value.to_bytes(4, "big", signed=True))
    elif -0x8000000000000000 <= value < 0:
        out.append(b"\xd3" + value.to_bytes(8, "big", signed=True))
    else:
        raise MpackError(f"int out of 64-bit msgpack range: {value}")


def _pack_str(value: str, out: List[bytes]) -> None:
    data = value.encode("utf-8")
    size = len(data)
    if size <= 0x1F:
        out.append(bytes((0xA0 | size,)))
    elif size <= 0xFF:
        out.append(bytes((0xD9, size)))
    elif size <= 0xFFFF:
        out.append(b"\xda" + size.to_bytes(2, "big"))
    else:
        out.append(b"\xdb" + size.to_bytes(4, "big"))
    out.append(data)


def _pack_bin(value: bytes, out: List[bytes]) -> None:
    size = len(value)
    if size <= 0xFF:
        out.append(bytes((0xC4, size)))
    elif size <= 0xFFFF:
        out.append(b"\xc5" + size.to_bytes(2, "big"))
    else:
        out.append(b"\xc6" + size.to_bytes(4, "big"))
    out.append(value)


def _pack(obj: Any, out: List[bytes]) -> None:
    if obj is None:
        out.append(b"\xc0")
    elif obj is True:
        out.append(b"\xc3")
    elif obj is False:
        out.append(b"\xc2")
    elif isinstance(obj, int):
        _pack_int(obj, out)
    elif isinstance(obj, float):
        out.append(b"\xcb" + _FLOAT64.pack(obj))
    elif isinstance(obj, str):
        _pack_str(obj, out)
    elif isinstance(obj, (bytes, bytearray)):
        _pack_bin(bytes(obj), out)
    elif isinstance(obj, (list, tuple)):
        size = len(obj)
        if size <= 0x0F:
            out.append(bytes((0x90 | size,)))
        elif size <= 0xFFFF:
            out.append(b"\xdc" + size.to_bytes(2, "big"))
        else:
            out.append(b"\xdd" + size.to_bytes(4, "big"))
        for item in obj:
            _pack(item, out)
    elif isinstance(obj, dict):
        size = len(obj)
        if size <= 0x0F:
            out.append(bytes((0x80 | size,)))
        elif size <= 0xFFFF:
            out.append(b"\xde" + size.to_bytes(2, "big"))
        else:
            out.append(b"\xdf" + size.to_bytes(4, "big"))
        for key, value in obj.items():
            _pack(key, out)
            _pack(value, out)
    else:
        raise MpackError(f"cannot msgpack a {type(obj).__name__}")


def packb(obj: Any) -> bytes:
    """Serialize *obj* to canonical msgpack bytes."""
    out: List[bytes] = []
    _pack(obj, out)
    return b"".join(out)


# ---------------------------------------------------------------- unpacking
def _take(data: bytes, offset: int, count: int) -> Tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise MpackError("truncated msgpack input")
    return data[offset:end], end


def _unpack(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise MpackError("truncated msgpack input")
    header = data[offset]
    offset += 1
    if header <= 0x7F:  # positive fixint
        return header, offset
    if header >= 0xE0:  # negative fixint
        return header - 0x100, offset
    if 0x80 <= header <= 0x8F:  # fixmap
        return _unpack_map(data, offset, header & 0x0F)
    if 0x90 <= header <= 0x9F:  # fixarray
        return _unpack_array(data, offset, header & 0x0F)
    if 0xA0 <= header <= 0xBF:  # fixstr
        return _unpack_str(data, offset, header & 0x1F)
    if header == 0xC0:
        return None, offset
    if header == 0xC2:
        return False, offset
    if header == 0xC3:
        return True, offset
    if header in (0xC4, 0xC5, 0xC6):  # bin8/16/32
        width = 1 << (header - 0xC4)
        raw, offset = _take(data, offset, width)
        size = int.from_bytes(raw, "big")
        return _take(data, offset, size)
    if header in (0xCC, 0xCD, 0xCE, 0xCF):  # uint8/16/32/64
        raw, offset = _take(data, offset, 1 << (header - 0xCC))
        return int.from_bytes(raw, "big"), offset
    if header in (0xD0, 0xD1, 0xD2, 0xD3):  # int8/16/32/64
        raw, offset = _take(data, offset, 1 << (header - 0xD0))
        return int.from_bytes(raw, "big", signed=True), offset
    if header == 0xCA:  # float32
        raw, offset = _take(data, offset, 4)
        return struct.unpack(">f", raw)[0], offset
    if header == 0xCB:  # float64
        raw, offset = _take(data, offset, 8)
        return _FLOAT64.unpack(raw)[0], offset
    if header in (0xD9, 0xDA, 0xDB):  # str8/16/32
        width = 1 << (header - 0xD9)
        raw, offset = _take(data, offset, width)
        return _unpack_str(data, offset, int.from_bytes(raw, "big"))
    if header in (0xDC, 0xDD):  # array16/32
        width = 2 << (header - 0xDC)
        raw, offset = _take(data, offset, width)
        return _unpack_array(data, offset, int.from_bytes(raw, "big"))
    if header in (0xDE, 0xDF):  # map16/32
        width = 2 << (header - 0xDE)
        raw, offset = _take(data, offset, width)
        return _unpack_map(data, offset, int.from_bytes(raw, "big"))
    if header in _EXT_HEADERS:
        raise MpackError(f"unsupported msgpack ext type 0x{header:02x}")
    raise MpackError(f"invalid msgpack header byte 0x{header:02x}")


def _unpack_str(data: bytes, offset: int, size: int) -> Tuple[str, int]:
    raw, offset = _take(data, offset, size)
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise MpackError(f"invalid utf-8 in msgpack str: {exc}") from exc


def _unpack_array(data: bytes, offset: int, size: int) -> Tuple[list, int]:
    items = []
    for _ in range(size):
        item, offset = _unpack(data, offset)
        items.append(item)
    return items, offset


def _unpack_map(data: bytes, offset: int, size: int) -> Tuple[dict, int]:
    result = {}
    for _ in range(size):
        key, offset = _unpack(data, offset)
        if isinstance(key, list):
            key = tuple(key)  # hashable, like strict_map_key=False tuples
        value, offset = _unpack(data, offset)
        result[key] = value
    return result, offset


def unpackb(data: bytes) -> Any:
    """Deserialize one msgpack value; trailing bytes are an error."""
    value, offset = _unpack(bytes(data), 0)
    if offset != len(data):
        raise MpackError(
            f"trailing bytes after msgpack value ({len(data) - offset} left)"
        )
    return value
