"""Length-prefixed framing shared by every stream transport.

TCP gives a byte stream; the codec layer gives discrete frames.  The
bridge — a 4-byte big-endian length header before each body — used to be
implemented twice, once in :mod:`repro.net.tcp` for the inter-replica mesh
and once in :mod:`repro.svc.protocol` for the client protocol.  This
module is the single implementation both delegate to.

Writers have two shapes: :func:`encode_frame` concatenates header and body
into one buffer (for callers that hand frames around as values, e.g. the
per-peer send queues), while :func:`write_frame` pushes the header and the
body to a stream as two writes — the body bytes are handed to the
transport as-is, never copied into a joined buffer, which is the cheap
path for large batch frames.  :func:`read_frame_bytes` is the one reader,
returning ``None`` on clean EOF at a frame boundary and raising
:class:`FrameError` on oversized or truncated frames.
"""

from __future__ import annotations

import asyncio
from typing import Optional

__all__ = [
    "FrameError",
    "FrameOversizeError",
    "FrameTruncatedError",
    "LEN_BYTES",
    "encode_frame",
    "read_frame_bytes",
    "write_frame",
]

#: Width of the big-endian length header, in bytes.
LEN_BYTES = 4


class FrameError(Exception):
    """A frame violated the length-prefix contract (oversize, truncated)."""


class FrameOversizeError(FrameError):
    """The announced frame length exceeds the caller's budget."""


class FrameTruncatedError(FrameError):
    """The stream ended mid-frame (inside the header or the body)."""


def encode_frame(body: bytes) -> bytes:
    """*body* with its length header prepended, as one buffer."""
    return len(body).to_bytes(LEN_BYTES, "big") + body


def write_frame(writer: asyncio.StreamWriter, body: bytes) -> None:
    """Queue *body* on *writer* as header + body, without joining buffers.

    Two ``write()`` calls, zero copies of *body*; call ``drain()`` (or
    rely on the caller's flow control) separately.
    """
    writer.write(len(body).to_bytes(LEN_BYTES, "big"))
    writer.write(body)


async def read_frame_bytes(
    reader: asyncio.StreamReader, max_frame: int
) -> Optional[bytes]:
    """Read one length-prefixed frame body from *reader*.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`FrameOversizeError` when the announced length exceeds
    *max_frame* and :class:`FrameTruncatedError` when the stream ends
    mid-frame.
    """
    try:
        header = await reader.readexactly(LEN_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameTruncatedError("stream ended inside a frame header") from exc
    size = int.from_bytes(header, "big")
    if size > max_frame:
        raise FrameOversizeError(
            f"frame of {size} bytes exceeds limit {max_frame}"
        )
    try:
        return await reader.readexactly(size)
    except asyncio.IncompleteReadError as exc:
        raise FrameTruncatedError("stream ended inside a frame body") from exc
