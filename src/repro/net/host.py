"""The :class:`NodeHost`: one live node running unchanged protocol stacks.

This is the runtime's counterpart of one slot of the simulator's
:class:`~repro.sim.world.World`.  It assembles the component-facing surface
(:mod:`repro.sim.api`) out of live parts —

* a clock (:mod:`repro.net.clock`) in place of the virtual-time heap,
* a :class:`RuntimeNetwork` that encodes through the codec and hands frames
  to a transport in place of the simulated link fabric,
* any :class:`~repro.obs.TraceSink` (an analysis-facing
  :class:`~repro.obs.MemorySink` by default; a streaming
  :class:`~repro.obs.JsonlSink`, or a tee of both, for trace shipping),
  plus the *same* :class:`~repro.sim.rng.RandomSource` and — crucially —
  :class:`~repro.sim.process.Process` classes, reused verbatim —

and attaches ordinary :class:`~repro.sim.component.Component` subclasses to
it.  A ◇C detector, the Fig. 2 transformation, reliable broadcast, and the
consensus algorithms run here without a line of change: their timers become
asyncio timers, their ``send``/``broadcast`` become datagrams or TCP
frames, and their trace events land in a recorder the analysis layer reads
exactly as it reads simulated traces.

One host serves one process id.  Multi-node single-machine runs are
orchestrated by :class:`~repro.net.cluster.LocalCluster`; a multi-machine
deployment would create one host per box and share the address book
out of band.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import MemorySink, TraceSink
from ..sim.message import Message
from ..sim.process import Process
from ..sim.rng import RandomSource
from ..types import Channel, ProcessId
from .clock import AsyncioClock
from .codec import Codec, CodecError, JsonCodec
from .transport import Transport

__all__ = ["RuntimeNetwork", "RuntimeWorld", "NodeHost"]


class RuntimeNetwork:
    """The live :class:`~repro.sim.api.NetworkAPI`: codec + transport.

    Keeps the same always-on counters as :class:`repro.sim.network.Network`
    so benchmark and QoS code reads totals identically on both substrates.
    """

    def __init__(self, host: "NodeHost") -> None:
        self._host = host
        self.sent_total = 0
        self.sent_network = 0  # excludes self-sends
        self.delivered_total = 0
        self.dropped_total = 0
        self.sent_by_channel: Dict[Channel, int] = {}

    def send(
        self,
        src: ProcessId,
        dst: ProcessId,
        channel: Channel,
        payload: Any,
        tag: Optional[str] = None,
        round: Optional[int] = None,
    ) -> Message:
        host = self._host
        now = host.clock.now
        msg = Message(
            src=src, dst=dst, channel=channel, payload=payload,
            send_time=now, tag=tag, round=round,
        )
        self.sent_total += 1
        self.sent_by_channel[channel] = self.sent_by_channel.get(channel, 0) + 1
        if src == dst:
            # Loopback self-send: stays in-process and uncounted as network
            # traffic, exactly like the simulator's zero-delay loopback.
            if host.trace.wants("send"):
                host.trace.record(
                    now, "send", src, channel=channel, src=src, dst=dst,
                    tag=tag, round=round, loopback=True,
                )
            host.clock.schedule(0.0, host._deliver, msg)
            return msg
        self.sent_network += 1
        if host.trace.wants("send"):
            host.trace.record(
                now, "send", src, channel=channel, src=src, dst=dst,
                tag=tag, round=round, loopback=False,
            )
        frame = host.codec.encode_message(msg)
        metrics = host.metrics
        metrics.inc("messages_sent_total", channel=channel)
        metrics.inc("bytes_sent_total", amount=len(frame), channel=channel)
        host.transport.send(dst, frame)
        return msg

    def send_many(
        self,
        src: ProcessId,
        dsts: Sequence[ProcessId],
        channel: Channel,
        payload: Any,
        tag: Optional[str] = None,
        round: Optional[int] = None,
    ) -> List[Message]:
        """Send one payload to many destinations, encoding it once.

        Per-message observable effects — the counters, the per-``dst``
        ``send`` trace events, the metrics — are identical to calling
        :meth:`send` in a loop; only the codec work is shared, through
        :meth:`~repro.net.codec.Codec.encode_message_batch`.
        """
        host = self._host
        now = host.clock.now
        trace_sends = host.trace.wants("send")
        msgs: List[Message] = []
        network: List[Message] = []
        for dst in dsts:
            msg = Message(
                src=src, dst=dst, channel=channel, payload=payload,
                send_time=now, tag=tag, round=round,
            )
            msgs.append(msg)
            self.sent_total += 1
            self.sent_by_channel[channel] = (
                self.sent_by_channel.get(channel, 0) + 1
            )
            if src == dst:
                if trace_sends:
                    host.trace.record(
                        now, "send", src, channel=channel, src=src, dst=dst,
                        tag=tag, round=round, loopback=True,
                    )
                host.clock.schedule(0.0, host._deliver, msg)
                continue
            self.sent_network += 1
            if trace_sends:
                host.trace.record(
                    now, "send", src, channel=channel, src=src, dst=dst,
                    tag=tag, round=round, loopback=False,
                )
            network.append(msg)
        if network:
            frames = host.codec.encode_message_batch(network)
            metrics = host.metrics
            for msg, frame in zip(network, frames):
                metrics.inc("messages_sent_total", channel=channel)
                metrics.inc(
                    "bytes_sent_total", amount=len(frame), channel=channel
                )
                host.transport.send(msg.dst, frame)
        return msgs


class RuntimeWorld:
    """The live :class:`~repro.sim.api.WorldAPI` backing one node.

    Satisfies exactly the surface components touch (``n``, ``scheduler``,
    ``network``, ``trace``, ``rng``, ``crash_epoch``) — oracle components,
    which read the simulator's global failure pattern, are out of scope by
    design and fail fast with a clear error if attached.
    """

    def __init__(
        self,
        n: int,
        scheduler: Any,
        network: RuntimeNetwork,
        trace: TraceSink,
        rng: RandomSource,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.n = n
        self.scheduler = scheduler
        self.network = network
        self.trace = trace
        self.rng = rng
        self.crash_epoch = 0
        #: Same surface as :attr:`repro.sim.world.World.metrics`.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Samplers run before each metrics snapshot; the owning
        #: :class:`NodeHost` registers one copying the transport counters.
        self.metrics_samplers: list = []

    @property
    def now(self) -> float:
        """Current clock time (seconds since the host's zero point)."""
        return self.scheduler.now

    @property
    def processes(self) -> None:
        raise ConfigurationError(
            "world.processes is simulator-only (a live node cannot see the "
            "global failure pattern); oracle components cannot run on a "
            "NodeHost — use a message-passing detector instead"
        )


class NodeHost:
    """Hosts the protocol components of one process over a live transport.

    Parameters:
        pid / n: this node's id and the cluster size.
        transport: a bound-later :class:`~repro.net.transport.Transport`
            (wrap it in a :class:`~repro.net.faults.FaultyTransport` for
            fault injection).
        clock: any :class:`~repro.sim.api.SchedulerAPI`; defaults to a
            fresh wall-clock :class:`~repro.net.clock.AsyncioClock`.
        codec: wire codec; defaults to JSON (always available).
        trace: any :class:`~repro.obs.TraceSink` — a shared recorder for
            in-process clusters, a per-node :class:`~repro.obs.JsonlSink`
            (or a tee of both) for trace shipping, or ``None`` for a
            private in-memory one.
        seed: master seed for this node's deterministic RNG streams.
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        transport: Transport,
        clock: Optional[Any] = None,
        codec: Optional[Codec] = None,
        trace: Optional[TraceSink] = None,
        seed: int = 0,
    ) -> None:
        if not 0 <= pid < n:
            raise ConfigurationError(f"pid {pid} out of range for n={n}")
        if transport.pid != pid:
            raise ConfigurationError(
                f"transport is addressed as pid {transport.pid}, host is {pid}"
            )
        self.pid = pid
        self.n = n
        self.transport = transport
        self.clock = clock if clock is not None else AsyncioClock()
        self.codec = codec if codec is not None else JsonCodec()
        self.trace: TraceSink = trace if trace is not None else MemorySink()
        # Per-node seed spaces: the same master seed never makes two nodes'
        # jitter streams collide, yet runs stay reproducible.
        self.world = RuntimeWorld(
            n=n,
            scheduler=self.clock,
            network=RuntimeNetwork(self),
            trace=self.trace,
            rng=RandomSource(seed).spawn(f"node:{pid}"),
        )
        self.process = Process(pid, self.world)  # reused verbatim from sim
        #: The node's metric store (shared with ``world.metrics``).
        self.metrics: MetricsRegistry = self.world.metrics
        self.world.metrics_samplers.append(self._sample_transport_metrics)
        self.undecodable_frames = 0
        self.misrouted_frames = 0
        transport.set_receiver(self._on_frame)
        transport.set_observer(self._on_transport_event)

    # ----------------------------------------------------------------- wiring
    def attach(self, component) -> Any:
        """Attach *component* (any sim Component subclass); returns it."""
        return self.process.attach(component)

    def component(self, channel: Channel):
        """Look up the attached component on *channel*."""
        return self.process.component(channel)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start every attached component (their ``on_start`` hooks run)."""
        self.process.start()

    def crash(self) -> None:
        """Crash the hosted process (component tasks stop, sends turn into
        no-ops).  The transport keeps receiving; frames for a crashed
        process are counted as drops, as in the simulator."""
        self.process.crash()

    @property
    def crashed(self) -> bool:
        return self.process.crashed

    # -------------------------------------------------------------- receiving
    def _on_frame(self, data: bytes) -> None:
        try:
            msg = self.codec.decode_message(data)
        except CodecError:
            # A malformed datagram (bit rot, port scanner, version skew) must
            # never take the node down — count it and move on.
            self.undecodable_frames += 1
            self.metrics.inc("frames_undecodable_total")
            self.metrics.inc("messages_dropped_total", reason="undecodable")
            if self.trace.wants("drop"):
                self.trace.record(
                    self.clock.now, "drop", self.pid, reason="undecodable"
                )
            return
        if msg.dst != self.pid:
            self.misrouted_frames += 1
            return
        self.metrics.inc(
            "bytes_received_total", amount=len(data), channel=msg.channel
        )
        self._deliver(msg)

    def _on_transport_event(self, event: str, **fields: Any) -> None:
        """Land transport incidents (``net.peer_unreachable``, ...) in the
        trace, timestamped on this host's clock."""
        self.metrics.inc("transport_incidents_total", event=event)
        if self.trace.wants(event):
            self.trace.record(self.clock.now, event, self.pid, **fields)

    def _sample_transport_metrics(self, registry: MetricsRegistry) -> None:
        """Copy the transport's always-on counters into gauges — run by the
        :class:`~repro.obs.MetricsReporter` right before each snapshot."""
        transport = self.transport
        registry.set("transport_frames_sent", transport.frames_sent)
        registry.set("transport_frames_received", transport.frames_received)
        registry.set("transport_bytes_sent", transport.bytes_sent)
        registry.set("transport_bytes_received", transport.bytes_received)
        registry.set("transport_send_errors", transport.send_errors)

    def _deliver(self, msg: Message) -> None:
        net = self.world.network
        net.delivered_total += 1
        self.metrics.inc("messages_delivered_total", channel=msg.channel)
        if self.trace.wants("deliver"):
            self.trace.record(
                self.clock.now, "deliver", msg.dst,
                channel=msg.channel, src=msg.src, dst=msg.dst,
                tag=msg.tag, round=msg.round,
            )
        self.process.deliver(msg)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "crashed" if self.crashed else "up"
        return (
            f"<NodeHost pid={self.pid}/{self.n} ({state}) "
            f"components={list(self.process.components)}>"
        )
