"""The node-introspection endpoint behind ``repro node --stats-addr``.

A deliberately tiny UDP request/response service: send *any* datagram to
the endpoint and it answers with the node's
:class:`~repro.obs.MetricsRegistry` rendered in Prometheus text
exposition format (see :func:`repro.obs.metrics.render_prometheus`).
Registered samplers run before each render, so transport counters are
fresh.  One round trip, no connection state, no framing beyond one
datagram each way — ``echo | nc -u`` is a sufficient client:

.. code-block:: console

    $ echo stats | nc -u -w1 127.0.0.1 9400
    # HELP messages_sent_total protocol messages handed to the network ...
    # TYPE messages_sent_total counter
    messages_sent_total{channel="fd.omega"} 241
    ...

The endpoint is read-only and stateless by construction: it cannot
mutate the node, so exposing it does not widen the failure model (a
``kill -9`` victim simply stops answering).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable, Optional, Tuple

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry, render_prometheus

__all__ = ["StatsEndpoint", "fetch_stats", "parse_stats_addr"]


def parse_stats_addr(spec: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT``, ``:PORT`` or ``PORT`` (host defaults to
    127.0.0.1; port 0 asks the OS for a free one)."""
    host, _, port_text = spec.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"stats address must be HOST:PORT, :PORT or PORT, got {spec!r}"
        ) from None
    return host, port


class _StatsProtocol(asyncio.DatagramProtocol):
    def __init__(self, endpoint: "StatsEndpoint") -> None:
        self._endpoint = endpoint
        self._transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        if self._transport is not None:
            self._endpoint.requests_served += 1
            self._transport.sendto(self._endpoint.render().encode("utf-8"), addr)


class StatsEndpoint:
    """Serves one registry's Prometheus exposition over UDP.

    Parameters:
        registry: the node's metric store.
        samplers: callables run on the registry before every render
            (pass ``host.world.metrics_samplers`` so transport gauges are
            sampled on demand, not only at snapshot ticks).
        host / port: bind address; port 0 = ephemeral (the bound port is
            returned by :meth:`bind` and kept in :attr:`address`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        samplers: Iterable[Callable[[MetricsRegistry], None]] = (),
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.samplers = samplers
        self.host = host
        self.port = port
        self.requests_served = 0
        self.address: Optional[Tuple[str, int]] = None
        self._transport: Optional[asyncio.DatagramTransport] = None

    def render(self) -> str:
        """Run the samplers, then render the registry."""
        for sampler in self.samplers:
            sampler(self.registry)
        return render_prometheus(self.registry)

    async def bind(self) -> Tuple[str, int]:
        """Bind the UDP socket; returns (and remembers) the bound address."""
        if self._transport is not None:
            raise ConfigurationError("stats endpoint already bound")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _StatsProtocol(self), local_addr=(self.host, self.port)
        )
        sock = self._transport.get_extra_info("sockname")
        self.address = (sock[0], sock[1])
        return self.address

    def close(self) -> None:
        """Stop serving.  Idempotent."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None


async def fetch_stats(
    address: Tuple[str, int], timeout: float = 2.0
) -> str:
    """One client round trip: poke *address*, return the exposition text.

    A dead node surfaces as :class:`asyncio.TimeoutError` (silence —
    e.g. a remote host gone) or :class:`ConnectionRefusedError` (the
    local kernel's ICMP port-unreachable after a ``kill -9``) — callers
    treat both as "node down".
    """
    loop = asyncio.get_running_loop()
    reply: asyncio.Future = loop.create_future()

    class _Client(asyncio.DatagramProtocol):
        def connection_made(self, transport) -> None:
            transport.sendto(b"stats")

        def datagram_received(self, data: bytes, addr) -> None:
            if not reply.done():
                reply.set_result(data.decode("utf-8"))

        def error_received(self, exc) -> None:
            if not reply.done():
                reply.set_exception(exc)

    transport, _ = await loop.create_datagram_endpoint(
        _Client, remote_addr=address
    )
    try:
        return await asyncio.wait_for(reply, timeout)
    finally:
        transport.close()
