"""Clocks for the live runtime — the :class:`~repro.sim.api.SchedulerAPI`
implementations that replace the simulator's virtual-time heap.

Two clocks cover the two ways the runtime is used:

* :class:`AsyncioClock` — wall time.  ``now`` is seconds since the clock
  started (so traces from a live run have the same "starts at 0" shape as
  simulated ones) and ``schedule`` maps to ``loop.call_later``.  Components'
  timers, periodic tasks, and ``Sleep`` directives all become real asyncio
  timers with no component-code changes.
* :class:`VirtualClock` — a thin veneer over the simulator's deterministic
  :class:`~repro.sim.scheduler.Scheduler`.  Used with the loopback transport
  it makes an entire multi-node *runtime* cluster (host adapters, codec,
  transport framing, fault proxy and all) bit-for-bit reproducible, which is
  what the sim↔net parity tests run on.

:class:`SkewedClock` is the fault-injection veneer over either: a per-node
proxy whose ``now`` reads *offset* seconds away from the shared underlying
clock.  The scenario layer's ``skew`` verb mutates the offset at runtime,
which is how a cluster gives each node its own (deliberately wrong) notion
of time without forking the timer machinery.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..sim.scheduler import Scheduler
from ..types import Time

__all__ = ["AsyncioTimerHandle", "AsyncioClock", "VirtualClock", "SkewedClock"]


class AsyncioTimerHandle:
    """Cancellable wrapper over an asyncio timer (TimerHandleAPI)."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True
        self._handle.cancel()


class AsyncioClock:
    """Wall-clock scheduler over an asyncio event loop.

    The zero point is fixed at construction (or explicitly via
    :meth:`rebase`): ``now`` counts seconds from there, keeping live traces
    comparable with simulated ones and keeping ``schedule_at`` meaningful.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop
        self._t0: Optional[float] = None
        if loop is not None:
            self._t0 = loop.time()

    # ------------------------------------------------------------- lifecycle
    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The event loop, bound lazily to the running loop on first use."""
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
            if self._t0 is None:
                self._t0 = self._loop.time()
        return self._loop

    def rebase(self) -> None:
        """Reset the zero point to the current instant (run start)."""
        self._t0 = self.loop.time()

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> Time:
        """Seconds elapsed since the zero point."""
        if self._t0 is None:
            return 0.0
        return self.loop.time() - self._t0

    # ------------------------------------------------------------ scheduling
    def schedule(
        self, delay: Time, callback: Callable[..., None], *args: Any
    ) -> AsyncioTimerHandle:
        """Run ``callback(*args)`` after *delay* seconds of wall time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return AsyncioTimerHandle(self.loop.call_later(delay, callback, *args))

    def schedule_at(
        self, time: Time, callback: Callable[..., None], *args: Any
    ) -> AsyncioTimerHandle:
        """Run ``callback(*args)`` at absolute clock time *time*."""
        delay = time - self.now
        if delay < -1e-9:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self.schedule(max(delay, 0.0), callback, *args)


class SkewedClock:
    """A per-node proxy clock running *offset* seconds off its inner clock.

    ``now`` is ``inner.now + offset`` — a pure float add, so a zero-offset
    proxy over a :class:`VirtualClock` is still bit-for-bit deterministic.
    Relative scheduling delegates unchanged (a frozen-rate skew model: the
    node's clock is *displaced*, not *faster*, matching a one-shot NTP-style
    step).  Absolute scheduling translates the skewed target back into the
    inner timeline; a target the forward-skewed node believes is already
    past fires immediately, exactly what a real clock jump does to pending
    deadline math.

    Everything else (``rebase``, ``loop``, ``is_virtual``, the scheduler
    drain methods of a virtual inner clock) passes through untouched.
    """

    def __init__(self, inner: Any, offset: Time = 0.0) -> None:
        self.inner = inner
        self.offset = offset

    def skew(self, offset: Time) -> None:
        """Step this node's clock by *offset* seconds (cumulative)."""
        self.offset += offset

    @property
    def now(self) -> Time:
        return self.inner.now + self.offset

    def schedule(self, delay: Time, callback: Callable[..., None], *args: Any):
        return self.inner.schedule(delay, callback, *args)

    def schedule_at(self, time: Time, callback: Callable[..., None], *args: Any):
        if self.offset == 0.0:
            # Exact delegation: a never-skewed proxy is indistinguishable
            # from its inner clock (same heap entries, same error behavior),
            # which is what keeps virtual-clock parity runs byte-identical.
            return self.inner.schedule_at(time, callback, *args)
        delay = time - self.offset - self.inner.now
        return self.inner.schedule(max(delay, 0.0), callback, *args)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SkewedClock {self.offset:+.6f}s over {self.inner!r}>"


class VirtualClock(Scheduler):
    """The simulator's deterministic scheduler, reused as a runtime clock.

    Inherits everything — this subclass exists so runtime code can express
    "a clock suitable for NodeHost" without importing the sim layer, and so
    isinstance checks can distinguish deterministic from wall-clock hosts
    (async transports refuse to run on a virtual clock; see
    :mod:`repro.net.cluster`).
    """

    @property
    def is_virtual(self) -> bool:
        return True
