"""Transport abstraction: how encoded messages reach other nodes.

A :class:`Transport` moves opaque byte frames between nodes identified by
process id.  It is deliberately dumber than the simulator's
:class:`~repro.sim.network.Network`: no channels, no links, no delivery
callback into processes — just frames out, frames in.  The
:class:`~repro.net.host.NodeHost` layers the codec and the component-facing
semantics on top, and :class:`~repro.net.faults.FaultyTransport` wraps any
transport with loss/delay/partition injection.

Lifecycle (driven by :class:`~repro.net.cluster.LocalCluster` or by user
code for multi-process deployments)::

    transport.set_receiver(on_bytes)     # wiring
    await transport.bind()               # allocate sockets / register
    transport.set_peers({pid: address})  # learn the address book
    transport.send(dst, frame)           # fire-and-forget, loop thread
    await transport.close()

``send`` is synchronous because protocol components call it from timer and
delivery callbacks; implementations must never block (UDP writes to the
socket, TCP enqueues to a per-peer writer task, loopback defers through the
clock).

This module holds the ABC and the in-process :class:`LoopbackTransport`;
:mod:`repro.net.udp` and :mod:`repro.net.tcp` carry the socket transports.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional

from ..errors import ConfigurationError
from ..types import ProcessId

__all__ = ["Transport", "LoopbackHub", "LoopbackTransport"]

Receiver = Callable[[bytes], None]
#: ``observer(event, **fields)`` — transport-level incidents (e.g.
#: ``net.peer_unreachable``); event names must be registered trace kinds.
Observer = Callable[..., None]


class Transport(ABC):
    """Moves byte frames between nodes addressed by process id."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self._receiver: Optional[Receiver] = None
        self._observer: Optional[Observer] = None
        self._peers: Dict[ProcessId, Any] = {}
        self.closed = False
        # Cheap counters, mirrored after sim.Network's always-on ones.
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.send_errors = 0

    # ---------------------------------------------------------------- wiring
    def set_receiver(self, receiver: Receiver) -> None:
        """Install the callback invoked (in the loop thread) per frame."""
        self._receiver = receiver

    def set_observer(self, observer: Observer) -> None:
        """Install the callback invoked per transport incident.

        The :class:`~repro.net.host.NodeHost` installs one that records
        each incident as a trace event at the host clock's current time,
        so transport trouble (dead peers, exhausted retries) lands in the
        same stream the analysis layer already reads.
        """
        self._observer = observer

    def set_peers(self, addresses: Dict[ProcessId, Any]) -> None:
        """Learn every node's address (including our own, which is ignored)."""
        self._peers = dict(addresses)

    @property
    def local_address(self) -> Any:
        """This node's address, valid after :meth:`bind`."""
        return self._peers.get(self.pid)

    # -------------------------------------------------------------- lifecycle
    @abstractmethod
    def bind(self):
        """Allocate resources; may be a coroutine (socket transports are)."""

    @abstractmethod
    def send(self, dst: ProcessId, data: bytes) -> None:
        """Queue one frame for *dst*.  Fire-and-forget; must not block."""

    @abstractmethod
    def close(self):
        """Release resources; may be a coroutine.  Idempotent."""

    # -------------------------------------------------------------- internals
    def _dispatch(self, data: bytes) -> None:
        """Hand one received frame to the receiver (drop if none/closed)."""
        if self.closed or self._receiver is None:
            return
        self.frames_received += 1
        self.bytes_received += len(data)
        self._receiver(data)

    def _notify(self, event: str, **fields: Any) -> None:
        """Report one incident to the observer (no-op when none installed)."""
        if self._observer is not None:
            self._observer(event, **fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return f"<{type(self).__name__} pid={self.pid} {state}>"


class LoopbackHub:
    """The shared \"wire\" of an in-process cluster.

    Registered transports exchange frames through deferred callbacks on a
    clock (:class:`~repro.net.clock.VirtualClock` for deterministic tests,
    :class:`~repro.net.clock.AsyncioClock` for live in-process runs).  Going
    through the clock — never calling the receiver inline — preserves the
    simulator's "sends complete before anything is delivered" semantics, so
    protocol code sees the same event shapes on every substrate.
    """

    def __init__(self, clock: Any) -> None:
        self.clock = clock
        self._endpoints: Dict[ProcessId, LoopbackTransport] = {}

    def register(self, transport: "LoopbackTransport") -> None:
        if transport.pid in self._endpoints:
            raise ConfigurationError(
                f"loopback hub already has an endpoint for pid {transport.pid}"
            )
        self._endpoints[transport.pid] = transport

    def unregister(self, pid: ProcessId) -> None:
        self._endpoints.pop(pid, None)

    def carry(self, dst: ProcessId, data: bytes) -> None:
        """Schedule delivery of *data* to *dst* (dropped if unknown/closed)."""
        self.clock.schedule(0.0, self._arrive, dst, data)

    def _arrive(self, dst: ProcessId, data: bytes) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is not None:
            endpoint._dispatch(data)


class LoopbackTransport(Transport):
    """In-process transport over a :class:`LoopbackHub`.

    Frames still round-trip through the codec (the host encodes before
    calling :meth:`send`), so loopback runs exercise the full wire path —
    serialization bugs show up here, deterministically, before any socket
    is involved.
    """

    def __init__(self, pid: ProcessId, hub: LoopbackHub) -> None:
        super().__init__(pid)
        self.hub = hub

    def bind(self) -> None:
        self.hub.register(self)
        self._peers.setdefault(self.pid, f"loopback:{self.pid}")

    def send(self, dst: ProcessId, data: bytes) -> None:
        if self.closed:
            return
        self.frames_sent += 1
        self.bytes_sent += len(data)
        self.hub.carry(dst, data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.hub.unregister(self.pid)
