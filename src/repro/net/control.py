"""The per-node fault-control endpoint behind a process cluster's verbs.

A :class:`LocalCluster` mutates its shared :class:`~repro.net.faults.FaultPlan`
directly, but a :class:`~repro.proc.ProcessCluster` owns no objects inside
its nodes — network faults must travel over the wire.  Each ``repro node``
binds a :class:`FaultControlEndpoint`: a tiny UDP request/reply service
(modeled on :class:`~repro.net.stats.StatsEndpoint`) that applies one JSON
fault command per datagram to the node's own fault plan and clock, records
the matching ``scenario.*`` trace event, and acks.

Commands are the network subset of the :class:`~repro.cluster.ClusterAPI`
fault verbs — ``partition`` / ``heal`` / ``isolate`` / ``degrade`` /
``restore`` / ``storm`` / ``calm`` / ``skew``:

.. code-block:: json

    {"op": "partition", "groups": [[0], [1, 2]]}
    {"op": "degrade", "src": 0, "dst": 1, "loss": 0.3, "delay": 0.02}
    {"op": "skew", "offset": 0.5}

The launcher broadcasts each network command to *every* node (each node's
plan only governs its own sends, so a partition must be installed on both
sides), while ``skew`` targets the one node whose clock steps.  Process
verbs (``crash``/``stall``/``resume``) never touch this channel — they are
OS signals, delivered by the launcher, precisely so a frozen or dead node
cannot be asked to cooperate in its own failure.

One logical fault should appear once in the merged trace, so a command
carries an optional ``"record": true`` flag and only the flagged copy's
receiver records the ``scenario.*`` event — the launcher flags exactly one
node per broadcast.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.delays import FixedDelay
from .faults import FaultPlan

__all__ = ["FaultControlEndpoint", "send_fault_command"]

#: Ops a fault-control endpoint accepts (the network fault verbs).
CONTROL_OPS = (
    "partition", "heal", "isolate", "degrade", "restore",
    "storm", "calm", "skew",
)


class FaultControlEndpoint:
    """Applies JSON fault commands to one node's plan and clock over UDP.

    Parameters:
        host: the node's :class:`~repro.net.host.NodeHost` (for the clock,
            the trace sink, and the pid).
        plan: the node's :class:`FaultPlan` (the one its transport wraps).
        listen_host / port: bind address; port 0 = ephemeral (the bound
            port is returned by :meth:`bind` and kept in :attr:`address`).
    """

    def __init__(
        self,
        host: Any,
        plan: FaultPlan,
        listen_host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.host = host
        self.plan = plan
        self.listen_host = listen_host
        self.port = port
        self.commands_applied = 0
        self._narrate = False
        self.address: Optional[Tuple[str, int]] = None
        self._transport: Optional[asyncio.DatagramTransport] = None

    # --------------------------------------------------------------- dispatch
    def apply(self, command: Dict[str, Any]) -> None:
        """Apply one decoded fault command to this node.

        Raises :class:`ConfigurationError` on a malformed command; the
        datagram handler turns that into an error reply.
        """
        op = command.get("op")
        if op == "ping":  # readiness probe: no plan mutation, no event
            return
        if op not in CONTROL_OPS:
            raise ConfigurationError(f"unknown fault op {op!r}")
        try:
            self._dispatch(op, command)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed fault command {command!r}: {exc}"
            ) from exc
        self.commands_applied += 1

    def _dispatch(self, op: str, command: Dict[str, Any]) -> None:
        plan = self.plan
        self._narrate = bool(command.get("record", False))
        if op == "partition":
            groups = plan.partition(*command["groups"])
            self._record("scenario.partition", groups=groups)
        elif op == "isolate":
            groups = plan.isolate(int(command["pid"]))
            self._record("scenario.partition", groups=groups)
        elif op == "heal":
            plan.heal()
            self._record("scenario.heal")
        elif op == "degrade":
            loss = command.get("loss")
            delay = command.get("delay")
            plan.degrade(
                int(command["src"]), int(command["dst"]),
                loss_prob=None if loss is None else float(loss),
                delay=None if delay is None else FixedDelay(float(delay)),
            )
            self._record(
                "scenario.degrade",
                src=int(command["src"]), dst=int(command["dst"]),
                loss=loss, delay=delay,
            )
        elif op == "restore":
            plan.restore(int(command["src"]), int(command["dst"]))
            self._record(
                "scenario.restore",
                src=int(command["src"]), dst=int(command["dst"]),
            )
        elif op == "storm":
            plan.storm(float(command["loss"]))
            self._record("scenario.storm", loss=float(command["loss"]))
        elif op == "calm":
            plan.calm()
            self._record("scenario.calm")
        elif op == "skew":  # the one verb that is inherently per-node
            offset = float(command["offset"])
            self.host.clock.skew(offset)
            self._record(
                "scenario.skew", target=self.host.pid, offset=offset,
            )

    def _record(self, kind: str, **data: Any) -> None:
        # One logical fault, one trace event: only the copy the launcher
        # flagged with "record" narrates (broadcasts reach every node).
        if self._narrate:
            self.host.trace.record(
                self.host.clock.now, kind, self.host.pid, **data
            )

    # -------------------------------------------------------------- lifecycle
    async def bind(self) -> Tuple[str, int]:
        """Bind the UDP socket; returns (and remembers) the bound address."""
        if self._transport is not None:
            raise ConfigurationError("fault-control endpoint already bound")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _ControlProtocol(self),
            local_addr=(self.listen_host, self.port),
        )
        sock = self._transport.get_extra_info("sockname")
        self.address = (sock[0], sock[1])
        return self.address

    def close(self) -> None:
        """Stop serving.  Idempotent."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class _ControlProtocol(asyncio.DatagramProtocol):
    def __init__(self, endpoint: FaultControlEndpoint) -> None:
        self._endpoint = endpoint
        self._transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        if self._transport is None:
            return
        try:
            command = json.loads(data.decode("utf-8"))
            if not isinstance(command, dict):
                raise ConfigurationError("fault command must be an object")
            self._endpoint.apply(command)
        except (ConfigurationError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._transport.sendto(f"error: {exc}".encode("utf-8"), addr)
            return
        self._transport.sendto(b"ok", addr)


async def send_fault_command(
    address: Tuple[str, int],
    command: Dict[str, Any],
    timeout: float = 0.5,
    attempts: int = 6,
) -> None:
    """Deliver one fault command to a node's control endpoint, reliably-ish.

    UDP on loopback essentially never loses datagrams, but a node may not
    have bound its endpoint yet when a scenario's first fault fires — so
    the client retries (the verbs are all idempotent, so a duplicated
    apply is harmless).  Raises :class:`ConfigurationError` when the node
    rejects the command, :class:`asyncio.TimeoutError` when it never
    answers — which callers treat as "node down", the same contract as
    :func:`~repro.net.stats.fetch_stats`.
    """
    payload = json.dumps(command).encode("utf-8")
    loop = asyncio.get_running_loop()
    last_exc: Optional[BaseException] = None
    for attempt in range(attempts):
        started = loop.time()
        reply: asyncio.Future = loop.create_future()

        class _Client(asyncio.DatagramProtocol):
            def connection_made(self, transport) -> None:
                transport.sendto(payload)

            def datagram_received(self, data: bytes, addr) -> None:
                if not reply.done():
                    reply.set_result(data)

            def error_received(self, exc) -> None:
                if not reply.done():
                    reply.set_exception(exc)

        transport, _ = await loop.create_datagram_endpoint(
            _Client, remote_addr=address
        )
        try:
            answer = await asyncio.wait_for(reply, timeout)
        except (asyncio.TimeoutError, ConnectionRefusedError, OSError) as exc:
            last_exc = exc
            # Pace the retries: an ICMP-refused send fails in microseconds,
            # and burning every attempt before the target finishes booting
            # would defeat the budget — each attempt costs >= `timeout`.
            if attempt + 1 < attempts:
                await asyncio.sleep(
                    max(0.0, timeout - (loop.time() - started))
                )
            continue
        finally:
            transport.close()
        if answer != b"ok":
            raise ConfigurationError(
                f"fault command {command!r} rejected by {address}: "
                f"{answer.decode('utf-8', 'replace')}"
            )
        return
    assert last_exc is not None
    raise last_exc
