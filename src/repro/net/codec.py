"""Wire codecs for :class:`~repro.sim.message.Message`.

The protocol layer exchanges rich Python values — nested tuples, dicts with
integer keys (ring knowledge maps), frozensets (suspect lists), and the
:data:`~repro.consensus.ec_consensus.NULL` estimate sentinel.  The simulator
passes them by reference; a real network needs bytes.  The codec round-trips
every payload shape the library's protocols produce **exactly** (tuples stay
tuples, int keys stay ints, ``NULL`` stays the singleton), so component code
runs unchanged on both substrates.

The structural transform — the tagged recursion into JSON-safe shape — is
:mod:`repro.obs.encode`, shared with the JSONL trace files (one transform,
one set of tags, on the wire and on disk).  This module adds the message
envelope and the pluggable byte serializers.  The default serializer is
:mod:`json` (always available); :class:`MsgpackCodec` uses :mod:`msgpack`
when the host has it and raises a clear error otherwise — the container
image is the source of truth for dependencies, so the import is gated,
never installed.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..errors import ConfigurationError
from ..obs.encode import EncodeError, from_jsonable, to_jsonable
from ..sim.message import Message

__all__ = ["CodecError", "Codec", "JsonCodec", "MsgpackCodec", "default_codec"]


class CodecError(Exception):
    """A payload could not be encoded, or bytes could not be decoded."""


def _to_wire(obj: Any) -> Any:
    try:
        return to_jsonable(obj)
    except EncodeError as exc:
        raise CodecError(str(exc)) from exc


def _from_wire(obj: Any) -> Any:
    try:
        return from_jsonable(obj)
    except EncodeError as exc:
        raise CodecError(str(exc)) from exc


class Codec:
    """Base codec: structural transform + a pluggable byte serializer.

    Subclasses provide :meth:`_dumps` / :meth:`_loads`; everything else —
    the tagged transform and the message envelope — is shared.
    """

    name = "abstract"

    # ------------------------------------------------------------- subclass
    def _dumps(self, obj: Any) -> bytes:
        raise NotImplementedError

    def _loads(self, data: bytes) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------- payloads
    def encode_payload(self, payload: Any) -> bytes:
        """Serialize one protocol payload."""
        return self._dumps(_to_wire(payload))

    def decode_payload(self, data: bytes) -> Any:
        """Inverse of :meth:`encode_payload`."""
        return _from_wire(self._loads(data))

    # ------------------------------------------------------------- messages
    def encode_message(self, msg: Message) -> bytes:
        """Serialize a full message envelope (src/dst/channel/payload/...)."""
        envelope = {
            "s": msg.src,
            "d": msg.dst,
            "c": msg.channel,
            "p": _to_wire(msg.payload),
            "t": msg.send_time,
            "g": msg.tag,
            "r": msg.round,
        }
        return self._dumps(envelope)

    def decode_message(self, data: bytes) -> Message:
        """Inverse of :meth:`encode_message`."""
        try:
            env = self._loads(data)
            return Message(
                src=int(env["s"]),
                dst=int(env["d"]),
                channel=str(env["c"]),
                payload=_from_wire(env["p"]),
                send_time=float(env["t"]),
                tag=env.get("g"),
                round=env.get("r"),
            )
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"undecodable message frame: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class JsonCodec(Codec):
    """JSON bytes; dependency-free and human-greppable on the wire."""

    name = "json"

    def _dumps(self, obj: Any) -> bytes:
        try:
            return json.dumps(obj, separators=(",", ":"), allow_nan=False).encode()
        except (TypeError, ValueError) as exc:
            raise CodecError(f"not JSON-serializable: {exc}") from exc

    def _loads(self, data: bytes) -> Any:
        try:
            return json.loads(data.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(f"not valid JSON: {exc}") from exc


class MsgpackCodec(Codec):
    """msgpack bytes — smaller and faster, used when the host provides it."""

    name = "msgpack"

    def __init__(self) -> None:
        try:
            import msgpack  # type: ignore[import-not-found]
        except ImportError as exc:  # pragma: no cover - depends on host image
            raise ConfigurationError(
                "msgpack is not installed in this environment; "
                "use JsonCodec (the default) instead"
            ) from exc
        self._msgpack = msgpack

    def _dumps(self, obj: Any) -> bytes:  # pragma: no cover - optional dep
        return self._msgpack.packb(obj, use_bin_type=True)

    def _loads(self, data: bytes) -> Any:  # pragma: no cover - optional dep
        try:
            return self._msgpack.unpackb(data, raw=False, strict_map_key=False)
        except Exception as exc:
            raise CodecError(f"not valid msgpack: {exc}") from exc


def default_codec(prefer: Optional[str] = None) -> Codec:
    """The best codec this host supports.

    ``prefer="json"``/``"msgpack"`` forces a family; by default msgpack is
    used when importable, JSON otherwise.
    """
    if prefer == "json":
        return JsonCodec()
    if prefer == "msgpack":
        return MsgpackCodec()
    if prefer is not None:
        raise ConfigurationError(f"unknown codec {prefer!r}")
    try:
        return MsgpackCodec()
    except ConfigurationError:
        return JsonCodec()
